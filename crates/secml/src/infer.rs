//! Batched inference: flattened models and blocked row-major scoring.
//!
//! Training produces pointer-linked `Box` trees that score one row at a
//! time — every node visit chases a heap pointer, and scoring a corpus
//! re-walks that scattered memory once per row. `compile()` turns each
//! trained model into a [`CompiledClassifier`]/[`CompiledRegressor`]:
//! trees become struct-of-arrays node tables ([`FlatTree`] — `feature`,
//! `threshold`, `left`, `right` as parallel vectors, leaf values stored
//! inline in the `threshold` slot under a `u32::MAX` feature sentinel),
//! and a whole forest shares one node table ([`FlatForest`]).
//!
//! `predict_batch` then scores blocks of [`BLOCK_ROWS`] rows at a time:
//! each block is gathered from the columnar [`ColMatrix`] into one
//! row-major scratch buffer, and every tree traverses all rows of the
//! block before the next tree starts, so a tree's nodes are fetched once
//! per block instead of once per row. Linear, naive-Bayes and k-NN
//! models get columnar batch loops with the same accumulation order as
//! their row-major `predict_proba`.
//!
//! **Every batched prediction is bit-identical to the boxed per-row
//! path**: traversals use the same `value <= threshold` comparison with
//! the same missing-feature default, and every floating-point fold (tree
//! sums, dot products, log-likelihoods, neighbour votes) runs in the
//! same element order as the row-major original.
//!
//! Compiled models also (de)serialize through the serde-free
//! [`bytes`](crate::bytes) codec, so a trained battery can be saved once
//! and reloaded for repeated scoring runs.

use crate::bytes::{ByteReader, ByteWriter};
use crate::dataset::ColMatrix;
use crate::tree::Node;

/// Rows gathered per scoring block. 64 rows × ~100 features × 8 bytes is
/// ~50 KiB of scratch — comfortably L2-resident alongside the node table.
pub(crate) const BLOCK_ROWS: usize = 64;

/// Feature sentinel marking a leaf node; the leaf value lives in the
/// node's `threshold` slot.
pub(crate) const LEAF: u32 = u32::MAX;

/// Rows traversed in lockstep by the blocked kernel. Each lane is an
/// independent root-to-leaf walk, so the loads of `LANES` rows overlap
/// instead of serializing on one walk's dependency chain.
pub(crate) const LANES: usize = 16;

/// Gather `x` into row-major blocks of up to [`BLOCK_ROWS`] rows and hand
/// each to `f` as `(first_row_index, real_rows, row_major_values)`; rows
/// are `x.n_cols()`-wide consecutive slices of the last argument. The
/// block is padded with all-zero rows up to a [`LANES`] multiple (real
/// rows first), so the lockstep kernel never needs a scalar tail — sinks
/// must ignore row indices at or beyond `real_rows`.
pub(crate) fn for_each_block(x: &ColMatrix, mut f: impl FnMut(usize, usize, &[f64])) {
    let width = x.n_cols();
    let mut scratch = vec![0.0; BLOCK_ROWS * width];
    let mut start = 0;
    while start < x.n_rows() {
        let len = BLOCK_ROWS.min(x.n_rows() - start);
        let padded = len.next_multiple_of(LANES);
        for j in 0..width {
            for (r, &v) in x.col(j)[start..start + len].iter().enumerate() {
                scratch[r * width + j] = v;
            }
        }
        scratch[len * width..padded * width].fill(0.0);
        f(start, len, &scratch[..padded * width]);
        start += len;
    }
}

/// A decision or regression tree flattened into parallel node arrays.
///
/// Node 0 is the root; a compiled tree always has at least one node (an
/// unfitted tree compiles to a single leaf holding its default value).
#[derive(Debug, Clone, Default)]
pub struct FlatTree {
    pub(crate) feature: Vec<u32>,
    pub(crate) threshold: Vec<f64>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    /// The kernel's leaf-rewritten node view — a pure function of the
    /// arrays above, built once on first use instead of per scoring
    /// call.
    kt: std::sync::OnceLock<Box<KernelTables>>,
    /// The quantized program, compiled once by [`optimize`](Self::optimize);
    /// `None` inside means compilation was attempted and fell back.
    opt: std::sync::OnceLock<Option<Box<crate::kernel::ForestProgram>>>,
}

/// Derived caches (`kt`, `opt`) are excluded: they are functions of the
/// node table, and the kernel's leaf thresholds are `NaN`, which would
/// make any tree compare unequal to itself.
impl PartialEq for FlatTree {
    fn eq(&self, other: &Self) -> bool {
        self.feature == other.feature
            && self.threshold == other.threshold
            && self.left == other.left
            && self.right == other.right
    }
}

impl FlatTree {
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Leaves self-loop (`left == right == i`): the lockstep kernel then
    /// needs no leaf branch — a lane that has reached its leaf keeps
    /// re-selecting the same node until the tree's depth budget runs out.
    fn push_leaf(&mut self, value: f64) -> u32 {
        let i = self.feature.len() as u32;
        self.feature.push(LEAF);
        self.threshold.push(value);
        self.left.push(i);
        self.right.push(i);
        i
    }

    /// Preorder-flatten `node`, returning its index.
    fn push_node(&mut self, node: &Node) -> u32 {
        match node {
            Node::Leaf { value } => self.push_leaf(*value),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let i = self.feature.len() as u32;
                self.feature.push(*feature as u32);
                self.threshold.push(*threshold);
                self.left.push(0);
                self.right.push(0);
                let l = self.push_node(left);
                let r = self.push_node(right);
                self.left[i as usize] = l;
                self.right[i as usize] = r;
                i
            }
        }
    }

    /// Walk from node `root` for one row. Same comparison and
    /// missing-feature default as the boxed `Node::predict`, so results
    /// are bit-identical (NaN features included: `NaN <= t` is false on
    /// both paths, taking the right branch).
    #[inline]
    fn score_from(&self, root: u32, row: &[f64]) -> f64 {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            let v = row.get(f as usize).copied().unwrap_or(0.0);
            i = if v <= self.threshold[i] {
                self.left[i]
            } else {
                self.right[i]
            } as usize;
        }
    }

    /// Max root-to-leaf edge count from every node, via one reverse pass
    /// (children always follow their parent — the preorder invariant
    /// `validate` enforces — so suffix depths are final when read).
    pub(crate) fn node_depths(&self) -> Vec<u32> {
        let n = self.feature.len();
        let mut depth = vec![0u32; n];
        for i in (0..n).rev() {
            if self.feature[i] != LEAF {
                depth[i] = 1 + depth[self.left[i] as usize].max(depth[self.right[i] as usize]);
            }
        }
        depth
    }

    /// Rewrite the node table for the lockstep kernel: leaves get feature
    /// 0 (so every per-step row load is in-bounds) and threshold `NaN`
    /// (so the `v <= t` select is always false and a finished lane takes
    /// `right`, which self-loops). Split nodes are untouched, so the
    /// kernel makes exactly the decisions `score_from` makes. Built once
    /// and cached — repeated scalar/explain calls stop rebuilding it.
    pub(crate) fn kernel_tables(&self) -> &KernelTables {
        self.kt.get_or_init(|| {
            let mut max_feature = 0;
            let mut feature_right = Vec::with_capacity(self.feature.len());
            let mut threshold = Vec::with_capacity(self.threshold.len());
            for i in 0..self.feature.len() {
                let (f, t) = if self.feature[i] == LEAF {
                    (0, f64::NAN)
                } else {
                    max_feature = max_feature.max(self.feature[i]);
                    (self.feature[i], self.threshold[i])
                };
                feature_right.push(u64::from(f) << 32 | u64::from(self.right[i]));
                threshold.push(t);
            }
            Box::new(KernelTables {
                feature_right,
                threshold,
                max_feature,
            })
        })
    }

    /// Compile this tree's quantized program (a single-tree forest in
    /// kernel terms). Idempotent; scoring uses the program only after
    /// this has run, so un-optimized instances stay the exact
    /// interpreter. Returns whether a compiled program is active.
    pub fn optimize(&self) -> bool {
        self.opt
            .get_or_init(|| {
                let depth = self.node_depths()[0];
                crate::kernel::ForestProgram::compile(self, &[0], &[depth]).map(Box::new)
            })
            .is_some()
    }

    /// The compiled program, if [`optimize`](Self::optimize) has run and
    /// succeeded.
    #[inline]
    pub(crate) fn program(&self) -> Option<&crate::kernel::ForestProgram> {
        self.opt.get().and_then(|p| p.as_deref())
    }

    /// Walk every row of a row-major `block` (whose row count must be a
    /// [`LANES`] multiple, as [`for_each_block`] guarantees) from `root`,
    /// calling `sink(row_index_in_block, leaf_value)` — including for any
    /// zero-padding rows, which the sink must discard. `kt` comes from
    /// [`kernel_tables`](FlatTree::kernel_tables) and every feature in it
    /// must be `< width` (the caller checks `max_feature` once).
    ///
    /// Rows advance [`LANES`] at a time in lockstep for exactly `depth`
    /// steps with no leaf test in the hot loop: a lane that reaches its
    /// leaf keeps failing the `NaN` comparison and holds position through
    /// the self-looping `right` child. The preorder invariant `left ==
    /// i + 1` (enforced by `validate`) makes the taken branch pure
    /// arithmetic, so each step is four loads plus a select and the
    /// lanes' dependency chains overlap. Each lane makes exactly the
    /// decisions `score_from` makes, so leaf values — and therefore
    /// predictions — are bit-identical.
    fn score_block(
        &self,
        kt: &KernelTables,
        root: u32,
        depth: u32,
        block: &[f64],
        width: usize,
        sink: &mut impl FnMut(usize, f64),
    ) {
        let mut base = 0;
        for chunk in block.chunks_exact(width * LANES) {
            let mut idx = [root as usize; LANES];
            for _ in 0..depth {
                for (l, i) in idx.iter_mut().enumerate() {
                    let fr = kt.feature_right[*i];
                    let v = chunk[l * width + (fr >> 32) as usize];
                    *i = if v <= kt.threshold[*i] {
                        *i + 1
                    } else {
                        (fr & u64::from(u32::MAX)) as usize
                    };
                }
            }
            for (l, &i) in idx.iter().enumerate() {
                sink(base + l, self.threshold[i]);
            }
            base += LANES;
        }
    }

    /// Score every row of `x` (blocked lockstep traversal, falling back
    /// to the plain row walk when the tree references features beyond
    /// the matrix width — those reads default to 0.0, which the kernel's
    /// unconditional loads cannot express). After [`optimize`](Self::optimize)
    /// the quantized program runs instead, under the same fallback
    /// condition and with bit-identical results.
    pub fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        let width = x.n_cols();
        if width == 0 {
            return (0..x.n_rows()).map(|_| self.score_from(0, &[])).collect();
        }
        let kt = self.kernel_tables();
        if kt.max_feature as usize >= width {
            let mut row = vec![0.0; width];
            return (0..x.n_rows())
                .map(|i| {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = x.value(i, j);
                    }
                    self.score_from(0, &row)
                })
                .collect();
        }
        let mut out = vec![0.0; x.n_rows()];
        if let Some(prog) = self.program() {
            prog.walk_batch(x, &mut |r, _leaf, v| out[r] = v);
            return out;
        }
        let depth = self.node_depths()[0];
        for_each_block(x, |start, rows, block| {
            let dst = &mut out[start..start + rows];
            self.score_block(kt, 0, depth, block, width, &mut |r, v| {
                if r < dst.len() {
                    dst[r] = v;
                }
            });
        });
        out
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32s(&self.feature);
        w.put_f64s(&self.threshold);
        w.put_u32s(&self.left);
        w.put_u32s(&self.right);
    }

    fn decode(r: &mut ByteReader) -> Result<FlatTree, String> {
        let tree = FlatTree {
            feature: r.get_u32s()?,
            threshold: r.get_f64s()?,
            left: r.get_u32s()?,
            right: r.get_u32s()?,
            ..Default::default()
        };
        tree.validate()?;
        Ok(tree)
    }

    /// Structural sanity: equal-length arrays, at least one node, every
    /// split's left child at exactly `i + 1` with the right child in
    /// bounds after it (the preorder invariants `node_depths` and the
    /// lockstep kernel rely on, which also rule out cycles), and every
    /// leaf self-looping (ditto). A corrupt table must fail at load time,
    /// not loop or index out of bounds mid-traversal.
    fn validate(&self) -> Result<(), String> {
        let n = self.feature.len();
        if n == 0 {
            return Err("flat tree has no nodes".into());
        }
        if self.threshold.len() != n || self.left.len() != n || self.right.len() != n {
            return Err("flat tree arrays disagree on node count".into());
        }
        for i in 0..n {
            let (l, r) = (self.left[i] as usize, self.right[i] as usize);
            if self.feature[i] == LEAF {
                if l != i || r != i {
                    return Err(format!("flat tree leaf {i} does not self-loop"));
                }
            } else if l != i + 1 || r <= i || r >= n {
                return Err(format!("flat tree node {i} has out-of-order children"));
            }
        }
        Ok(())
    }
}

/// The lockstep kernel's view of a [`FlatTree`]: same node indices, but
/// leaves carry feature 0 and a `NaN` threshold so the hot loop needs no
/// leaf test or bounds fallback, and each node's feature and right child
/// are packed into one `u64` (feature high, right low) so a step is one
/// load fewer. See [`kernel_tables`](FlatTree::kernel_tables).
#[derive(Debug, Clone)]
pub(crate) struct KernelTables {
    pub(crate) feature_right: Vec<u64>,
    pub(crate) threshold: Vec<f64>,
    /// Largest real feature index — the caller's one-time width check.
    pub(crate) max_feature: u32,
}

/// Flatten a boxed tree root (`None` = unfitted, which predicts
/// `default_value`).
pub(crate) fn flatten_tree(root: Option<&Node>, default_value: f64) -> FlatTree {
    let mut tree = FlatTree::default();
    match root {
        Some(node) => {
            tree.push_node(node);
        }
        None => {
            tree.push_leaf(default_value);
        }
    }
    tree
}

/// A whole forest sharing one flattened node table.
///
/// `predict_batch` averages per-tree leaf values in tree order, dividing
/// by a divisor precomputed at compile time. The divisor is kept as the
/// tree count itself (not its reciprocal): `sum * (1.0 / n)` is not
/// bitwise equal to `sum / n` for non-power-of-two tree counts, and the
/// boxed path divides.
#[derive(Debug, Clone)]
pub struct FlatForest {
    pub(crate) roots: Vec<u32>,
    pub(crate) nodes: FlatTree,
    /// Per-root max depth (not serialized — recomputed from the table),
    /// the lockstep kernel's step budget.
    pub(crate) depths: Vec<u32>,
    /// Number of voting trees as `f64` — the division denominator.
    pub(crate) n_trees: f64,
    /// Prediction when the forest has no trees (0.5 classifier, 0.0
    /// regressor), matching the boxed empty-forest guard.
    pub(crate) empty_value: f64,
    /// Attribution's derived view (subtree expectations + per-edge
    /// credits) — like `kernel`, a pure function of the node table, but
    /// built lazily on the first `attribute_batch`/`attribute_row` so
    /// scoring-only deployments never pay for it (boxed: it must not
    /// grow the enum variants scoring matches on).
    pub(crate) attr: std::sync::OnceLock<Box<crate::attribution::AttrTables>>,
    /// The quantized program, compiled once by [`optimize`](Self::optimize);
    /// `None` inside means compilation was attempted and fell back.
    opt: std::sync::OnceLock<Option<Box<crate::kernel::ForestProgram>>>,
}

/// Derived caches (`depths`, the node table's kernel view, `attr`,
/// `opt`) are excluded: they are functions of the node table, and the
/// kernel's leaf thresholds are `NaN`, which would make any forest
/// compare unequal to itself.
impl PartialEq for FlatForest {
    fn eq(&self, other: &Self) -> bool {
        self.roots == other.roots
            && self.nodes == other.nodes
            && self.n_trees == other.n_trees
            && self.empty_value == other.empty_value
    }
}

impl FlatForest {
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.n_nodes()
    }

    /// Lower the forest into its quantized, feature-pruned, depth-unrolled
    /// program (see [`crate::kernel`]). Idempotent; batched scoring and
    /// attribution use the program only after this has run, so
    /// un-optimized instances stay the exact interpreter. Returns whether
    /// a compiled program is active (`false` = exactness fallback).
    pub fn optimize(&self) -> bool {
        self.opt
            .get_or_init(|| {
                crate::kernel::ForestProgram::compile(&self.nodes, &self.roots, &self.depths)
                    .map(Box::new)
            })
            .is_some()
    }

    /// The compiled program, if [`optimize`](Self::optimize) has run and
    /// succeeded.
    #[inline]
    pub(crate) fn program(&self) -> Option<&crate::kernel::ForestProgram> {
        self.opt.get().and_then(|p| p.as_deref())
    }

    /// Mean of per-tree predictions for one row, in tree order.
    #[inline]
    fn score_row(&self, row: &[f64]) -> f64 {
        let mut sum = 0.0;
        for &root in &self.roots {
            sum += self.nodes.score_from(root, row);
        }
        sum / self.n_trees
    }

    /// Score every row of `x`: per block, every tree traverses all rows
    /// before the next tree starts, keeping the tree's nodes cache-hot.
    pub fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        let n = x.n_rows();
        if self.roots.is_empty() {
            return vec![self.empty_value; n];
        }
        let width = x.n_cols();
        if width == 0 {
            return (0..n).map(|_| self.score_row(&[])).collect();
        }
        let kt = self.nodes.kernel_tables();
        if kt.max_feature as usize >= width {
            let mut row = vec![0.0; width];
            return (0..n)
                .map(|i| {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = x.value(i, j);
                    }
                    self.score_row(&row)
                })
                .collect();
        }
        let mut out = vec![0.0; n];
        if let Some(prog) = self.program() {
            // The compiled program folds leaves in the interpreter's
            // exact order (trees in forest order per row), so sums — and
            // the final division — are bit-identical.
            // SAFETY: walk_batch only fires rows `< x.n_rows()` =
            // out.len(); this sink runs once per (row, tree) and is the
            // single hottest callback in batch scoring.
            prog.walk_batch(x, &mut |r, _leaf, v| unsafe {
                *out.get_unchecked_mut(r) += v;
            });
            out.iter_mut().for_each(|o| *o /= self.n_trees);
            return out;
        }
        for_each_block(x, |start, rows, block| {
            // Padded accumulator: pad-row sums land here too and are
            // simply never copied out, keeping the sink branch-free.
            let mut acc = [0.0f64; BLOCK_ROWS];
            let acc = &mut acc[..block.len() / width];
            for (&root, &depth) in self.roots.iter().zip(&self.depths) {
                self.nodes
                    .score_block(kt, root, depth, block, width, &mut |r, v| acc[r] += v);
            }
            for (dst, sum) in out[start..start + rows].iter_mut().zip(&*acc) {
                *dst = sum / self.n_trees;
            }
        });
        out
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32s(&self.roots);
        self.nodes.encode(w);
        w.put_f64(self.n_trees);
        w.put_f64(self.empty_value);
    }

    fn decode(r: &mut ByteReader) -> Result<FlatForest, String> {
        let roots = r.get_u32s()?;
        let nodes = FlatTree::decode(r)?;
        if let Some(&root) = roots.iter().find(|&&root| root as usize >= nodes.n_nodes()) {
            return Err(format!("flat forest root {root} is out of range"));
        }
        let all_depths = nodes.node_depths();
        let depths = roots.iter().map(|&r| all_depths[r as usize]).collect();
        Ok(FlatForest {
            depths,
            roots,
            nodes,
            n_trees: r.get_f64()?,
            empty_value: r.get_f64()?,
            attr: Default::default(),
            opt: Default::default(),
        })
    }
}

/// Flatten a forest's trees into one shared node table.
pub(crate) fn flatten_forest<'a>(
    trees: impl Iterator<Item = Option<&'a Node>>,
    empty_value: f64,
) -> FlatForest {
    let mut nodes = FlatTree::default();
    let mut roots = Vec::new();
    for root in trees {
        roots.push(match root {
            Some(node) => nodes.push_node(node),
            None => nodes.push_leaf(empty_value),
        });
    }
    if roots.is_empty() {
        // Keep the invariant that a node table is never empty.
        nodes.push_leaf(empty_value);
    }
    let all_depths = nodes.node_depths();
    FlatForest {
        n_trees: roots.len() as f64,
        depths: roots.iter().map(|&r| all_depths[r as usize]).collect(),
        roots,
        nodes,
        empty_value,
        attr: Default::default(),
        opt: Default::default(),
    }
}

/// Columnar `bias + Σ w_j·x_j` accumulated in feature order — the same
/// fold the row-major `dot` performs, so sums are bit-identical.
fn linear_batch(bias: f64, weights: &[f64], x: &ColMatrix) -> Vec<f64> {
    let mut z = vec![0.0; x.n_rows()];
    for (w, j) in weights.iter().zip(0..x.n_cols()) {
        for (zi, &v) in z.iter_mut().zip(x.col(j)) {
            *zi += w * v;
        }
    }
    z.iter_mut().for_each(|zi| *zi += bias);
    z
}

/// Batched gaussian-NB posterior, same per-feature fold order as
/// `GaussianNb::log_likelihood`.
fn nb_batch(log_priors: [f64; 2], stats: &[Vec<(f64, f64)>; 2], x: &ColMatrix) -> Vec<f64> {
    let ln_2pi = (2.0 * std::f64::consts::PI).ln();
    let mut ll = [
        vec![log_priors[0]; x.n_rows()],
        vec![log_priors[1]; x.n_rows()],
    ];
    for (class, out) in ll.iter_mut().enumerate() {
        for (&(mean, var), j) in stats[class].iter().zip(0..x.n_cols()) {
            for (l, &v) in out.iter_mut().zip(x.col(j)) {
                *l += -0.5 * ((v - mean) * (v - mean) / var + var.ln() + ln_2pi);
            }
        }
    }
    ll[0]
        .iter()
        .zip(&ll[1])
        .map(|(&l0, &l1)| {
            let m = l0.max(l1);
            let e0 = (l0 - m).exp();
            let e1 = (l1 - m).exp();
            e1 / (e0 + e1)
        })
        .collect()
}

/// Squared Euclidean distance with the row-major fold order (truncates at
/// the shorter operand, like the boxed `zip`).
#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Batched k-NN vote fractions: one reused distance scratch per call
/// instead of a fresh allocation per row.
fn knn_batch(k: usize, width: usize, train: &[f64], labels: &[u32], x: &ColMatrix) -> Vec<f64> {
    let n = x.n_rows();
    if labels.is_empty() {
        return vec![0.5; n];
    }
    let mut row = vec![0.0; x.n_cols()];
    let mut dists: Vec<(f64, u32)> = Vec::with_capacity(labels.len());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        for (j, v) in row.iter_mut().enumerate() {
            *v = x.value(i, j);
        }
        dists.clear();
        if width == 0 {
            dists.extend(labels.iter().map(|&l| (0.0, l)));
        } else {
            dists.extend(
                train
                    .chunks_exact(width)
                    .zip(labels)
                    .map(|(t, &l)| (sq_dist(&row, t), l)),
            );
        }
        let k = k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let votes: u32 = dists[..k].iter().map(|&(_, l)| l).sum();
        out.push(votes as f64 / k as f64);
    }
    out
}

/// A classifier compiled for batched scoring and binary persistence.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledClassifier {
    Forest(FlatForest),
    Tree(FlatTree),
    Logistic {
        bias: f64,
        weights: Vec<f64>,
    },
    GaussianNb {
        log_priors: [f64; 2],
        /// `stats[class][feature] = (mean, variance)`; empty = unfitted.
        stats: [Vec<(f64, f64)>; 2],
        fitted: bool,
    },
    Knn {
        k: usize,
        /// Row-major training rows, `width` features each.
        width: usize,
        train: Vec<f64>,
        labels: Vec<u32>,
    },
}

impl CompiledClassifier {
    /// Class-1 probability for every row of `x`, bit-identical to the
    /// source model's `predict_proba` per row.
    pub fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        match self {
            CompiledClassifier::Forest(forest) => forest.predict_batch(x),
            CompiledClassifier::Tree(tree) => tree.predict_batch(x),
            CompiledClassifier::Logistic { bias, weights } => linear_batch(*bias, weights, x)
                .into_iter()
                .map(crate::logreg::sigmoid)
                .collect(),
            CompiledClassifier::GaussianNb {
                log_priors,
                stats,
                fitted,
            } => {
                if !*fitted {
                    return vec![0.5; x.n_rows()];
                }
                nb_batch(*log_priors, stats, x)
            }
            CompiledClassifier::Knn {
                k,
                width,
                train,
                labels,
            } => knn_batch(*k, *width, train, labels, x),
        }
    }

    /// Compile tree-shaped models to their quantized programs (see
    /// [`crate::kernel`]); other learners are already branch-free and
    /// return `true` unchanged. Returns whether every kernel this model
    /// could compile is active.
    pub fn optimize(&self) -> bool {
        match self {
            CompiledClassifier::Forest(forest) => forest.optimize(),
            CompiledClassifier::Tree(tree) => tree.optimize(),
            _ => true,
        }
    }

    /// The active compiled program, if this is a tree-shaped model whose
    /// `optimize` succeeded.
    pub(crate) fn program(&self) -> Option<&crate::kernel::ForestProgram> {
        match self {
            CompiledClassifier::Forest(forest) => forest.program(),
            CompiledClassifier::Tree(tree) => tree.program(),
            _ => None,
        }
    }

    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            CompiledClassifier::Forest(forest) => {
                w.put_u8(0);
                forest.encode(w);
            }
            CompiledClassifier::Tree(tree) => {
                w.put_u8(1);
                tree.encode(w);
            }
            CompiledClassifier::Logistic { bias, weights } => {
                w.put_u8(2);
                w.put_f64(*bias);
                w.put_f64s(weights);
            }
            CompiledClassifier::GaussianNb {
                log_priors,
                stats,
                fitted,
            } => {
                w.put_u8(3);
                w.put_u8(*fitted as u8);
                w.put_f64(log_priors[0]);
                w.put_f64(log_priors[1]);
                for class in stats {
                    w.put_usize(class.len());
                    for &(mean, var) in class {
                        w.put_f64(mean);
                        w.put_f64(var);
                    }
                }
            }
            CompiledClassifier::Knn {
                k,
                width,
                train,
                labels,
            } => {
                w.put_u8(4);
                w.put_usize(*k);
                w.put_usize(*width);
                w.put_f64s(train);
                w.put_u32s(labels);
            }
        }
    }

    pub fn decode(r: &mut ByteReader) -> Result<CompiledClassifier, String> {
        match r.get_u8()? {
            0 => Ok(CompiledClassifier::Forest(FlatForest::decode(r)?)),
            1 => Ok(CompiledClassifier::Tree(FlatTree::decode(r)?)),
            2 => Ok(CompiledClassifier::Logistic {
                bias: r.get_f64()?,
                weights: r.get_f64s()?,
            }),
            3 => {
                let fitted = r.get_u8()? != 0;
                let log_priors = [r.get_f64()?, r.get_f64()?];
                let mut stats: [Vec<(f64, f64)>; 2] = [Vec::new(), Vec::new()];
                for class in &mut stats {
                    let n = r.get_usize()?;
                    for _ in 0..n {
                        class.push((r.get_f64()?, r.get_f64()?));
                    }
                }
                Ok(CompiledClassifier::GaussianNb {
                    log_priors,
                    stats,
                    fitted,
                })
            }
            4 => {
                let k = r.get_usize()?;
                let width = r.get_usize()?;
                let train = r.get_f64s()?;
                let labels = r.get_u32s()?;
                if width != 0 && train.len() != width * labels.len() {
                    return Err("knn training matrix size mismatch".into());
                }
                Ok(CompiledClassifier::Knn {
                    k,
                    width,
                    train,
                    labels,
                })
            }
            tag => Err(format!("unknown compiled-classifier tag {tag}")),
        }
    }
}

/// Link every optimized tree-shaped model of a battery to one shared
/// quantization (the union of their cut tables), so batched scoring
/// ranks each matrix once per call instead of once per model — see
/// [`crate::kernel`]. Call after the battery's `optimize` pass; models
/// without an active program (non-tree learners, exactness fallbacks)
/// simply don't participate. Idempotent, and a no-op when the merged
/// tables would not quantize losslessly.
pub fn link_battery<'a>(
    classifiers: impl IntoIterator<Item = &'a CompiledClassifier>,
    regressors: impl IntoIterator<Item = &'a CompiledRegressor>,
) {
    let programs: Vec<&crate::kernel::ForestProgram> = classifiers
        .into_iter()
        .filter_map(|m| m.program())
        .chain(regressors.into_iter().filter_map(|m| m.program()))
        .collect();
    crate::kernel::link_programs(&programs);
}

/// A regressor compiled for batched scoring and binary persistence.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledRegressor {
    Linear {
        intercept: f64,
        coefficients: Vec<f64>,
    },
    Tree(FlatTree),
    Forest(FlatForest),
}

impl CompiledRegressor {
    /// Predicted target for every row of `x`, bit-identical to the
    /// source model's `predict` per row.
    pub fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        match self {
            CompiledRegressor::Linear {
                intercept,
                coefficients,
            } => linear_batch(*intercept, coefficients, x),
            CompiledRegressor::Tree(tree) => tree.predict_batch(x),
            CompiledRegressor::Forest(forest) => forest.predict_batch(x),
        }
    }

    /// Compile tree-shaped models to their quantized programs (see
    /// [`crate::kernel`]); linear models are already branch-free.
    pub fn optimize(&self) -> bool {
        match self {
            CompiledRegressor::Linear { .. } => true,
            CompiledRegressor::Tree(tree) => tree.optimize(),
            CompiledRegressor::Forest(forest) => forest.optimize(),
        }
    }

    /// The active compiled program, if this is a tree-shaped model whose
    /// `optimize` succeeded.
    pub(crate) fn program(&self) -> Option<&crate::kernel::ForestProgram> {
        match self {
            CompiledRegressor::Linear { .. } => None,
            CompiledRegressor::Tree(tree) => tree.program(),
            CompiledRegressor::Forest(forest) => forest.program(),
        }
    }

    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            CompiledRegressor::Linear {
                intercept,
                coefficients,
            } => {
                w.put_u8(0);
                w.put_f64(*intercept);
                w.put_f64s(coefficients);
            }
            CompiledRegressor::Tree(tree) => {
                w.put_u8(1);
                tree.encode(w);
            }
            CompiledRegressor::Forest(forest) => {
                w.put_u8(2);
                forest.encode(w);
            }
        }
    }

    pub fn decode(r: &mut ByteReader) -> Result<CompiledRegressor, String> {
        match r.get_u8()? {
            0 => Ok(CompiledRegressor::Linear {
                intercept: r.get_f64()?,
                coefficients: r.get_f64s()?,
            }),
            1 => Ok(CompiledRegressor::Tree(FlatTree::decode(r)?)),
            2 => Ok(CompiledRegressor::Forest(FlatForest::decode(r)?)),
            tag => Err(format!("unknown compiled-regressor tag {tag}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestConfig, RandomForest, RandomForestRegressor};
    use crate::knn::Knn;
    use crate::logreg::LogisticRegression;
    use crate::nb::GaussianNb;
    use crate::tree::{DecisionTree, RegressionTree};
    use crate::{Classifier, Regressor};

    /// Deterministic pseudo-random rows (splitmix64-flavoured), sized to
    /// cross several block boundaries.
    fn synth_rows(n: usize, cols: usize, salt: u64) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt | 1);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        (0..n)
            .map(|_| (0..cols).map(|_| next() * 10.0 - 5.0).collect())
            .collect()
    }

    fn labels_of(rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| (r[0] + r[1] > 0.0) as usize).collect()
    }

    fn assert_batch_matches_rowwise(model: &dyn Classifier, rows: &[Vec<f64>]) {
        let x = ColMatrix::from_rows(rows);
        let batch = model.predict_batch(&x);
        assert_eq!(batch.len(), rows.len());
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(
                got.to_bits(),
                model.predict_proba(row).to_bits(),
                "batched prediction diverged"
            );
        }
    }

    #[test]
    fn forest_batch_is_bit_identical_across_blocks() {
        // 150 rows: two full 64-row blocks plus a 22-row tail.
        let rows = synth_rows(150, 7, 3);
        let y = labels_of(&rows);
        let mut f = RandomForest::new();
        f.fit(&rows, &y);
        assert_batch_matches_rowwise(&f, &rows);
    }

    #[test]
    fn every_classifier_batch_is_bit_identical() {
        let rows = synth_rows(97, 5, 11);
        let y = labels_of(&rows);
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(RandomForest::new()),
            Box::new(DecisionTree::new()),
            Box::new(LogisticRegression::new()),
            Box::new(GaussianNb::new()),
            Box::new(Knn::new(5)),
        ];
        for mut model in models {
            model.fit(&rows, &y);
            assert_batch_matches_rowwise(model.as_ref(), &rows);
        }
    }

    #[test]
    fn regressor_batches_are_bit_identical() {
        let rows = synth_rows(80, 4, 7);
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[2] + 0.5).collect();
        let x = ColMatrix::from_rows(&rows);

        let mut forest = RandomForestRegressor::new();
        forest.fit(&rows, &y);
        let mut tree = RegressionTree::new();
        tree.fit(&rows, &y);
        let mut linear = crate::linreg::LinearRegression::new();
        linear.fit(&rows, &y);

        let batch = forest.compile().unwrap().predict_batch(&x);
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(got.to_bits(), Regressor::predict(&forest, row).to_bits());
        }
        let batch = tree.compile().unwrap().predict_batch(&x);
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(got.to_bits(), Regressor::predict(&tree, row).to_bits());
        }
        let batch = linear.compile().unwrap().predict_batch(&x);
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(got.to_bits(), Regressor::predict(&linear, row).to_bits());
        }
    }

    #[test]
    fn compiled_roundtrip_through_bytes() {
        let rows = synth_rows(60, 4, 23);
        let y = labels_of(&rows);
        let mut f = RandomForest::with_config(ForestConfig {
            n_trees: 7,
            ..Default::default()
        });
        f.fit(&rows, &y);
        let compiled = f.compile().unwrap();
        let mut w = ByteWriter::new();
        compiled.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = CompiledClassifier::decode(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(compiled, decoded);
    }

    #[test]
    fn unfitted_models_compile_to_defaults() {
        let x = ColMatrix::from_rows(&synth_rows(10, 3, 1));
        let f = RandomForest::new();
        assert!(f
            .compile()
            .unwrap()
            .predict_batch(&x)
            .iter()
            .all(|&p| p == 0.5));
        let t = DecisionTree::new();
        assert!(t
            .compile()
            .unwrap()
            .predict_batch(&x)
            .iter()
            .all(|&p| p == 0.5));
        let r = RandomForestRegressor::new();
        assert!(r
            .compile()
            .unwrap()
            .predict_batch(&x)
            .iter()
            .all(|&p| p == 0.0));
    }

    #[test]
    fn zero_width_matrix_scores_leaf_defaults() {
        let rows: Vec<Vec<f64>> = vec![vec![]; 5];
        let x = ColMatrix::from_rows(&rows);
        let mut t = DecisionTree::new();
        t.fit(&synth_rows(20, 2, 9), &labels_of(&synth_rows(20, 2, 9)));
        let batch = t.predict_batch(&x);
        assert_eq!(batch.len(), 5);
        for (got, row) in batch.iter().zip(&rows) {
            assert_eq!(got.to_bits(), t.predict_proba(row).to_bits());
        }
    }

    #[test]
    fn empty_forest_roundtrips_and_scores_empty_value() {
        // A forest with zero voting trees (never produced by `fit`, but
        // legal on the wire) must round-trip and score its empty default
        // rather than dividing by a zero tree count.
        let forest = flatten_forest(std::iter::empty(), 0.5);
        assert_eq!(forest.n_trees(), 0);
        let mut w = ByteWriter::new();
        CompiledClassifier::Forest(forest.clone()).encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = CompiledClassifier::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(decoded, CompiledClassifier::Forest(forest));
        let x = ColMatrix::from_rows(&synth_rows(9, 3, 5));
        assert!(decoded.predict_batch(&x).iter().all(|&p| p == 0.5));
    }

    #[test]
    fn single_leaf_tree_roundtrips_and_scores_constant() {
        // The smallest legal tree: one self-looping leaf. Must survive
        // the wire and predict its constant for wide and zero-width rows.
        let tree = flatten_tree(None, 0.25);
        assert_eq!(tree.n_nodes(), 1);
        let mut w = ByteWriter::new();
        CompiledRegressor::Tree(tree.clone()).encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = CompiledRegressor::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(decoded, CompiledRegressor::Tree(tree));
        let wide = ColMatrix::from_rows(&synth_rows(70, 4, 13));
        assert!(decoded.predict_batch(&wide).iter().all(|&p| p == 0.25));
        let empty = ColMatrix::from_rows(&vec![vec![]; 3]);
        assert!(decoded.predict_batch(&empty).iter().all(|&p| p == 0.25));
    }

    #[test]
    fn nan_thresholds_decode_and_score_without_panicking() {
        // A NaN *leaf value* (stored in the threshold slot) is legal and
        // must flow through scoring as NaN.
        let mut w = ByteWriter::new();
        w.put_u8(1); // tree tag
        w.put_u32s(&[LEAF]);
        w.put_f64s(&[f64::NAN]);
        w.put_u32s(&[0]);
        w.put_u32s(&[0]);
        let bytes = w.into_bytes();
        let decoded = CompiledClassifier::decode(&mut ByteReader::new(&bytes)).unwrap();
        let x = ColMatrix::from_rows(&synth_rows(5, 2, 17));
        assert!(decoded.predict_batch(&x).iter().all(|p| p.is_nan()));

        // A NaN *split threshold*: `v <= NaN` is false for every v, so
        // both the row walk and the lockstep kernel must take the right
        // branch — deterministically, with no panic.
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u32s(&[0, LEAF, LEAF]);
        w.put_f64s(&[f64::NAN, 1.0, 2.0]);
        w.put_u32s(&[1, 1, 2]);
        w.put_u32s(&[2, 1, 2]);
        let bytes = w.into_bytes();
        let decoded = CompiledClassifier::decode(&mut ByteReader::new(&bytes)).unwrap();
        // Enough rows to exercise the blocked kernel, not just the tail.
        let x = ColMatrix::from_rows(&synth_rows(130, 3, 19));
        assert!(decoded.predict_batch(&x).iter().all(|&p| p == 2.0));
    }

    #[test]
    fn every_truncation_of_a_compiled_model_fails_decode() {
        let rows = synth_rows(40, 3, 29);
        let y = labels_of(&rows);
        let mut f = RandomForest::with_config(ForestConfig {
            n_trees: 3,
            ..Default::default()
        });
        f.fit(&rows, &y);
        let mut w = ByteWriter::new();
        f.compile().unwrap().encode(&mut w);
        let bytes = w.into_bytes();
        // Every proper prefix must error — never panic, never succeed
        // (success on a prefix would mean trailing fields are ignored).
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                CompiledClassifier::decode(&mut r).is_err(),
                "decode succeeded on a {cut}-byte truncation"
            );
        }
    }

    #[test]
    fn corrupt_tables_fail_decode() {
        let mut w = ByteWriter::new();
        w.put_u8(1); // tree tag
        w.put_u32s(&[3]); // one split node referencing children 9/9
        w.put_f64s(&[0.0]);
        w.put_u32s(&[9]);
        w.put_u32s(&[9]);
        let bytes = w.into_bytes();
        assert!(CompiledClassifier::decode(&mut ByteReader::new(&bytes)).is_err());

        assert!(CompiledClassifier::decode(&mut ByteReader::new(&[250])).is_err());
    }
}
