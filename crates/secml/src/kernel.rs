//! The battery compiler: lowers a flattened forest into a quantized,
//! feature-pruned, depth-unrolled scoring program.
//!
//! The PR 4 interpreter ([`FlatTree::score_block`]-style lockstep over
//! [`KernelTables`](crate::infer::KernelTables)) still pays for generic
//! trees on every step: an 8-byte packed node plus an 8-byte threshold
//! load, a double compare, and a 50 KiB row-major `f64` block gathered
//! per model per block whether or not a column is ever split on.
//! [`ForestProgram`] removes that interpretive overhead at *compile*
//! time — a load/reload-time step behind `optimize()`, never a wire
//! format change:
//!
//! - **Quantized thresholds.** Every feature's split thresholds across
//!   the whole forest become a sorted cut table, and each row value is
//!   bucketed once per matrix into a `u16` rank. Node compares become
//!   integer compares: with 1-based buckets (`bucket(v) = 1 + #{cuts <
//!   v}`, `NaN` mapping above every cut) and a node's quantized
//!   threshold `qt = bucket(threshold)`, the IEEE comparison `v <= t` is
//!   *exactly* `bucket(v) <= qt` — including `-0.0`/`0.0` ties and NaN
//!   row values. A `NaN` split threshold (always-false, go right) and a
//!   leaf both encode as `qt = 0`, which no bucket (≥ 1) ever satisfies.
//!   When a feature's threshold set cannot quantize losslessly into the
//!   `u16` rank space (> [`MAX_CUTS`] distinct cuts), `compile` refuses
//!   and the caller keeps the exact interpreter — the exactness
//!   fallback. Ranking is a branchless binary search over a
//!   power-of-two cut table padded with `+∞`: `log2(cuts)`
//!   conditional-move steps per value, no sort of the matrix, and the
//!   searches for different rows are independent so they pipeline.
//! - **Feature-subset pruning.** Each tree records the columns its
//!   splits actually touch; row prep buckets only the union of touched
//!   columns into a packed per-matrix `u16` table (row-major per
//!   feature slot), so dead columns are never gathered and the whole
//!   working set drops from ~50 KiB of `f64` per block to a few KiB of
//!   ranks that stay cache-resident across all 200 trees.
//! - **Mask-propagation blocks.** A full block never descends per row
//!   at all. The program first builds, per feature, a table of 64-bit
//!   row masks indexed by cut rank — `mask(qt)` = "rows of this block
//!   whose bucket is ≤ qt", a histogram over the block's ranks followed
//!   by a prefix-OR — and every split node's compare against the whole
//!   block becomes *one load* of `mask(qt)`. Each tree is then walked
//!   once in preorder, propagating row-set masks (`left = m & mask`,
//!   `right = m & !mask`) and skipping any subtree whose mask goes
//!   empty, so the work scales with the nodes the block actually
//!   reaches (≈ one visit per node) instead of `rows × depth` lockstep
//!   steps. Landed rows pop out of the leaf masks bit by bit, one
//!   `(row, leaf, value)` sink call each.
//! - **Depth-unrolled hot trees.** Short blocks — serve-style
//!   single-row scoring, tiny batch tails below [`MASK_MIN_ROWS`] —
//!   can't amortize mask tables, so trees whose depth is at most
//!   [`UNROLL_MAX_DEPTH`] also compile a perfect-binary ladder: slot
//!   `j` steps to `2j + 1 + (bucket > qt)` with no child pointer load,
//!   the step count a compile-time constant (monomorphized per depth),
//!   early leaves padded down the always-right spine with `qt = 0`
//!   sentinels. Deeper trees (wire-decoded, custom configs) run a
//!   quantized lockstep loop over the shared node table on that path.
//!
//! Every decision the program makes is provably the decision the
//! interpreter makes, so leaf values — and therefore scores *and*
//! attribution deposits, which only depend on the landed leaf — are
//! bit-identical. The equality gate in `tests/` and the
//! `inference_kernel` bench enforce this end to end.

use crate::dataset::ColMatrix;
use crate::infer::{FlatTree, BLOCK_ROWS, LANES, LEAF};

/// Trees at or below this depth compile to the branchless unrolled
/// ladder; deeper trees keep the (quantized) lockstep loop. 8 matches
/// the default `TreeConfig::max_depth`, so trained batteries unroll
/// every tree; the ladder for depth 8 is 255 nodes + 256 leaves — about
/// 2 KiB, comfortably L1-resident while a tree sweeps a block.
pub(crate) const UNROLL_MAX_DEPTH: u32 = 8;

/// Blocks with at least this many rows run the mask-propagation walk;
/// shorter blocks (single-row serve scoring, tail blocks of tiny
/// batches) keep the ladder/lockstep descent, whose per-tree fixed
/// cost is lower than building the per-block mask tables.
pub(crate) const MASK_MIN_ROWS: usize = 32;

// The mask walk packs one block row per bit of a u64.
const _: () = assert!(BLOCK_ROWS <= 64);

/// Cut tables at or below this size rank by vectorized counting;
/// larger ones fall back to a per-value branchless binary search (see
/// [`FeatQuant::bucket_column`]). 64 keeps the counting path's
/// `O(rows · cuts)` under the search's constant factor everywhere the
/// crossover could plausibly sit.
const COUNT_CUTS_MAX: usize = 64;

/// Largest number of distinct cuts a feature may quantize into: buckets
/// run `1 ..= cuts + 1` (the top bucket also absorbs `NaN`), and both
/// must fit `u16`. Beyond this the threshold set does not quantize
/// losslessly and `compile` falls back to the interpreter.
pub(crate) const MAX_CUTS: usize = u16::MAX as usize - 1;

/// One touched feature: its source column and the forest-wide sorted
/// table of distinct finite split thresholds on that column.
#[derive(Debug, Clone)]
struct FeatQuant {
    column: u32,
    cuts: Vec<f64>,
    /// `cuts` padded with `+∞` to a power of two — the branchless
    /// search table. `+∞` pads are transparent: they are never `< v`,
    /// even for `v = +∞`, so the padded rank equals the real rank.
    pad: Vec<f64>,
}

impl FeatQuant {
    /// Rank an entire column at once: `bucket(v) = 1 + #{cuts < v}`,
    /// with `NaN` pinned above every cut so `bucket(NaN) <= qt` is false
    /// for every node — mirroring IEEE `NaN <= t`.
    ///
    /// Small cut tables (the battery's typical ~10–20 cuts a feature)
    /// rank by counting, cuts outer and rows inner: `dst[r] += (c <
    /// col[r])` over a contiguous column is branchless, carries no
    /// loop dependency, and vectorizes. (`c < NaN` is false for every
    /// cut, so NaN rows fall out of the count at 1 and are pinned to
    /// the top bucket in one trailing pass.) Big tables — possible
    /// through the wire path — switch to a branchless lower-bound over
    /// the `+∞`-padded power-of-two table, `log2(cuts)`
    /// conditional-move steps per value, so cost never exceeds
    /// `O(rows · log cuts)`.
    fn bucket_column(&self, col: &[f64], dst: &mut [u16], counts: &mut Vec<f64>) {
        let top = self.cuts.len() as u16 + 1;
        if self.cuts.len() <= COUNT_CUTS_MAX {
            counts.clear();
            counts.resize(col.len(), 0.0);
            // Counting in f64 keeps the whole accumulation in one lane
            // width — compare, mask to 1.0, add — which the
            // autovectorizer handles; counts are integers well inside
            // exact f64 range. `c < NaN` is false for every cut, so
            // NaN rows sit at 0 and the conversion pass pins them to
            // the top bucket.
            for &c in &self.cuts {
                for (a, &v) in counts.iter_mut().zip(col) {
                    *a += if c < v { 1.0 } else { 0.0 };
                }
            }
            for ((d, &a), &v) in dst.iter_mut().zip(counts.iter()).zip(col) {
                *d = if v.is_nan() { top } else { a as u16 + 1 };
            }
        } else {
            for (d, &v) in dst.iter_mut().zip(col) {
                *d = if v.is_nan() {
                    top
                } else {
                    let mut lo = 0usize;
                    let mut half = self.pad.len() >> 1;
                    while half > 0 {
                        lo += usize::from(self.pad[lo + half - 1] < v) * half;
                        half >>= 1;
                    }
                    (lo + usize::from(self.pad[lo] < v)) as u16 + 1
                };
            }
        }
    }
}

/// Battery-wide quantization, shared by every linked program: the
/// per-column *union* of the programs' cut tables, plus a one-slot
/// cache of the last matrix ranked against it.
///
/// Without sharing, every program in a battery re-buckets the same
/// matrix against its own (largely overlapping) cut tables — for a
/// 15-model battery that is 15 passes over identical columns per
/// scoring call, and it dominates the walk once the descent itself is
/// mask-driven. Linked programs instead rank the matrix *once* against
/// the merged tables and recover their local ranks through a
/// precomputed monotone remap ([`down_table`]), which is exact because
/// each local cut table is a subset of the merged one: with
/// `bucket(v) = 1 + #{cuts < v}`, the merged rank pins down exactly
/// which merged cuts lie below `v`, and counting the local cuts among
/// them *is* the local rank.
///
/// The cache keys on [`ColMatrix::identity`] — process-unique per
/// construction, so a hit can only mean the same immutable matrix —
/// and deliberately holds one entry: batch scoring walks one matrix
/// across all models before moving on, and short blocks (serve-style
/// single rows) never take this path at all (see
/// [`ForestProgram::walk_batch`]), so there is nothing to thrash.
#[derive(Debug)]
pub(crate) struct SharedQuant {
    feats: Vec<FeatQuant>,
    /// Largest source column any merged table reads; matrices narrower
    /// than this cannot be ranked shared and fall back to local
    /// bucketing.
    max_column: u32,
    cache: std::sync::Mutex<Option<(u64, std::sync::Arc<Vec<u16>>)>>,
}

impl SharedQuant {
    /// Merged ranks for `x`, slot-major (`feats.len() × n_rows` `u16`s),
    /// cached across the battery's walks over the same matrix. Computing
    /// under the lock is intentional: concurrent models asking for the
    /// same matrix should wait for one ranking, not race duplicates.
    fn ranks(&self, x: &ColMatrix) -> std::sync::Arc<Vec<u16>> {
        let mut slot = self.cache.lock().expect("rank cache poisoned");
        if let Some((id, q)) = slot.as_ref() {
            if *id == x.identity() {
                return q.clone();
            }
        }
        let n = x.n_rows();
        let mut q = vec![0u16; self.feats.len() * n];
        let mut counts: Vec<f64> = Vec::new();
        for (s, fq) in self.feats.iter().enumerate() {
            fq.bucket_column(
                x.col(fq.column as usize),
                &mut q[s * n..(s + 1) * n],
                &mut counts,
            );
        }
        let q = std::sync::Arc::new(q);
        *slot = Some((x.identity(), q.clone()));
        q
    }
}

/// One program's view of a [`SharedQuant`]: where its feature slots sit
/// in the merged table and how merged ranks map back to local ranks.
#[derive(Debug, Clone)]
struct SharedCtx {
    quant: std::sync::Arc<SharedQuant>,
    /// Program feature slot → merged feature slot.
    mslot: Vec<u32>,
    /// Concatenated per-slot remap tables: `down[down_base[slot] + mb]`
    /// is the local rank of merged rank `mb`.
    down: Vec<u16>,
    down_base: Vec<u32>,
}

/// The merged-rank → local-rank remap for one column. `local` must be a
/// subset of `merged` (both sorted ascending, deduped by `==`). Entry
/// `mb` (a merged bucket, `1 ..= merged.len() + 1`) holds
/// `1 + #{local cuts among the first mb - 1 merged cuts}`, which equals
/// `1 + #{local cuts < v}` for every `v` with merged bucket `mb` — the
/// definitional local bucket. The top merged rank maps to the top local
/// rank, which also routes `NaN` rows correctly (both tables pin `NaN`
/// to their top bucket). Index 0 is never produced by ranking; it holds
/// 0 so the table stays densely indexable.
fn down_table(merged: &[f64], local: &[f64], out: &mut Vec<u16>) {
    out.push(0);
    out.push(1);
    let mut li = 0usize;
    for &c in merged {
        if li < local.len() && local[li] == c {
            li += 1;
        }
        out.push(li as u16 + 1);
    }
    debug_assert_eq!(li, local.len(), "local cuts must be a subset of merged");
}

/// Link a battery's compiled programs to one [`SharedQuant`] built from
/// the union of their cut tables, so a matrix is ranked once per
/// scoring call instead of once per model. No-op (programs keep exact
/// local bucketing) when the union does not fit the `u16` rank space;
/// already-linked programs are left on their first link.
pub(crate) fn link_programs(programs: &[&ForestProgram]) {
    if programs.len() < 2 {
        // Nothing to share: a lone program's local tables already rank
        // each matrix exactly once.
        return;
    }
    // Merged cut tables: union of every program's cuts per source column.
    let mut merged: std::collections::BTreeMap<u32, Vec<f64>> = std::collections::BTreeMap::new();
    for prog in programs {
        for fq in &prog.feats {
            merged
                .entry(fq.column)
                .or_default()
                .extend_from_slice(&fq.cuts);
        }
    }
    let mut feats = Vec::with_capacity(merged.len());
    let mut max_column = 0u32;
    for (column, mut cuts) in merged {
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| a == b);
        if cuts.len() > MAX_CUTS {
            return;
        }
        let mut pad = cuts.clone();
        pad.resize(cuts.len().next_power_of_two(), f64::INFINITY);
        max_column = max_column.max(column);
        feats.push(FeatQuant { column, cuts, pad });
    }
    let quant = std::sync::Arc::new(SharedQuant {
        feats,
        max_column,
        cache: std::sync::Mutex::new(None),
    });
    let merged_slot = |column: u32| {
        quant
            .feats
            .binary_search_by_key(&column, |fq| fq.column)
            .expect("linked column")
    };
    for prog in programs {
        let mut mslot = Vec::with_capacity(prog.feats.len());
        let mut down = Vec::new();
        let mut down_base = Vec::with_capacity(prog.feats.len() + 1);
        for fq in &prog.feats {
            let ms = merged_slot(fq.column);
            mslot.push(ms as u32);
            down_base.push(down.len() as u32);
            down_table(&quant.feats[ms].cuts, &fq.cuts, &mut down);
        }
        down_base.push(down.len() as u32);
        let _ = prog.shared.set(SharedCtx {
            quant: quant.clone(),
            mslot,
            down,
            down_base,
        });
    }
}

/// Quantized threshold for a split: the rank its cut occupies, chosen so
/// `v <= t  ⟺  bucket(v) <= qt`. `NaN` thresholds (always-false splits)
/// get rank 0, which no bucket satisfies — the same trick the program
/// uses for leaves.
#[inline]
fn qt_of(cuts: &[f64], t: f64) -> u16 {
    if t.is_nan() {
        0
    } else {
        cuts.partition_point(|&c| c < t) as u16 + 1
    }
}

/// One compiled tree on the short-block path: either an unrolled
/// perfect-binary ladder or a (root, depth) program over the shared
/// quantized node table. Full blocks ignore this and run the
/// mask-propagation walk from the tree's root.
#[derive(Debug, Clone)]
enum TreeProg {
    /// Perfect-binary ladder of `2^depth - 1` packed nodes
    /// (`feat_slot << 16 | qt`) and `2^depth` bottom slots. Slot
    /// arithmetic replaces child pointers.
    Unrolled {
        depth: u32,
        nodes: Vec<u32>,
        /// Original node id for each bottom slot — attribution wants the
        /// id, and values come from the shared `value` table, so the
        /// ladder stays 2 KiB a tree instead of 4.
        leaf: Vec<u32>,
    },
    /// Quantized lockstep over the shared table — the preorder
    /// invariant (`left == i + 1`) holds globally, so no per-tree node
    /// extraction is needed and DAG-shaped wire forests cost nothing.
    Lockstep { root: u32, depth: u32 },
}

/// A [`FlatForest`](crate::infer::FlatForest) lowered to its vectorized
/// form. Built once by [`compile`](ForestProgram::compile) (behind
/// `optimize()`), immutable afterwards; scoring and attribution both
/// drive [`walk_batch`](ForestProgram::walk_batch).
#[derive(Debug, Clone)]
pub(crate) struct ForestProgram {
    feats: Vec<FeatQuant>,
    /// Shared quantized node table:
    /// `feat_slot << 48 | qt << 32 | right`. Leaves carry `qt = 0` and
    /// their self-looping `right`, so a finished lockstep lane holds
    /// position.
    qnodes: Vec<u64>,
    /// The mask walk's node records: `maskofs << 32 | right`, where
    /// `maskofs` is the offset into the per-block mask table — split
    /// node `i` compares a whole block as `masks[maskofs]` (=
    /// `feat_base[slot] + qt`, one load instead of 64 per-row
    /// compares) — and `right` the right-child id. Leaves hold
    /// `u32::MAX` in the offset half: the walk's leaf test.
    mnodes: Vec<u64>,
    /// Prefix offsets of each feature's `cuts + 2` mask-table ranks
    /// (`0 ..= cuts + 1`); the extra trailing entry is the table size.
    feat_base: Vec<u32>,
    /// Original per-node values (leaf values in their threshold slots) —
    /// the leaf lookup for every engine.
    value: Vec<f64>,
    roots: Vec<u32>,
    trees: Vec<TreeProg>,
    /// Battery-level quantization, installed once by [`link_programs`]
    /// after every program in the battery has compiled; absent means
    /// this program buckets matrices against its own tables.
    shared: std::sync::OnceLock<SharedCtx>,
}

impl ForestProgram {
    /// Lower `(nodes, roots, depths)` — a validated flat forest — into a
    /// program, or `None` when the table does not quantize losslessly
    /// (the exactness fallback: the caller keeps the interpreter).
    pub(crate) fn compile(
        nodes: &FlatTree,
        roots: &[u32],
        depths: &[u32],
    ) -> Option<ForestProgram> {
        let n = nodes.n_nodes();
        // Distinct split columns in first-touch order, then sorted: the
        // union of per-tree touched columns (leaves contribute nothing).
        let mut columns: Vec<u32> = nodes
            .feature
            .iter()
            .filter(|&&f| f != LEAF)
            .copied()
            .collect();
        columns.sort_unstable();
        columns.dedup();
        if columns.len() > u16::MAX as usize {
            return None;
        }
        let slot_of = |column: u32| columns.binary_search(&column).expect("column is present");
        let mut feats: Vec<FeatQuant> = columns
            .iter()
            .map(|&column| FeatQuant {
                column,
                cuts: Vec::new(),
                pad: Vec::new(),
            })
            .collect();
        for i in 0..n {
            if nodes.feature[i] != LEAF && !nodes.threshold[i].is_nan() {
                feats[slot_of(nodes.feature[i])]
                    .cuts
                    .push(nodes.threshold[i]);
            }
        }
        for fq in &mut feats {
            fq.cuts.sort_by(f64::total_cmp);
            // `==` dedup merges `-0.0`/`0.0`: `v <= -0.0 ⟺ v <= 0.0`
            // under IEEE, so one representative rank is exact for both.
            fq.cuts.dedup_by(|a, b| a == b);
            if fq.cuts.len() > MAX_CUTS {
                return None;
            }
            fq.pad = fq.cuts.clone();
            fq.pad
                .resize(fq.cuts.len().next_power_of_two(), f64::INFINITY);
        }

        // Mask-table layout: feature `slot` owns ranks `0 ..= cuts + 1`
        // starting at `feat_base[slot]`, one u64 row mask per rank per
        // block. Offsets must leave `u32::MAX` free as the leaf
        // sentinel; a forest big enough to overflow that keeps the
        // interpreter.
        let mut feat_base: Vec<u32> = Vec::with_capacity(feats.len() + 1);
        let mut total = 0usize;
        for fq in &feats {
            feat_base.push(total as u32);
            total += fq.cuts.len() + 2;
            if total >= u32::MAX as usize {
                return None;
            }
        }
        feat_base.push(total as u32);

        let mut qnodes = Vec::with_capacity(n);
        let mut mnodes = Vec::with_capacity(n);
        for i in 0..n {
            let f = nodes.feature[i];
            if f == LEAF {
                qnodes.push(u64::from(nodes.right[i]));
                mnodes.push(u64::from(u32::MAX) << 32 | u64::from(nodes.right[i]));
            } else {
                let slot = slot_of(f);
                let qt = qt_of(&feats[slot].cuts, nodes.threshold[i]);
                qnodes.push((slot as u64) << 48 | u64::from(qt) << 32 | u64::from(nodes.right[i]));
                mnodes.push(
                    u64::from(feat_base[slot] + u32::from(qt)) << 32 | u64::from(nodes.right[i]),
                );
            }
        }

        let trees: Vec<TreeProg> = roots
            .iter()
            .zip(depths)
            .map(|(&root, &depth)| {
                if depth <= UNROLL_MAX_DEPTH {
                    build_ladder(nodes, &feats, slot_of, root, depth)
                } else {
                    TreeProg::Lockstep { root, depth }
                }
            })
            .collect();

        Some(ForestProgram {
            feats,
            qnodes,
            mnodes,
            feat_base,
            value: nodes.threshold.clone(),
            roots: roots.to_vec(),
            trees,
            shared: std::sync::OnceLock::new(),
        })
    }

    /// Walk every tree over every row of `x`, calling
    /// `sink(row, leaf_node_id, leaf_value)`. Trees run in forest order
    /// and each row fires exactly once per tree, so every row sees its
    /// trees in forest order — the interpreter's per-row fold order
    /// exactly — and per-row sums and attribution deposits are
    /// bit-identical. (Within one tree the *row* order is unspecified:
    /// the mask walk emits leaves in traversal order. Rows never fold
    /// into each other, so only the per-row tree order matters.) The
    /// caller must already have passed the interpreter's one-time
    /// `max_feature < width` guard, which bounds every column this
    /// program buckets (both sides are the maximum split column of the
    /// same node table).
    pub(crate) fn walk_batch(&self, x: &ColMatrix, sink: &mut impl FnMut(usize, u32, f64)) {
        let n = x.n_rows();
        if n == 0 {
            return;
        }
        // Quantize the whole matrix up front: touched columns only, two
        // bytes a rank. Linked batteries rank the matrix once against
        // the shared merged tables (cached across sibling models) and
        // remap to local ranks — a table lookup per value; unlinked
        // programs (and short matrices, where serve-path cache traffic
        // would outweigh the win) bucket locally (see
        // [`FeatQuant::bucket_column`]). The shared tables may span
        // columns this program never touches, so a narrower matrix —
        // legal for *this* program — must take the local path.
        let mut q = vec![0u16; self.feats.len() * n];
        let shared = if n >= MASK_MIN_ROWS {
            self.shared
                .get()
                .filter(|ctx| (ctx.quant.max_column as usize) < x.n_cols())
        } else {
            None
        };
        if let Some(ctx) = shared {
            let mq = ctx.quant.ranks(x);
            for slot in 0..self.feats.len() {
                let ms = ctx.mslot[slot] as usize;
                let src = &mq[ms * n..(ms + 1) * n];
                let map = &ctx.down[ctx.down_base[slot] as usize..ctx.down_base[slot + 1] as usize];
                for (d, &mb) in q[slot * n..(slot + 1) * n].iter_mut().zip(src) {
                    *d = map[mb as usize];
                }
            }
        } else {
            let mut counts: Vec<f64> = Vec::new();
            for (slot, fq) in self.feats.iter().enumerate() {
                fq.bucket_column(
                    x.col(fq.column as usize),
                    &mut q[slot * n..(slot + 1) * n],
                    &mut counts,
                );
            }
        }
        let mut masks = vec![0u64; *self.feat_base.last().expect("non-empty") as usize];
        let mut stack: Vec<(u32, u64)> = Vec::with_capacity(64);
        let mut tile: Vec<u16> = Vec::new();
        let mut start = 0;
        while start < n {
            let len = BLOCK_ROWS.min(n - start);
            if len >= MASK_MIN_ROWS {
                self.mask_block(&q, n, start, len, &mut masks, &mut stack, sink);
            } else {
                if tile.is_empty() {
                    tile = vec![1u16; self.feats.len() * BLOCK_ROWS];
                }
                self.lane_block(&q, n, start, len, &mut tile, sink);
            }
            start += len;
        }
    }

    /// Mask-propagation engine for one (≥ [`MASK_MIN_ROWS`]-row) block.
    ///
    /// Builds the per-feature rank → row-mask tables (histogram +
    /// prefix-OR: `masks[feat_base[slot] + qt]` = rows whose bucket is
    /// `≤ qt`, so rank 0 — NaN splits — is correctly empty), then walks
    /// each tree once in preorder. At a split, `m & mask` is *exactly*
    /// the rows taking the left branch (`bucket ≤ qt ⟺ v <= t`); empty
    /// branches are pruned, the left spine is followed in-loop and
    /// pending right subtrees stack up. Every row lands exactly one
    /// leaf per tree — the masks at any level partition the block's
    /// rows — so the sink fires once per (tree, row), rows in
    /// traversal order within the tree.
    #[allow(clippy::too_many_arguments)]
    fn mask_block(
        &self,
        q: &[u16],
        n: usize,
        start: usize,
        len: usize,
        masks: &mut [u64],
        stack: &mut Vec<(u32, u64)>,
        sink: &mut impl FnMut(usize, u32, f64),
    ) {
        for (slot, fq) in self.feats.iter().enumerate() {
            let base = self.feat_base[slot] as usize;
            let ranks = fq.cuts.len() + 2;
            masks[base..base + ranks].fill(0);
            for (r, &b) in q[slot * n + start..slot * n + start + len]
                .iter()
                .enumerate()
            {
                masks[base + b as usize] |= 1u64 << r;
            }
            for k in base + 1..base + ranks {
                masks[k] |= masks[k - 1];
            }
        }
        let full = if len == 64 { !0u64 } else { (1u64 << len) - 1 };
        for &root in &self.roots {
            stack.clear();
            let mut node = root as usize;
            let mut m = full;
            loop {
                // SAFETY: `node` is a validated table id — the root, a
                // right pointer the decode guard range-checked, or a
                // preorder left child (`node + 1`, in range because
                // splits are never the last table entry); `mnodes` and
                // `value` are table-length. A split's `maskofs` is
                // `feat_base[slot] + qt ≤ feat_base[slot + 1] - 1 <
                // masks.len()` by construction. Checked indexing here
                // costs as much as the mask AND itself.
                let nd = unsafe { *self.mnodes.get_unchecked(node) };
                if nd >> 32 == u64::from(u32::MAX) {
                    let v = unsafe { *self.value.get_unchecked(node) };
                    let mut bits = m;
                    while bits != 0 {
                        let r = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        sink(start + r, node as u32, v);
                    }
                    match stack.pop() {
                        Some((pending, pm)) => {
                            node = pending as usize;
                            m = pm;
                        }
                        None => break,
                    }
                } else {
                    let cmp = unsafe { *masks.get_unchecked((nd >> 32) as usize) };
                    let left = m & cmp;
                    let right = m & !cmp;
                    if left != 0 {
                        if right != 0 {
                            stack.push((nd as u32, right));
                        }
                        // Preorder invariant: left child is `node + 1`.
                        node += 1;
                        m = left;
                    } else {
                        // `m` is non-empty by construction, so it all
                        // went right.
                        node = (nd & u64::from(u32::MAX)) as usize;
                    }
                }
            }
        }
    }

    /// Per-lane descent engine for short blocks: re-packs the block's
    /// ranks into a compile-time-stride tile (bucket index becomes
    /// shift-and-add) and runs each tree's ladder — or the quantized
    /// lockstep loop for deep trees — [`LANES`] rows at a time. Padding
    /// lanes hold bucket 1 (any real rank) so their walks stay in
    /// bounds and are discarded before the sink.
    #[allow(clippy::too_many_arguments)]
    fn lane_block(
        &self,
        q: &[u16],
        n: usize,
        start: usize,
        len: usize,
        tile: &mut [u16],
        sink: &mut impl FnMut(usize, u32, f64),
    ) {
        let padded = len.next_multiple_of(LANES);
        for slot in 0..self.feats.len() {
            let dst = &mut tile[slot * BLOCK_ROWS..slot * BLOCK_ROWS + padded];
            dst[..len].copy_from_slice(&q[slot * n + start..slot * n + start + len]);
            dst[len..].fill(1);
        }
        for prog in &self.trees {
            match prog {
                TreeProg::Unrolled { depth, nodes, leaf } => {
                    for base in (0..padded).step_by(LANES) {
                        ladder_lanes(
                            *depth,
                            nodes,
                            tile,
                            base,
                            leaf,
                            &self.value,
                            len,
                            start,
                            sink,
                        );
                    }
                }
                TreeProg::Lockstep { root, depth } => {
                    for base in (0..padded).step_by(LANES) {
                        let mut idx = [*root as usize; LANES];
                        for _ in 0..*depth {
                            for (l, i) in idx.iter_mut().enumerate() {
                                let nd = self.qnodes[*i];
                                let b = tile[(nd >> 48) as usize * BLOCK_ROWS + base + l];
                                *i = if b <= (nd >> 32) as u16 {
                                    *i + 1
                                } else {
                                    (nd & u64::from(u32::MAX)) as usize
                                };
                            }
                        }
                        for (l, &i) in idx.iter().enumerate() {
                            if base + l < len {
                                sink(start + base + l, i as u32, self.value[i]);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Expand a (depth ≤ [`UNROLL_MAX_DEPTH`]) tree into its perfect-binary
/// ladder. Early leaves become `qt = 0` spine nodes that force every
/// lane right until the bottom level, where the original leaf's node id
/// lands; slots no walk can reach stay zero.
fn build_ladder(
    nodes: &FlatTree,
    feats: &[FeatQuant],
    slot_of: impl Fn(u32) -> usize + Copy,
    root: u32,
    depth: u32,
) -> TreeProg {
    let inner = (1usize << depth) - 1;
    let mut ladder = vec![0u32; inner];
    let mut leaf = vec![0u32; 1 << depth];
    fill_ladder(
        nodes,
        feats,
        slot_of,
        root as usize,
        0,
        depth,
        &mut ladder,
        &mut leaf,
    );
    TreeProg::Unrolled {
        depth,
        nodes: ladder,
        leaf,
    }
}

#[allow(clippy::too_many_arguments)]
fn fill_ladder(
    nodes: &FlatTree,
    feats: &[FeatQuant],
    slot_of: impl Fn(u32) -> usize + Copy,
    id: usize,
    slot: usize,
    levels_left: u32,
    ladder: &mut [u32],
    leaf: &mut [u32],
) {
    let f = nodes.feature[id];
    if levels_left == 0 {
        // Bottom level: `node_depths` guarantees every path from the
        // root has reached its leaf by now.
        debug_assert_eq!(f, LEAF, "ladder bottom must be a leaf");
        leaf[slot - ladder.len()] = id as u32;
        return;
    }
    if f == LEAF {
        // Early leaf: pad with an always-right sentinel (`qt = 0`; every
        // bucket is ≥ 1) and push the leaf down the right spine.
        ladder[slot] = 0;
        fill_ladder(
            nodes,
            feats,
            slot_of,
            id,
            2 * slot + 2,
            levels_left - 1,
            ladder,
            leaf,
        );
        return;
    }
    let fslot = slot_of(f);
    let qt = qt_of(&feats[fslot].cuts, nodes.threshold[id]);
    ladder[slot] = (fslot as u32) << 16 | u32::from(qt);
    fill_ladder(
        nodes,
        feats,
        slot_of,
        nodes.left[id] as usize,
        2 * slot + 1,
        levels_left - 1,
        ladder,
        leaf,
    );
    fill_ladder(
        nodes,
        feats,
        slot_of,
        nodes.right[id] as usize,
        2 * slot + 2,
        levels_left - 1,
        ladder,
        leaf,
    );
}

/// One [`LANES`]-wide sweep of an unrolled ladder, monomorphized per
/// depth so the step loop fully unrolls into a branchless compare
/// ladder.
#[allow(clippy::too_many_arguments)]
#[inline]
fn ladder_lanes(
    depth: u32,
    nodes: &[u32],
    tile: &[u16],
    base: usize,
    leaf: &[u32],
    value: &[f64],
    len: usize,
    start: usize,
    sink: &mut impl FnMut(usize, u32, f64),
) {
    macro_rules! dispatch {
        ($($d:literal),*) => {
            match depth {
                $($d => ladder_steps::<$d>(nodes, tile, base, leaf, value, len, start, sink),)*
                _ => unreachable!("ladder depth exceeds UNROLL_MAX_DEPTH"),
            }
        };
    }
    dispatch!(0, 1, 2, 3, 4, 5, 6, 7, 8)
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn ladder_steps<const D: u32>(
    nodes: &[u32],
    tile: &[u16],
    base: usize,
    leaf: &[u32],
    value: &[f64],
    len: usize,
    start: usize,
    sink: &mut impl FnMut(usize, u32, f64),
) {
    let first = (1usize << D) - 1;
    debug_assert_eq!(nodes.len(), first);
    debug_assert_eq!(leaf.len(), 1 << D);
    debug_assert!(base + LANES <= BLOCK_ROWS && tile.len().is_multiple_of(BLOCK_ROWS));
    let mut slot = [0usize; LANES];
    for _ in 0..D {
        for (l, s) in slot.iter_mut().enumerate() {
            // SAFETY: after k < D steps a slot satisfies `s < 2^k - 1 +
            // 2^k = 2^{k+1} - 1 ≤ 2^D - 1 = nodes.len()` (each step maps
            // `s → 2s + 1 + b`, `b ∈ {0, 1}`), so the node load is in
            // bounds; the bucket index is `feat_slot * BLOCK_ROWS + base
            // + l` with `feat_slot < tile.len() / BLOCK_ROWS` (compile
            // packs only real feature slots) and `base + l < BLOCK_ROWS`.
            // Bounds checks here cost more than the whole compare — this
            // loop is the entire short-block inner kernel.
            unsafe {
                let nd = *nodes.get_unchecked(*s);
                let b = *tile.get_unchecked((nd >> 16) as usize * BLOCK_ROWS + base + l);
                *s = 2 * *s + 1 + usize::from(b > nd as u16);
            }
        }
    }
    for (l, &s) in slot.iter().enumerate() {
        if base + l < len {
            // SAFETY: D steps land every slot in the bottom level:
            // `first ≤ s < 2^{D+1} - 1`, so `s - first < 2^D`; `leaf`
            // holds original node ids, all `< value.len()`.
            let bottom = s - first;
            unsafe {
                let id = *leaf.get_unchecked(bottom);
                sink(start + base + l, id, *value.get_unchecked(id as usize));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ColMatrix;
    use crate::forest::RandomForest;
    use crate::Classifier;

    fn synth_rows(n: usize, cols: usize, salt: u64) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt | 1);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        (0..n)
            .map(|_| (0..cols).map(|_| next() * 10.0 - 5.0).collect())
            .collect()
    }

    /// A preorder left-spine chain of `splits` nodes on feature 0 with
    /// distinct thresholds, every right edge sharing one bottom leaf — a
    /// legal DAG-shaped wire table that is `splits` levels deep.
    fn chain_tree(splits: usize) -> FlatTree {
        let mut t = FlatTree::default();
        let leaf = splits as u32;
        for i in 0..splits {
            t.feature.push(0);
            t.threshold.push(i as f64 * 0.25 - 8.0);
            t.left.push(i as u32 + 1);
            t.right.push(leaf);
        }
        t.feature.push(LEAF);
        t.threshold.push(42.0);
        t.left.push(leaf);
        t.right.push(leaf);
        t
    }

    fn assert_programs_match(reference: &FlatTree, x: &ColMatrix) {
        let optimized = reference.clone();
        optimized.optimize();
        let a = reference.predict_batch(x);
        let b = optimized.predict_batch(x);
        for (i, (p, q)) in a.iter().zip(&b).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "row {i} diverged");
        }
    }

    #[test]
    fn optimized_forest_scores_bit_identically() {
        let rows = synth_rows(150, 7, 3);
        let y: Vec<usize> = rows.iter().map(|r| (r[0] + r[1] > 0.0) as usize).collect();
        let mut f = RandomForest::new();
        f.fit(&rows, &y);
        let compiled = f.compile().unwrap();
        let optimized = compiled.clone();
        assert!(optimized.optimize());
        let x = ColMatrix::from_rows(&rows);
        let a = compiled.predict_batch(&x);
        let b = optimized.predict_batch(&x);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn mask_and_lane_engines_agree_across_block_sizes() {
        // Batch sizes straddling MASK_MIN_ROWS and BLOCK_ROWS: tiny
        // batches take the ladder path, 64-row blocks the mask walk,
        // and sizes in between exercise both (full blocks masked, the
        // short tail laddered). All must equal the interpreter bitwise.
        let rows = synth_rows(200, 6, 23);
        let y: Vec<usize> = rows.iter().map(|r| (r[2] > 0.5) as usize).collect();
        let mut f = RandomForest::new();
        f.fit(&rows, &y);
        let compiled = f.compile().unwrap();
        let optimized = compiled.clone();
        assert!(optimized.optimize());
        for take in [1usize, MASK_MIN_ROWS - 1, MASK_MIN_ROWS, 64, 65, 150] {
            let x = ColMatrix::from_rows(&rows[..take]);
            let a = compiled.predict_batch(&x);
            let b = optimized.predict_batch(&x);
            for (i, (p, q)) in a.iter().zip(&b).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "take={take} row {i}");
            }
        }
    }

    #[test]
    fn deep_chains_run_the_quantized_lockstep_path() {
        // 40 levels is past UNROLL_MAX_DEPTH, so the short-block path
        // keeps the lockstep loop — over a DAG-shaped table the ladder
        // could not legally expand node-per-slot — and the mask walk
        // must handle the shared bottom leaf (visited once per
        // incoming path, disjoint masks each time).
        let tree = chain_tree(40);
        assert!(tree.optimize());
        let mut rows = synth_rows(90, 3, 11);
        rows[7][0] = f64::NAN;
        rows[33][0] = -8.0;
        assert_programs_match(&tree, &ColMatrix::from_rows(&rows));
    }

    #[test]
    fn oversized_cut_tables_take_the_exactness_fallback() {
        // One feature with MAX_CUTS + 2 distinct thresholds cannot rank
        // into u16 buckets losslessly: optimize() must refuse and leave
        // the interpreter in charge.
        let tree = chain_tree(MAX_CUTS + 2);
        assert!(!tree.optimize());
        let rows = synth_rows(5, 2, 17);
        assert_programs_match(&tree, &ColMatrix::from_rows(&rows));
    }

    #[test]
    fn nan_split_thresholds_quantize_to_always_false() {
        let mut tree = FlatTree::default();
        tree.feature = vec![0, LEAF, LEAF];
        tree.threshold = vec![f64::NAN, 1.0, 2.0];
        tree.left = vec![1, 1, 2];
        tree.right = vec![2, 1, 2];
        assert!(tree.optimize());
        let x = ColMatrix::from_rows(&synth_rows(130, 3, 19));
        assert!(tree.predict_batch(&x).iter().all(|&p| p == 2.0));
    }

    #[test]
    fn linked_batteries_share_ranks_and_stay_bit_identical() {
        // Two forests trained on overlapping features get linked to one
        // merged quantization; scoring must stay bitwise equal to each
        // forest's own interpreter across the mask/ladder block-size
        // boundary (the shared path only covers full blocks).
        let rows = synth_rows(180, 6, 41);
        let ya: Vec<usize> = rows.iter().map(|r| (r[0] > 0.2) as usize).collect();
        let yb: Vec<usize> = rows.iter().map(|r| (r[3] + r[4] > -0.5) as usize).collect();
        let mut fa = RandomForest::new();
        fa.fit(&rows, &ya);
        let mut fb = RandomForest::new();
        fb.fit(&rows, &yb);
        let (ia, ib) = (fa.compile().unwrap(), fb.compile().unwrap());
        let (ca, cb) = (ia.clone(), ib.clone());
        assert!(ca.optimize() && cb.optimize());
        crate::infer::link_battery([&ca, &cb], []);
        for take in [MASK_MIN_ROWS, 64, 65, 180] {
            let x = ColMatrix::from_rows(&rows[..take]);
            for (interp, linked) in [(&ia, &ca), (&ib, &cb)] {
                let a = interp.predict_batch(&x);
                let b = linked.predict_batch(&x);
                for (i, (p, q)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(p.to_bits(), q.to_bits(), "take={take} row {i}");
                }
            }
        }
    }

    #[test]
    fn down_tables_remap_merged_ranks_exactly() {
        // local ⊆ merged (signed zeros deduped by `==` in both): for any
        // probe, ranking against merged then remapping must equal
        // ranking against local directly.
        let local = quant(vec![-2.0, 0.0, 3.5]);
        let merged = quant(vec![-7.25, -2.0, -0.0, 1.0, 3.5, 9.0]);
        let mut down = Vec::new();
        down_table(&merged.cuts, &local.cuts, &mut down);
        assert_eq!(down.len(), merged.cuts.len() + 2);
        for v in [
            -100.0,
            -7.25,
            -2.0,
            -0.0,
            0.0,
            0.5,
            1.0,
            3.5,
            9.0,
            42.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let mb = bucket_one(&merged, v);
            assert_eq!(down[mb as usize], bucket_one(&local, v), "v={v}");
        }
    }

    /// Rank a single value through the production search path.
    fn bucket_one(fq: &FeatQuant, v: f64) -> u16 {
        let mut dst = [0u16; 1];
        fq.bucket_column(&[v], &mut dst, &mut Vec::new());
        dst[0]
    }

    fn quant(cuts: Vec<f64>) -> FeatQuant {
        let pad_len = cuts.len().next_power_of_two();
        let mut pad = cuts.clone();
        pad.resize(pad_len, f64::INFINITY);
        FeatQuant {
            column: 0,
            cuts,
            pad,
        }
    }

    #[test]
    fn buckets_rank_against_cuts_exactly() {
        let fq = quant(vec![-1.5, 0.0, 2.25]);
        // v <= c[i]  ⟺  bucket(v) <= i + 1, for every cut and probe.
        for (i, &c) in fq.cuts.iter().enumerate() {
            let qt = qt_of(&fq.cuts, c);
            assert_eq!(qt, i as u16 + 1);
            for &v in &[-10.0, -1.5, -0.0, 0.0, 1.0, 2.25, 3.0, f64::NAN] {
                assert_eq!(v <= c, bucket_one(&fq, v) <= qt, "v={v} c={c}");
            }
        }
        // NaN thresholds rank 0: no bucket ever satisfies them.
        assert_eq!(qt_of(&fq.cuts, f64::NAN), 0);
        assert!(bucket_one(&fq, f64::NAN) > 0);
    }

    #[test]
    fn signed_zero_cuts_share_a_rank() {
        let mut cuts = vec![0.0, -0.0, 1.0];
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| *a == *b);
        assert_eq!(cuts.len(), 2);
        assert_eq!(qt_of(&cuts, 0.0), qt_of(&cuts, -0.0));
    }

    #[test]
    fn branchless_search_matches_the_reference_rank() {
        // The padded-table lower bound must reproduce the definitional
        // rank `1 + #{cuts < v}` for every value — duplicates, signed
        // zeros, infinities, out-of-range values and NaNs included (NaN
        // ranks past every cut, and the +∞ pads are invisible even to
        // v = +∞).
        let reference = |cuts: &[f64], v: f64| -> u16 {
            if v.is_nan() {
                cuts.len() as u16 + 1
            } else {
                cuts.iter().filter(|&&c| c < v).count() as u16 + 1
            }
        };
        // Past COUNT_CUTS_MAX the padded binary search takes over; the
        // non-power-of-two 100-cut table exercises it (and its +∞
        // padding) on the same probes.
        let big: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37 - 18.0).collect();
        for cuts in [
            vec![],
            vec![0.25],
            vec![-3.0, -0.0, 0.5, 2.0, 9.75],
            vec![-3.0, -0.0, 0.5, 2.0, f64::INFINITY],
            big,
        ] {
            let fq = quant(cuts);
            for v in [
                5.0,
                f64::NAN,
                -0.0,
                0.5,
                -7.0,
                0.0,
                60.0,
                2.0,
                -3.0,
                9.75,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ] {
                assert_eq!(bucket_one(&fq, v), reference(&fq.cuts, v), "v={v}");
            }
        }
    }
}
