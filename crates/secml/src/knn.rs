//! k-nearest-neighbours classification.

use crate::dataset::ColMatrix;
use crate::Classifier;

/// k-NN with Euclidean distance. Features should be standardized first —
/// the trainer's pipeline does this — or large-magnitude columns dominate.
#[derive(Debug, Clone)]
pub struct Knn {
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
}

impl Default for Knn {
    fn default() -> Self {
        Knn {
            k: 5,
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl Knn {
    pub fn new(k: usize) -> Knn {
        Knn {
            k: k.max(1),
            ..Default::default()
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for Knn {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]) {
        assert_eq!(x.n_rows(), y.len(), "row/label count mismatch");
        self.x = x.to_rows();
        self.y = y.to_vec();
    }

    // k-NN is a row-distance model; keep the direct row-major path so a
    // plain `fit` never round-trips through a column transpose.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.x.is_empty() {
            return 0.5;
        }
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(r, &label)| (sq_dist(row, r), label))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let votes: usize = dists[..k].iter().map(|&(_, l)| l).sum();
        votes as f64 / k as f64
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        self.compile()
            .expect("knn always compiles")
            .predict_batch(x)
    }

    /// Compile by flattening the memorized rows into one row-major
    /// buffer. Training rows are uniform-width (both `fit` paths store
    /// rectangular data), which the flattening relies on.
    fn compile(&self) -> Option<crate::CompiledClassifier> {
        let width = self.x.first().map(|r| r.len()).unwrap_or(0);
        debug_assert!(self.x.iter().all(|r| r.len() == width));
        let mut train = Vec::with_capacity(width * self.x.len());
        for row in &self.x {
            train.extend_from_slice(row);
        }
        Some(crate::CompiledClassifier::Knn {
            k: self.k,
            width,
            train,
            labels: self.y.iter().map(|&l| l as u32).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            x.push(vec![i as f64 * 0.1, 0.0]);
            y.push(0);
            x.push(vec![5.0 + i as f64 * 0.1, 5.0]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn classifies_blobs() {
        let (x, y) = two_blobs();
        let mut m = Knn::new(3);
        m.fit(&x, &y);
        assert_eq!(m.predict(&[0.3, 0.1]), 0);
        assert_eq!(m.predict(&[5.3, 5.1]), 1);
    }

    #[test]
    fn proba_is_vote_fraction() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let y = vec![0, 1, 1, 0];
        let mut m = Knn::new(3);
        m.fit(&x, &y);
        // Neighbours of 1.5: {1.0(1), 2.0(1), 0.0(0)} → 2/3.
        assert!((m.predict_proba(&[1.5]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut m = Knn::new(50);
        m.fit(&x, &y);
        assert_eq!(m.predict_proba(&[0.0]), 0.5);
    }

    #[test]
    fn k_one_memorizes() {
        let (x, y) = two_blobs();
        let mut m = Knn::new(1);
        m.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(r, &l)| m.predict(r) == l).count();
        assert_eq!(correct, x.len());
    }

    #[test]
    fn unfitted_predicts_half() {
        let m = Knn::new(3);
        assert_eq!(m.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn zero_k_clamps_to_one() {
        let m = Knn::new(0);
        assert_eq!(m.k, 1);
    }
}
