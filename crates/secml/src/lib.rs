//! secml — a small, self-contained machine-learning library.
//!
//! The paper's Figure 4 pipes code-property feature vectors and CVE-derived
//! labels into "a data mining tool, such as Weka" with cross-validation.
//! Offline we replace Weka with this crate:
//!
//! * [`dataset`] — named-column datasets with class or numeric targets;
//! * [`preprocess`] — standardization, min-max scaling, log transforms;
//! * [`select`] — correlation and information-gain feature ranking;
//! * classifiers: [`logreg`] (L2 logistic regression), [`nb`] (gaussian
//!   naive Bayes), [`tree`] (entropy decision tree), [`forest`] (random
//!   forest), [`knn`] (k-nearest neighbours);
//! * regressors: [`linreg`] (OLS / ridge via normal equations),
//!   regression trees;
//! * [`eval`] — accuracy/precision/recall/F1/AUC, R²/MAE/RMSE, confusion
//!   matrices, and stratified k-fold cross-validation.
//!
//! Models whose weights are inspectable (linear/logistic regression) expose
//! them — §5.3 of the paper turns those weights into "which code property
//! drives the predicted risk" developer hints.

pub mod attribution;
pub mod bytes;
pub mod dataset;
pub mod eval;
pub mod forest;
pub mod infer;
pub mod kernel;
pub mod knn;
pub mod linalg;
pub mod linreg;
pub mod logreg;
pub mod nb;
pub mod preprocess;
pub mod select;
pub mod tree;

pub use attribution::RowAttribution;
pub use dataset::{ColMatrix, ColMatrixBuilder, Dataset};
pub use eval::{brier_score, roc_auc, ClassificationReport, ConfusionMatrix, RegressionReport};
pub use infer::{link_battery, CompiledClassifier, CompiledRegressor, FlatForest, FlatTree};

/// A trained binary classifier: predicts the probability of class 1.
///
/// Implementations consume the columnar [`ColMatrix`] layout (the
/// training hot path); the row-major [`fit`](Classifier::fit) is a
/// provided convenience that transposes once and delegates.
pub trait Classifier {
    /// Fit on the columnar matrix `x` and binary labels `y` (0/1).
    /// Panics if `x.n_rows() != y.len()`.
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]);
    /// Fit on row-major data (converted once, then [`fit_matrix`]).
    ///
    /// [`fit_matrix`]: Classifier::fit_matrix
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        self.fit_matrix(&ColMatrix::from_rows(x), y);
    }
    /// Probability that `row` belongs to class 1.
    fn predict_proba(&self, row: &[f64]) -> f64;
    /// Hard prediction at the 0.5 threshold.
    fn predict(&self, row: &[f64]) -> usize {
        (self.predict_proba(row) >= 0.5) as usize
    }
    /// Class-1 probability for every row of `x`, bit-identical to calling
    /// [`predict_proba`](Classifier::predict_proba) per row. The default
    /// materializes rows into one reused scratch buffer; models override
    /// it with flattened batch kernels (see [`infer`]).
    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        let mut row = vec![0.0; x.n_cols()];
        (0..x.n_rows())
            .map(|i| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = x.value(i, j);
                }
                self.predict_proba(&row)
            })
            .collect()
    }
    /// Compile into the flattened batched-inference form, or `None` for
    /// models without a compiled representation.
    fn compile(&self) -> Option<CompiledClassifier> {
        None
    }
}

/// A trained regressor.
pub trait Regressor {
    /// Fit on the columnar matrix `x` and numeric targets `y`.
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[f64]);
    /// Fit on row-major data (converted once, then [`fit_matrix`]).
    ///
    /// [`fit_matrix`]: Regressor::fit_matrix
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        self.fit_matrix(&ColMatrix::from_rows(x), y);
    }
    /// Predict the target for `row`.
    fn predict(&self, row: &[f64]) -> f64;
    /// Predicted target for every row of `x`, bit-identical to calling
    /// [`predict`](Regressor::predict) per row.
    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        let mut row = vec![0.0; x.n_cols()];
        (0..x.n_rows())
            .map(|i| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = x.value(i, j);
                }
                self.predict(&row)
            })
            .collect()
    }
    /// Compile into the flattened batched-inference form, or `None` for
    /// models without a compiled representation.
    fn compile(&self) -> Option<CompiledRegressor> {
        None
    }
}

impl<T: Classifier + ?Sized> Classifier for Box<T> {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]) {
        (**self).fit_matrix(x, y);
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        (**self).fit(x, y);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        (**self).predict_proba(row)
    }

    fn predict(&self, row: &[f64]) -> usize {
        (**self).predict(row)
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        (**self).predict_batch(x)
    }

    fn compile(&self) -> Option<CompiledClassifier> {
        (**self).compile()
    }
}
