//! Minimal dense linear algebra for the normal-equations solvers.

/// Solve `A·x = b` for square `A` by Gaussian elimination with partial
/// pivoting. Returns `None` when `A` is singular (pivot below `1e-12`).
///
/// `a` is row-major and is consumed as the workspace.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    if n == 0 {
        return Some(Vec::new());
    }
    debug_assert!(a.iter().all(|row| row.len() == n));
    debug_assert_eq!(b.len(), n);

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        // Eliminate below.
        #[allow(clippy::needless_range_loop)]
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// `Aᵀ·A` (+ `ridge`·I on the diagonal) for a row-major design matrix with a
/// leading intercept column assumed already present.
pub fn gram(x: &[Vec<f64>], ridge: f64) -> Vec<Vec<f64>> {
    let cols = x.first().map(|r| r.len()).unwrap_or(0);
    let mut g = vec![vec![0.0; cols]; cols];
    for row in x {
        for i in 0..cols {
            for j in i..cols {
                g[i][j] += row[i] * row[j];
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for i in 0..cols {
        for j in 0..i {
            g[i][j] = g[j][i];
        }
        g[i][i] += ridge;
    }
    g
}

/// [`gram`] for a column-major design matrix (one slice per column).
/// Each cell folds over rows in row order, so the result is bit-identical
/// to the row-major version — but every inner loop walks two contiguous
/// columns instead of striding across rows.
pub fn gram_cols(cols: &[&[f64]], ridge: f64) -> Vec<Vec<f64>> {
    let k = cols.len();
    let mut g = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in i..k {
            let mut sum = 0.0;
            for (&a, &b) in cols[i].iter().zip(cols[j]) {
                sum += a * b;
            }
            g[i][j] = sum;
        }
    }
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        for j in 0..i {
            g[i][j] = g[j][i];
        }
        g[i][i] += ridge;
    }
    g
}

/// [`xty`] for a column-major design matrix.
pub fn xty_cols(cols: &[&[f64]], y: &[f64]) -> Vec<f64> {
    cols.iter()
        .map(|col| {
            let mut sum = 0.0;
            for (&v, &t) in col.iter().zip(y) {
                sum += v * t;
            }
            sum
        })
        .collect()
}

/// `Aᵀ·y`.
pub fn xty(x: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    let cols = x.first().map(|r| r.len()).unwrap_or(0);
    let mut out = vec![0.0; cols];
    for (row, &target) in x.iter().zip(y) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v * target;
        }
    }
    out
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x - y = 1  →  x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot position is 0 — requires a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_is_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn empty_system() {
        assert_eq!(solve(vec![], vec![]), Some(vec![]));
    }

    #[test]
    fn gram_and_xty() {
        let x = vec![vec![1.0, 2.0], vec![1.0, 3.0]];
        let g = gram(&x, 0.0);
        // [[2, 5], [5, 13]]
        assert_eq!(g, vec![vec![2.0, 5.0], vec![5.0, 13.0]]);
        let g_ridge = gram(&x, 0.5);
        assert_eq!(g_ridge[0][0], 2.5);
        assert_eq!(g_ridge[1][1], 13.5);
        assert_eq!(g_ridge[0][1], 5.0);
        let v = xty(&x, &[10.0, 20.0]);
        assert_eq!(v, vec![30.0, 80.0]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn three_by_three() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(a, vec![8.0, -11.0, -3.0]).unwrap();
        // Known solution: x=2, y=3, z=-1.
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }
}
