//! Ordinary least squares and ridge regression via the normal equations.
//!
//! Linear regression is both a predictor (expected vulnerability counts) and
//! the measurement-study tool: Figure 2's trend line
//! `log10(#vuln) = 0.17 + 0.39·log10(kLoC)` and its R² = 24.66 % are an OLS
//! fit, which [`simple_regression`] reproduces directly.

use crate::dataset::ColMatrix;
use crate::linalg;
use crate::Regressor;

/// Linear regression, optionally ridge-regularized.
///
/// After [`fit`](Regressor::fit), `intercept` and `coefficients` hold the
/// learned weights — the paper's §5.3 attribution source.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    /// L2 penalty (0 = OLS). The intercept is never penalized.
    pub ridge: f64,
    pub intercept: f64,
    pub coefficients: Vec<f64>,
}

impl LinearRegression {
    /// An OLS model.
    pub fn new() -> LinearRegression {
        LinearRegression::default()
    }

    /// A ridge model with penalty `lambda`.
    pub fn ridge(lambda: f64) -> LinearRegression {
        LinearRegression {
            ridge: lambda,
            ..Default::default()
        }
    }
}

impl Regressor for LinearRegression {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len(), "row/target count mismatch");
        let cols = x.n_cols();
        // Guard the intercept-only degenerate case where n = 0.
        if x.is_empty() {
            self.intercept = 0.0;
            self.coefficients = vec![0.0; cols];
            return;
        }
        // Column-major design matrix with a leading 1s column.
        let ones = vec![1.0; x.n_rows()];
        let mut design: Vec<&[f64]> = Vec::with_capacity(cols + 1);
        design.push(&ones);
        for j in 0..cols {
            design.push(x.col(j));
        }
        let mut g = linalg::gram_cols(&design, self.ridge);
        // Un-penalize the intercept.
        g[0][0] -= self.ridge;
        let v = linalg::xty_cols(&design, y);
        match linalg::solve(g, v) {
            Some(beta) => {
                self.intercept = beta[0];
                self.coefficients = beta[1..].to_vec();
            }
            None => {
                // Singular (collinear features, tiny n): retry with a small
                // ridge so fit never fails outright.
                let mut fallback = LinearRegression::ridge(self.ridge.max(1e-6) * 10.0);
                fallback.fit_matrix(x, y);
                self.intercept = fallback.intercept;
                self.coefficients = fallback.coefficients;
            }
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.intercept + linalg::dot(&self.coefficients, row)
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        self.compile()
            .expect("linreg always compiles")
            .predict_batch(x)
    }

    fn compile(&self) -> Option<crate::CompiledRegressor> {
        Some(crate::CompiledRegressor::Linear {
            intercept: self.intercept,
            coefficients: self.coefficients.clone(),
        })
    }
}

/// Result of a one-variable OLS fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleRegression {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Pearson correlation.
    pub r: f64,
    pub n: usize,
}

/// Fit `y = a + b·x` and report R² — the Figure 2 / Figure 3 statistic.
pub fn simple_regression(x: &[f64], y: &[f64]) -> SimpleRegression {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return SimpleRegression {
            slope: 0.0,
            intercept: 0.0,
            r_squared: 0.0,
            r: 0.0,
            n,
        };
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
        sxy += (a - mx) * (b - my);
    }
    if sxx < 1e-12 || syy < 1e-12 {
        return SimpleRegression {
            slope: 0.0,
            intercept: my,
            r_squared: 0.0,
            r: 0.0,
            n,
        };
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = sxy / (sxx.sqrt() * syy.sqrt());
    SimpleRegression {
        slope,
        intercept,
        r_squared: r * r,
        r,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 + 3·a − b
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 + 3.0 * r[0] - r[1]).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.intercept - 2.0).abs() < 1e-8);
        assert!((m.coefficients[0] - 3.0).abs() < 1e-8);
        assert!((m.coefficients[1] + 1.0).abs() < 1e-8);
        assert!((m.predict(&[10.0, 2.0]) - 30.0).abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 5.0 * r[0]).collect();
        let mut ols = LinearRegression::new();
        ols.fit(&x, &y);
        let mut ridge = LinearRegression::ridge(1000.0);
        ridge.fit(&x, &y);
        assert!(ridge.coefficients[0].abs() < ols.coefficients[0].abs());
        assert!(ridge.coefficients[0] > 0.0);
    }

    #[test]
    fn collinear_features_fall_back_to_ridge() {
        // Two identical columns — OLS normal equations are singular.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        // The fit must succeed and still predict well.
        let err = (m.predict(&[5.0, 5.0]) - 10.0).abs();
        assert!(err < 0.1, "err = {err}");
    }

    #[test]
    fn simple_regression_on_perfect_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 1.5 * v - 2.0).collect();
        let r = simple_regression(&x, &y);
        assert!((r.slope - 1.5).abs() < 1e-10);
        assert!((r.intercept + 2.0).abs() < 1e-10);
        assert!((r.r_squared - 1.0).abs() < 1e-10);
    }

    #[test]
    fn simple_regression_on_noise_has_low_r2() {
        // A deterministic "noise" pattern with no linear trend.
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = simple_regression(&x, &y);
        assert!(r.r_squared < 0.05, "r² = {}", r.r_squared);
    }

    #[test]
    fn simple_regression_degenerate_inputs() {
        let r = simple_regression(&[1.0], &[2.0]);
        assert_eq!(r.r_squared, 0.0);
        // Constant x.
        let r = simple_regression(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(r.slope, 0.0);
        assert_eq!(r.r_squared, 0.0);
    }

    #[test]
    fn negative_correlation_r_is_negative() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 10.0 - v).collect();
        let r = simple_regression(&x, &y);
        assert!(r.r < -0.999);
        assert!(r.r_squared > 0.999);
    }
}
