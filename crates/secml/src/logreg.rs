//! L2-regularized logistic regression trained by batch gradient descent.

use crate::dataset::ColMatrix;
use crate::linalg::dot;
use crate::Classifier;

/// Binary logistic regression.
///
/// Trained with full-batch gradient descent; features should be standardized
/// first (the Clairvoyant trainer always does). The learned `weights` feed
/// the §5.3 per-feature attribution.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// L2 penalty strength.
    pub l2: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
    pub weights: Vec<f64>,
    pub bias: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            l2: 1e-3,
            learning_rate: 0.1,
            epochs: 500,
            weights: Vec::new(),
            bias: 0.0,
        }
    }
}

impl LogisticRegression {
    pub fn new() -> Self {
        Self::default()
    }
}

pub(crate) fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for LogisticRegression {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]) {
        assert_eq!(x.n_rows(), y.len(), "row/label count mismatch");
        let cols = x.n_cols();
        self.weights = vec![0.0; cols];
        self.bias = 0.0;
        if x.is_empty() {
            return;
        }
        let rows = x.n_rows();
        let n = rows as f64;
        // Column-major passes, but every floating-point sum below folds in
        // the same element order as the original row-major loop did, so
        // the learned weights are bit-identical to it.
        let mut z = vec![0.0; rows];
        let mut err = vec![0.0; rows];
        for _ in 0..self.epochs {
            z.iter_mut().for_each(|v| *v = 0.0);
            for (w, col) in self.weights.iter().zip(0..cols) {
                for (zi, &v) in z.iter_mut().zip(x.col(col)) {
                    *zi += w * v;
                }
            }
            for ((e, &zi), &label) in err.iter_mut().zip(&z).zip(y) {
                *e = sigmoid(self.bias + zi) - label as f64;
            }
            for (w, col) in self.weights.iter_mut().zip(0..cols) {
                let mut g = 0.0;
                for (&e, &v) in err.iter().zip(x.col(col)) {
                    g += e * v;
                }
                *w -= self.learning_rate * (g / n + self.l2 * *w);
            }
            let grad_b: f64 = err.iter().sum();
            self.bias -= self.learning_rate * grad_b / n;
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(self.bias + dot(&self.weights, row))
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        self.compile()
            .expect("logistic always compiles")
            .predict_batch(x)
    }

    fn compile(&self) -> Option<crate::CompiledClassifier> {
        Some(crate::CompiledClassifier::Logistic {
            bias: self.bias,
            weights: self.weights.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic linearly separable problem: class = x0 > 0.
    fn separable() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = (i as f64 - 30.0) / 10.0 + if i % 2 == 0 { 0.05 } else { -0.05 };
            if v.abs() < 0.2 {
                continue; // margin
            }
            x.push(vec![v, (i % 7) as f64 / 7.0]);
            y.push((v > 0.0) as usize);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable();
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| m.predict(row) == label)
            .count();
        assert_eq!(correct, x.len(), "not all training points classified");
        assert!(m.weights[0] > 0.5, "informative weight should dominate");
        assert!(m.weights[0].abs() > m.weights[1].abs());
    }

    #[test]
    fn probabilities_are_calibrated_ordering() {
        let (x, y) = separable();
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        assert!(m.predict_proba(&[3.0, 0.0]) > 0.9);
        assert!(m.predict_proba(&[-3.0, 0.0]) < 0.1);
        assert!(m.predict_proba(&[3.0, 0.0]) > m.predict_proba(&[0.1, 0.0]));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_one_class_predicts_that_class() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut m = LogisticRegression::new();
        m.fit(&x, &y);
        assert_eq!(m.predict(&[2.0]), 1);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = separable();
        let mut weak = LogisticRegression {
            l2: 0.0001,
            ..Default::default()
        };
        weak.fit(&x, &y);
        let mut strong = LogisticRegression {
            l2: 1.0,
            ..Default::default()
        };
        strong.fit(&x, &y);
        assert!(strong.weights[0].abs() < weak.weights[0].abs());
    }

    #[test]
    fn empty_fit_is_harmless() {
        let mut m = LogisticRegression::new();
        m.fit(&[], &[]);
        assert_eq!(m.predict_proba(&[]), 0.5);
    }
}
