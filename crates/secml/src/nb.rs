//! Gaussian naive Bayes.

use crate::dataset::ColMatrix;
use crate::Classifier;

/// Gaussian naive Bayes for binary classes: per-class feature means and
/// variances plus class priors, combined under the independence assumption.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// `stats[class][feature] = (mean, variance)`.
    stats: [Vec<(f64, f64)>; 2],
    /// Log class priors.
    log_priors: [f64; 2],
    fitted: bool,
}

impl GaussianNb {
    pub fn new() -> Self {
        Self::default()
    }

    fn class_stats(x: &ColMatrix, rows: &[usize]) -> Vec<(f64, f64)> {
        let n = rows.len().max(1) as f64;
        let mut out = vec![(0.0, 0.0); x.n_cols()];
        for (j, o) in out.iter_mut().enumerate() {
            let col = x.col(j);
            for &r in rows {
                o.0 += col[r];
            }
            o.0 /= n;
            for &r in rows {
                o.1 += (col[r] - o.0) * (col[r] - o.0);
            }
            // Variance floor keeps zero-variance features finite.
            o.1 = (o.1 / n).max(1e-9);
        }
        out
    }

    fn log_likelihood(&self, class: usize, row: &[f64]) -> f64 {
        let mut ll = self.log_priors[class];
        for (&v, &(mean, var)) in row.iter().zip(&self.stats[class]) {
            ll += -0.5
                * ((v - mean) * (v - mean) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]) {
        assert_eq!(x.n_rows(), y.len(), "row/label count mismatch");
        let class0: Vec<usize> = (0..x.n_rows()).filter(|&i| y[i] == 0).collect();
        let class1: Vec<usize> = (0..x.n_rows()).filter(|&i| y[i] == 1).collect();
        let n = x.n_rows().max(1) as f64;
        // Laplace-smoothed priors so an absent class never yields -inf.
        self.log_priors = [
            ((class0.len() as f64 + 1.0) / (n + 2.0)).ln(),
            ((class1.len() as f64 + 1.0) / (n + 2.0)).ln(),
        ];
        self.stats = [Self::class_stats(x, &class0), Self::class_stats(x, &class1)];
        self.fitted = true;
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.5;
        }
        let l0 = self.log_likelihood(0, row);
        let l1 = self.log_likelihood(1, row);
        // Softmax over two log-likelihoods, numerically stable.
        let m = l0.max(l1);
        let e0 = (l0 - m).exp();
        let e1 = (l1 - m).exp();
        e1 / (e0 + e1)
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        self.compile().expect("nb always compiles").predict_batch(x)
    }

    fn compile(&self) -> Option<crate::CompiledClassifier> {
        Some(crate::CompiledClassifier::GaussianNb {
            log_priors: self.log_priors,
            stats: self.stats.clone(),
            fitted: self.fitted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two well-separated Gaussian-ish clusters, deterministic jitter.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = (i % 5) as f64 * 0.1;
            x.push(vec![0.0 + j, 1.0 - j]);
            y.push(0);
            x.push(vec![5.0 + j, 6.0 - j]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn separates_clusters() {
        let (x, y) = clusters();
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        assert_eq!(m.predict(&[0.2, 0.9]), 0);
        assert_eq!(m.predict(&[5.2, 5.9]), 1);
        assert!(m.predict_proba(&[5.0, 6.0]) > 0.99);
        assert!(m.predict_proba(&[0.0, 1.0]) < 0.01);
    }

    #[test]
    fn training_accuracy_is_high() {
        let (x, y) = clusters();
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(r, &l)| m.predict(r) == l).count();
        assert_eq!(correct, x.len());
    }

    #[test]
    fn zero_variance_feature_does_not_nan() {
        let x = vec![
            vec![1.0, 3.0],
            vec![1.0, 4.0],
            vec![1.0, 10.0],
            vec![1.0, 11.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        let p = m.predict_proba(&[1.0, 10.5]);
        assert!(p.is_finite());
        assert!(p > 0.5);
    }

    #[test]
    fn unfitted_predicts_half() {
        let m = GaussianNb::new();
        assert_eq!(m.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn single_class_training_is_finite() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![0, 0];
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        let p = m.predict_proba(&[1.5]);
        assert!(p.is_finite());
        assert!(p < 0.5);
    }

    #[test]
    fn prior_imbalance_shifts_boundary() {
        // Same likelihoods, heavily imbalanced priors.
        let mut x = vec![];
        let mut y = vec![];
        for i in 0..50 {
            x.push(vec![(i % 10) as f64 / 10.0]);
            y.push(0);
        }
        x.push(vec![0.45]);
        y.push(1);
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        // Ambiguous point leans to the overwhelming prior.
        assert_eq!(m.predict(&[0.5]), 0);
    }
}
