//! Feature preprocessing.
//!
//! §5.2 lists "determining necessary data transformation for numeric
//! features" among the main challenges of the training phase. The corpus
//! features span six orders of magnitude (LoC vs ratios), so the linear
//! models need standardization, and heavy-tailed counts benefit from the
//! `log1p` transform the paper's own Figure 2 applies (log-log bucketing).

/// Per-column z-score standardizer (`(x − mean) / std`).
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    pub means: Vec<f64>,
    pub stds: Vec<f64>,
}

impl Standardizer {
    /// Fit on the rows (columns with zero variance get std 1 so they map
    /// to 0 rather than NaN).
    pub fn fit(rows: &[Vec<f64>]) -> Standardizer {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let n = rows.len().max(1) as f64;
        let mut means = vec![0.0; cols];
        for row in rows {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; cols];
        for row in rows {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Standardizer { means, stds }
    }

    /// Transform rows in place.
    pub fn transform(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.transform_row(row);
        }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }
}

/// Per-column min-max scaler onto `[0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    pub mins: Vec<f64>,
    pub maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit on the rows.
    pub fn fit(rows: &[Vec<f64>]) -> MinMaxScaler {
        let cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut mins = vec![f64::INFINITY; cols];
        let mut maxs = vec![f64::NEG_INFINITY; cols];
        for row in rows {
            for ((lo, hi), v) in mins.iter_mut().zip(&mut maxs).zip(row) {
                *lo = lo.min(*v);
                *hi = hi.max(*v);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Transform one row in place (constant columns map to 0).
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, lo), hi) in row.iter_mut().zip(&self.mins).zip(&self.maxs) {
            let range = hi - lo;
            *v = if range < 1e-12 {
                0.0
            } else {
                (*v - lo) / range
            };
        }
    }

    /// Transform rows in place.
    pub fn transform(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.transform_row(row);
        }
    }
}

/// Apply `ln(1 + x)` to every value (negative values pass through the signed
/// variant `sign(x)·ln(1+|x|)` so the transform stays monotone).
pub fn log1p_rows(rows: &mut [Vec<f64>]) {
    for row in rows {
        for v in row.iter_mut() {
            *v = v.signum() * v.abs().ln_1p();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let mut rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let s = Standardizer::fit(&rows);
        s.transform(&mut rows);
        for col in 0..2 {
            let vals: Vec<f64> = rows.iter().map(|r| r[col]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn standardizer_constant_column_maps_to_zero() {
        let mut rows = vec![vec![7.0], vec![7.0], vec![7.0]];
        let s = Standardizer::fit(&rows);
        s.transform(&mut rows);
        assert!(rows.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn standardizer_applies_train_stats_to_test() {
        let train = vec![vec![0.0], vec![10.0]];
        let s = Standardizer::fit(&train);
        let mut test = vec![vec![5.0]];
        s.transform(&mut test);
        assert!(test[0][0].abs() < 1e-10); // 5 is the train mean
    }

    #[test]
    fn minmax_scales_to_unit_interval() {
        let mut rows = vec![vec![2.0], vec![4.0], vec![6.0]];
        let s = MinMaxScaler::fit(&rows);
        s.transform(&mut rows);
        assert_eq!(rows, vec![vec![0.0], vec![0.5], vec![1.0]]);
    }

    #[test]
    fn minmax_constant_column() {
        let mut rows = vec![vec![3.0], vec![3.0]];
        let s = MinMaxScaler::fit(&rows);
        s.transform(&mut rows);
        assert!(rows.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn log1p_is_monotone_and_signed() {
        let mut rows = vec![vec![0.0, 10.0, 100.0, -10.0]];
        log1p_rows(&mut rows);
        assert_eq!(rows[0][0], 0.0);
        assert!(rows[0][1] < rows[0][2]);
        assert!((rows[0][3] + rows[0][1]).abs() < 1e-12); // symmetric
    }
}
