//! Feature selection.
//!
//! §5.2: the main challenge is "to refine the trained model, including
//! filtering features that are irrelevant to the prediction". Two standard
//! filters: Pearson-correlation ranking against the target, and information
//! gain of a median split against a binary label.

/// Target-side moments for [`pearson_column`]: `(mean, Σ(y-mean)²)`.
/// Shared across every column so the out-of-core path computes them once.
pub fn pearson_target_stats(target: &[f64]) -> (f64, f64) {
    let n = target.len() as f64;
    let my = target.iter().sum::<f64>() / n;
    let syy: f64 = target.iter().map(|v| (v - my) * (v - my)).sum();
    (my, syy)
}

/// Pearson correlation of one column (in row order) with the target,
/// given the target moments from [`pearson_target_stats`]. The
/// accumulation order matches the row-major scorer exactly, so a
/// column streamed from disk scores bit-identically to its in-RAM twin.
pub fn pearson_column(col: &[f64], target: &[f64], my: f64, syy: f64) -> f64 {
    let n = col.len() as f64;
    let mx = col.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in col.iter().zip(target) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    if sxx < 1e-12 || syy < 1e-12 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Pearson correlation of each column with the numeric target.
pub fn pearson_scores(rows: &[Vec<f64>], target: &[f64]) -> Vec<f64> {
    let cols = rows.first().map(|r| r.len()).unwrap_or(0);
    if rows.is_empty() {
        return vec![0.0; cols];
    }
    let (my, syy) = pearson_target_stats(target);
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
            pearson_column(&col, target, my, syy)
        })
        .collect()
}

/// Information gain of the *best* binary split of each column against a
/// binary label — the Weka `InfoGainAttributeEval` role. For every column
/// the candidate thresholds are the midpoints between consecutive distinct
/// sorted values (after a label change), and the maximum gain is reported.
pub fn info_gain_scores(rows: &[Vec<f64>], labels: &[usize]) -> Vec<f64> {
    let cols = rows.first().map(|r| r.len()).unwrap_or(0);
    if rows.is_empty() {
        return vec![0.0; cols];
    }
    let parent = label_entropy(labels);
    (0..cols)
        .map(|c| {
            let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
            info_gain_column(&col, labels, parent)
        })
        .collect()
}

/// Entropy of a binary label vector — the parent entropy passed to
/// [`info_gain_column`].
pub fn label_entropy(labels: &[usize]) -> f64 {
    entropy(labels.iter().copied())
}

/// Best-split information gain of one column (in row order) against the
/// labels, given the precomputed parent entropy. Same sweep as the
/// row-major scorer, so streamed columns score bit-identically.
pub fn info_gain_column(col: &[f64], labels: &[usize], parent: f64) -> f64 {
    let n = col.len() as f64;
    // Sort (value, label) pairs by value; sweep split points,
    // maintaining left-side counts incrementally.
    let mut pairs: Vec<(f64, usize)> = col.iter().zip(labels).map(|(&v, &l)| (v, l)).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total_ones = labels.iter().filter(|&&l| l == 1).count();
    let mut left_n = 0usize;
    let mut left_ones = 0usize;
    let mut best = 0.0f64;
    for w in 0..pairs.len().saturating_sub(1) {
        left_n += 1;
        left_ones += (pairs[w].1 == 1) as usize;
        if pairs[w].0 == pairs[w + 1].0 {
            continue; // not a valid split point
        }
        let right_n = pairs.len() - left_n;
        let right_ones = total_ones - left_ones;
        let h = |ones: usize, count: usize| {
            if count == 0 {
                return 0.0;
            }
            let p1 = ones as f64 / count as f64;
            let p0 = 1.0 - p1;
            let mut e = 0.0;
            for p in [p0, p1] {
                if p > 0.0 {
                    e -= p * p.log2();
                }
            }
            e
        };
        let weighted = (left_n as f64 / n) * h(left_ones, left_n)
            + (right_n as f64 / n) * h(right_ones, right_n);
        best = best.max(parent - weighted);
    }
    best
}

fn entropy(labels: impl Iterator<Item = usize>) -> f64 {
    let mut n = 0usize;
    let mut ones = 0usize;
    for l in labels {
        n += 1;
        ones += (l == 1) as usize;
    }
    if n == 0 {
        return 0.0;
    }
    let p1 = ones as f64 / n as f64;
    let p0 = 1.0 - p1;
    let mut h = 0.0;
    for p in [p0, p1] {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// Indices of the top-`k` columns by absolute score, descending.
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].abs().total_cmp(&scores[a].abs()).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_identifies_informative_column() {
        // Column 0 = target; column 1 = alternating noise.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, if i % 2 == 0 { 1.0 } else { -1.0 }])
            .collect();
        let target: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let s = pearson_scores(&rows, &target);
        assert!(s[0] > 0.999);
        assert!(s[1].abs() < 0.2);
    }

    #[test]
    fn pearson_negative_correlation() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let target: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        let s = pearson_scores(&rows, &target);
        assert!(s[0] < -0.999);
    }

    #[test]
    fn pearson_constant_column_is_zero() {
        let rows: Vec<Vec<f64>> = (0..10).map(|_| vec![5.0]).collect();
        let target: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson_scores(&rows, &target)[0], 0.0);
    }

    #[test]
    fn info_gain_perfect_split_is_one_bit() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..20).map(|i| (i >= 10) as usize).collect();
        let s = info_gain_scores(&rows, &labels);
        assert!((s[0] - 1.0).abs() < 1e-9, "gain = {}", s[0]);
    }

    #[test]
    fn info_gain_uninformative_is_near_zero() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 2) as f64]).collect();
        let labels: Vec<usize> = (0..20).map(|i| ((i / 2) % 2 == 0) as usize).collect();
        let s = info_gain_scores(&rows, &labels);
        assert!(s[0] < 0.05, "gain = {}", s[0]);
    }

    #[test]
    fn top_k_orders_by_abs_and_truncates() {
        let idx = top_k(&[0.1, -0.9, 0.5, 0.2], 2);
        assert_eq!(idx, vec![1, 2]);
        // k larger than length returns all.
        assert_eq!(top_k(&[0.3, 0.1], 5).len(), 2);
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy([0, 0, 0, 0].into_iter()), 0.0);
        assert!((entropy([0, 1, 0, 1].into_iter()) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(std::iter::empty()), 0.0);
    }
}
