//! Decision trees: entropy-based classification and variance-reduction
//! regression (the C4.5-style learner in the zoo).
//!
//! Split finding is incremental: each feature column is sorted **once per
//! matrix** (the [`ColMatrix`] sort permutations, which cross-validation
//! folds and forest bootstraps derive rather than re-sort), and every node
//! sweeps thresholds left-to-right in that order while maintaining running
//! statistics — class counts for entropy, sum / sum-of-squares for
//! variance. One pass per feature per node replaces the former
//! re-partition-and-recompute search, turning an O(n²) scan per feature
//! into O(n).

use crate::dataset::ColMatrix;
use crate::{Classifier, Regressor};

/// A binary decision tree. Crate-visible so the [`infer`](crate::infer)
/// module can flatten grown trees into node tables.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        /// Class-1 probability (classification) or mean target (regression).
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// Hyper-parameters shared by both tree flavors.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Consider only this many features per split (None = all) — the
    /// random-forest hook; the indices are supplied by the caller.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            min_gain: 1e-7,
        }
    }
}

/// Criterion: entropy for classification, variance for regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    Entropy,
    Variance,
}

/// Binary entropy from a positive count and a total.
fn entropy_of(ones: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let p1 = ones / n;
    let p0 = 1.0 - p1;
    let mut h = 0.0;
    for p in [p0, p1] {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// Variance from running sum / sum-of-squares and a count.
fn variance_of(sum: f64, sumsq: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let mean = sum / n;
    // Guard the tiny negative values catastrophic cancellation can leave.
    (sumsq / n - mean * mean).max(0.0)
}

/// Running node statistics for either criterion. For entropy, `sum` is the
/// positive-label count (labels are 0/1 floats); `sumsq` is unused.
#[derive(Clone, Copy, Default)]
struct Stats {
    n: f64,
    sum: f64,
    sumsq: f64,
}

impl Stats {
    fn add(&mut self, y: f64) {
        self.n += 1.0;
        self.sum += y;
        self.sumsq += y * y;
    }

    fn impurity(&self, criterion: Criterion) -> f64 {
        match criterion {
            Criterion::Entropy => entropy_of(self.sum, self.n),
            Criterion::Variance => variance_of(self.sum, self.sumsq, self.n),
        }
    }
}

/// The best split of the masked rows over `feature_pool`:
/// `(feature, threshold, gain)`, or `None` when no feature admits a split.
/// `mask[r]` is true exactly for the rows in the node; `parent` holds
/// their aggregate statistics.
fn best_split(
    x: &ColMatrix,
    y: &[f64],
    mask: &[bool],
    parent: Stats,
    criterion: Criterion,
    feature_pool: &[usize],
) -> Option<(usize, f64, f64)> {
    let parent_impurity = parent.impurity(criterion);
    let n = parent.n;
    let mut best: Option<(usize, f64, f64)> = None;
    for &feature in feature_pool {
        let col = x.col(feature);
        let mut left = Stats::default();
        let mut prev: Option<f64> = None;
        // Sweep the column's global sort order restricted to this node:
        // every boundary between distinct values is a candidate threshold,
        // and the running `left` stats make each gain O(1).
        for &r in x.sorted(feature) {
            let r = r as usize;
            if !mask[r] {
                continue;
            }
            let v = col[r];
            if let Some(pv) = prev {
                if v > pv && left.n > 0.0 && left.n < n {
                    let threshold = (pv + v) / 2.0;
                    let right = Stats {
                        n: n - left.n,
                        sum: parent.sum - left.sum,
                        sumsq: parent.sumsq - left.sumsq,
                    };
                    let weighted = (left.n / n) * left.impurity(criterion)
                        + (right.n / n) * right.impurity(criterion);
                    let gain = parent_impurity - weighted;
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((feature, threshold, gain));
                    }
                }
            }
            left.add(y[r]);
            prev = Some(v);
        }
    }
    best
}

/// The entropy-criterion best split — the oracle surface for property
/// tests and benchmarks. `labels` are 0/1; considers all of `x`'s rows.
pub fn best_split_entropy(
    x: &ColMatrix,
    labels: &[usize],
    feature_pool: &[usize],
) -> Option<(usize, f64, f64)> {
    let y: Vec<f64> = labels.iter().map(|&v| v as f64).collect();
    best_split_full(x, &y, Criterion::Entropy, feature_pool)
}

/// The variance-criterion best split over all of `x`'s rows.
pub fn best_split_variance(
    x: &ColMatrix,
    y: &[f64],
    feature_pool: &[usize],
) -> Option<(usize, f64, f64)> {
    best_split_full(x, y, Criterion::Variance, feature_pool)
}

fn best_split_full(
    x: &ColMatrix,
    y: &[f64],
    criterion: Criterion,
    feature_pool: &[usize],
) -> Option<(usize, f64, f64)> {
    let node_rows: Vec<u32> = (0..x.n_rows() as u32).collect();
    let mask = vec![true; x.n_rows()];
    let mut parent = Stats::default();
    for &r in &node_rows {
        parent.add(y[r as usize]);
    }
    best_split(x, y, &mask, parent, criterion, feature_pool)
}

/// Everything that stays fixed while one tree grows: the dataset, the
/// hyper-parameters, and the candidate feature pool (random forests pass a
/// subsample; plain trees pass all features).
struct GrowContext<'a> {
    x: &'a ColMatrix,
    y: &'a [f64],
    config: &'a TreeConfig,
    criterion: Criterion,
    feature_pool: &'a [usize],
}

/// Grow a tree on the rows at `node_rows`. `mask` is a shared scratch
/// membership array (all false between nodes).
fn grow(ctx: &GrowContext, node_rows: &[u32], mask: &mut [bool], depth: usize) -> Node {
    let GrowContext {
        x,
        y,
        config,
        criterion,
        feature_pool,
    } = *ctx;
    let mut parent = Stats::default();
    for &r in node_rows {
        parent.add(y[r as usize]);
    }
    let mean = parent.sum / parent.n.max(1.0);
    let parent_impurity = parent.impurity(criterion);

    if depth >= config.max_depth
        || node_rows.len() < config.min_samples_split
        || parent_impurity <= 0.0
    {
        return Node::Leaf { value: mean };
    }

    for &r in node_rows {
        mask[r as usize] = true;
    }
    let best = best_split(x, y, mask, parent, criterion, feature_pool);
    for &r in node_rows {
        mask[r as usize] = false;
    }

    match best {
        Some((feature, threshold, gain)) if gain > config.min_gain => {
            let col = x.col(feature);
            let (mut li, mut ri) = (Vec::new(), Vec::new());
            for &r in node_rows {
                if col[r as usize] <= threshold {
                    li.push(r);
                } else {
                    ri.push(r);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(ctx, &li, mask, depth + 1)),
                right: Box::new(grow(ctx, &ri, mask, depth + 1)),
            }
        }
        _ => Node::Leaf { value: mean },
    }
}

fn grow_root(
    x: &ColMatrix,
    y: &[f64],
    config: &TreeConfig,
    criterion: Criterion,
    feature_pool: &[usize],
    empty_value: f64,
) -> Node {
    if x.is_empty() {
        return Node::Leaf { value: empty_value };
    }
    let node_rows: Vec<u32> = (0..x.n_rows() as u32).collect();
    let mut mask = vec![false; x.n_rows()];
    let ctx = GrowContext {
        x,
        y,
        config,
        criterion,
        feature_pool,
    };
    grow(&ctx, &node_rows, &mut mask, 0)
}

/// Entropy-criterion decision-tree classifier.
#[derive(Debug, Clone, Default)]
pub struct DecisionTree {
    pub config: TreeConfig,
    root: Option<Node>,
}

impl DecisionTree {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: TreeConfig) -> Self {
        DecisionTree { config, root: None }
    }

    /// Depth of the grown tree (0 = single leaf / unfitted).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(|r| r.depth()).unwrap_or(0)
    }

    /// Fit restricted to a feature subset (random-forest hook).
    pub fn fit_with_pool(&mut self, x: &ColMatrix, y: &[usize], pool: &[usize]) {
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        self.root = Some(grow_root(
            x,
            &yf,
            &self.config,
            Criterion::Entropy,
            pool,
            0.5,
        ));
    }

    pub(crate) fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }
}

impl Classifier for DecisionTree {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]) {
        assert_eq!(x.n_rows(), y.len(), "row/label count mismatch");
        let pool: Vec<usize> = (0..x.n_cols()).collect();
        self.fit_with_pool(x, y, &pool);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        self.root.as_ref().map(|r| r.predict(row)).unwrap_or(0.5)
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        crate::infer::flatten_tree(self.root(), 0.5).predict_batch(x)
    }

    fn compile(&self) -> Option<crate::CompiledClassifier> {
        Some(crate::CompiledClassifier::Tree(crate::infer::flatten_tree(
            self.root(),
            0.5,
        )))
    }
}

/// Variance-reduction regression tree.
#[derive(Debug, Clone, Default)]
pub struct RegressionTree {
    pub config: TreeConfig,
    root: Option<Node>,
}

impl RegressionTree {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: TreeConfig) -> Self {
        RegressionTree { config, root: None }
    }

    /// Fit restricted to a feature subset (random-forest hook).
    pub fn fit_with_pool(&mut self, x: &ColMatrix, y: &[f64], pool: &[usize]) {
        self.root = Some(grow_root(
            x,
            y,
            &self.config,
            Criterion::Variance,
            pool,
            0.0,
        ));
    }

    pub(crate) fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }
}

impl Regressor for RegressionTree {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len(), "row/target count mismatch");
        let pool: Vec<usize> = (0..x.n_cols()).collect();
        self.fit_with_pool(x, y, &pool);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.root.as_ref().map(|r| r.predict(row)).unwrap_or(0.0)
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        crate::infer::flatten_tree(self.root(), 0.0).predict_batch(x)
    }

    fn compile(&self) -> Option<crate::CompiledRegressor> {
        Some(crate::CompiledRegressor::Tree(crate::infer::flatten_tree(
            self.root(),
            0.0,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_threshold_rule() {
        // class = x > 3
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 2.0]).collect();
        let y: Vec<usize> = x.iter().map(|r| (r[0] > 3.0) as usize).collect();
        let mut t = DecisionTree::new();
        t.fit(&x, &y);
        assert_eq!(t.predict(&[1.0]), 0);
        assert_eq!(t.predict(&[8.0]), 1);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn learns_conjunction_with_depth_two() {
        // class = (x0 > 0.5) AND (x1 > 0.5): needs two nested splits.
        // (XOR, by contrast, defeats greedy entropy trees: every first
        // split has zero gain.)
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.9, 0.9],
        ];
        let y = vec![0, 0, 0, 1, 0, 0, 0, 1];
        let mut t = DecisionTree::with_config(TreeConfig {
            min_samples_split: 2,
            ..Default::default()
        });
        t.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(r, &l)| t.predict(r) == l).count();
        assert_eq!(correct, 8);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn max_depth_limits_growth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..64).map(|i| (i % 2) as usize).collect();
        let mut t = DecisionTree::with_config(TreeConfig {
            max_depth: 3,
            min_samples_split: 2,
            ..Default::default()
        });
        t.fit(&x, &y);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new();
        t.fit(&x, &y);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[99.0]), 1);
    }

    #[test]
    fn unfitted_tree_predicts_half() {
        let t = DecisionTree::new();
        assert_eq!(t.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 15.0 { 2.0 } else { 10.0 })
            .collect();
        let mut t = RegressionTree::new();
        t.fit(&x, &y);
        assert!((t.predict(&[5.0]) - 2.0).abs() < 1e-9);
        assert!((t.predict(&[25.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_piecewise_approximation() {
        // y = x²: deeper trees approximate better.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let mut shallow = RegressionTree::with_config(TreeConfig {
            max_depth: 1,
            min_samples_split: 2,
            ..Default::default()
        });
        shallow.fit(&x, &y);
        let mut deep = RegressionTree::with_config(TreeConfig {
            max_depth: 6,
            min_samples_split: 2,
            ..Default::default()
        });
        deep.fit(&x, &y);
        let mse = |t: &RegressionTree| {
            x.iter()
                .zip(&y)
                .map(|(r, &v)| (t.predict(r) - v) * (t.predict(r) - v))
                .sum::<f64>()
                / x.len() as f64
        };
        assert!(mse(&deep) < mse(&shallow) / 4.0);
    }

    #[test]
    fn empty_fit_is_harmless() {
        let mut t = DecisionTree::new();
        t.fit(&[], &[]);
        assert_eq!(t.predict_proba(&[1.0]), 0.5);
        let mut rt = RegressionTree::new();
        Regressor::fit(&mut rt, &[], &[]);
        assert_eq!(rt.predict(&[1.0]), 0.0);
    }

    #[test]
    fn nan_feature_does_not_panic() {
        // A degraded pipeline vector can feed NaN into training; the
        // total_cmp sort order puts NaNs last and the tree still fits.
        let x = vec![vec![1.0], vec![2.0], vec![f64::NAN], vec![4.0], vec![5.0]];
        let y = vec![0, 0, 0, 1, 1];
        let mut t = DecisionTree::with_config(TreeConfig {
            min_samples_split: 2,
            ..Default::default()
        });
        t.fit(&x, &y);
        assert_eq!(t.predict(&[5.0]), 1);
    }

    #[test]
    fn split_oracle_on_clean_threshold() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 7.0]).collect();
        let labels: Vec<usize> = (0..10).map(|i| (i >= 5) as usize).collect();
        let m = ColMatrix::from_rows(&rows);
        let (feature, threshold, gain) = best_split_entropy(&m, &labels, &[0, 1]).unwrap();
        assert_eq!(feature, 0);
        assert!((threshold - 4.5).abs() < 1e-12);
        assert!((gain - 1.0).abs() < 1e-12, "gain = {gain}");
    }
}
