//! Decision trees: entropy-based classification and variance-reduction
//! regression (the C4.5-style learner in the zoo).

use crate::{Classifier, Regressor};

/// A binary decision tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Class-1 probability (classification) or mean target (regression).
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// Hyper-parameters shared by both tree flavors.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Consider only this many features per split (None = all) — the
    /// random-forest hook; the indices are supplied by the caller.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            min_gain: 1e-7,
        }
    }
}

/// Criterion: entropy for classification, variance for regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    Entropy,
    Variance,
}

fn impurity(values: &[f64], criterion: Criterion) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    match criterion {
        Criterion::Entropy => {
            let n = values.len() as f64;
            let p1 = values.iter().sum::<f64>() / n;
            let p0 = 1.0 - p1;
            let mut h = 0.0;
            for p in [p0, p1] {
                if p > 0.0 {
                    h -= p * p.log2();
                }
            }
            h
        }
        Criterion::Variance => {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
        }
    }
}

/// Grow a tree on the rows at `indices`. `feature_pool` limits candidate
/// split features (random forests pass a subsample; plain trees pass all).
fn grow(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    depth: usize,
    config: &TreeConfig,
    criterion: Criterion,
    feature_pool: &[usize],
) -> Node {
    let values: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let parent_impurity = impurity(&values, criterion);

    if depth >= config.max_depth
        || indices.len() < config.min_samples_split
        || parent_impurity <= 0.0
    {
        return Node::Leaf { value: mean };
    }

    // Best split over the feature pool: candidate thresholds are midpoints
    // between consecutive distinct sorted values.
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for &feature in feature_pool {
        let mut vals: Vec<f64> = indices.iter().map(|&i| x[i][feature]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite feature"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in indices {
                if x[i][feature] <= threshold {
                    left.push(y[i]);
                } else {
                    right.push(y[i]);
                }
            }
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let n = indices.len() as f64;
            let weighted = (left.len() as f64 / n) * impurity(&left, criterion)
                + (right.len() as f64 / n) * impurity(&right, criterion);
            let gain = parent_impurity - weighted;
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((feature, threshold, gain));
            }
        }
    }

    match best {
        Some((feature, threshold, gain)) if gain > config.min_gain => {
            let (mut li, mut ri) = (Vec::new(), Vec::new());
            for &i in indices {
                if x[i][feature] <= threshold {
                    li.push(i);
                } else {
                    ri.push(i);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(x, y, &li, depth + 1, config, criterion, feature_pool)),
                right: Box::new(grow(x, y, &ri, depth + 1, config, criterion, feature_pool)),
            }
        }
        _ => Node::Leaf { value: mean },
    }
}

/// Entropy-criterion decision-tree classifier.
#[derive(Debug, Clone, Default)]
pub struct DecisionTree {
    pub config: TreeConfig,
    root: Option<Node>,
}

impl DecisionTree {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: TreeConfig) -> Self {
        DecisionTree { config, root: None }
    }

    /// Depth of the grown tree (0 = single leaf / unfitted).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(|r| r.depth()).unwrap_or(0)
    }

    /// Fit restricted to a feature subset (random-forest hook).
    pub fn fit_with_pool(&mut self, x: &[Vec<f64>], y: &[usize], pool: &[usize]) {
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        let indices: Vec<usize> = (0..x.len()).collect();
        if indices.is_empty() {
            self.root = Some(Node::Leaf { value: 0.5 });
            return;
        }
        self.root = Some(grow(
            x,
            &yf,
            &indices,
            0,
            &self.config,
            Criterion::Entropy,
            pool,
        ));
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        let cols = x.first().map(|r| r.len()).unwrap_or(0);
        let pool: Vec<usize> = (0..cols).collect();
        self.fit_with_pool(x, y, &pool);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        self.root.as_ref().map(|r| r.predict(row)).unwrap_or(0.5)
    }
}

/// Variance-reduction regression tree.
#[derive(Debug, Clone, Default)]
pub struct RegressionTree {
    pub config: TreeConfig,
    root: Option<Node>,
}

impl RegressionTree {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: TreeConfig) -> Self {
        RegressionTree { config, root: None }
    }

    /// Fit restricted to a feature subset (random-forest hook).
    pub fn fit_with_pool(&mut self, x: &[Vec<f64>], y: &[f64], pool: &[usize]) {
        let indices: Vec<usize> = (0..x.len()).collect();
        if indices.is_empty() {
            self.root = Some(Node::Leaf { value: 0.0 });
            return;
        }
        self.root = Some(grow(
            x,
            y,
            &indices,
            0,
            &self.config,
            Criterion::Variance,
            pool,
        ));
    }
}

impl Regressor for RegressionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "row/target count mismatch");
        let cols = x.first().map(|r| r.len()).unwrap_or(0);
        let pool: Vec<usize> = (0..cols).collect();
        self.fit_with_pool(x, y, &pool);
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.root.as_ref().map(|r| r.predict(row)).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_threshold_rule() {
        // class = x > 3
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 2.0]).collect();
        let y: Vec<usize> = x.iter().map(|r| (r[0] > 3.0) as usize).collect();
        let mut t = DecisionTree::new();
        t.fit(&x, &y);
        assert_eq!(t.predict(&[1.0]), 0);
        assert_eq!(t.predict(&[8.0]), 1);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn learns_conjunction_with_depth_two() {
        // class = (x0 > 0.5) AND (x1 > 0.5): needs two nested splits.
        // (XOR, by contrast, defeats greedy entropy trees: every first
        // split has zero gain.)
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.9, 0.9],
        ];
        let y = vec![0, 0, 0, 1, 0, 0, 0, 1];
        let mut t = DecisionTree::with_config(TreeConfig {
            min_samples_split: 2,
            ..Default::default()
        });
        t.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(r, &l)| t.predict(r) == l).count();
        assert_eq!(correct, 8);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn max_depth_limits_growth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..64).map(|i| (i % 2) as usize).collect();
        let mut t = DecisionTree::with_config(TreeConfig {
            max_depth: 3,
            min_samples_split: 2,
            ..Default::default()
        });
        t.fit(&x, &y);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new();
        t.fit(&x, &y);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[99.0]), 1);
    }

    #[test]
    fn unfitted_tree_predicts_half() {
        let t = DecisionTree::new();
        assert_eq!(t.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 15.0 { 2.0 } else { 10.0 })
            .collect();
        let mut t = RegressionTree::new();
        t.fit(&x, &y);
        assert!((t.predict(&[5.0]) - 2.0).abs() < 1e-9);
        assert!((t.predict(&[25.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_piecewise_approximation() {
        // y = x²: deeper trees approximate better.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let mut shallow = RegressionTree::with_config(TreeConfig {
            max_depth: 1,
            min_samples_split: 2,
            ..Default::default()
        });
        shallow.fit(&x, &y);
        let mut deep = RegressionTree::with_config(TreeConfig {
            max_depth: 6,
            min_samples_split: 2,
            ..Default::default()
        });
        deep.fit(&x, &y);
        let mse = |t: &RegressionTree| {
            x.iter()
                .zip(&y)
                .map(|(r, &v)| (t.predict(r) - v) * (t.predict(r) - v))
                .sum::<f64>()
                / x.len() as f64
        };
        assert!(mse(&deep) < mse(&shallow) / 4.0);
    }

    #[test]
    fn empty_fit_is_harmless() {
        let mut t = DecisionTree::new();
        t.fit(&[], &[]);
        assert_eq!(t.predict_proba(&[1.0]), 0.5);
        let mut rt = RegressionTree::new();
        Regressor::fit(&mut rt, &[], &[]);
        assert_eq!(rt.predict(&[1.0]), 0.0);
    }
}
