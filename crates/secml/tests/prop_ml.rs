//! Property tests over the ML library's numeric invariants.

// Offline build: `proptest` is not vendored, so this whole suite is
// compiled out unless the crate's `proptest` feature is enabled (which
// additionally requires registry access and restoring the `proptest`
// dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use secml::eval::{roc_auc, stratified_folds, ConfusionMatrix, RegressionReport};
use secml::linreg::{simple_regression, LinearRegression};
use secml::logreg::LogisticRegression;
use secml::preprocess::Standardizer;
use secml::{Classifier, Regressor};

fn labelled_rows() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>)> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, any::<bool>()), 8..40).prop_map(
        |points| {
            let rows = points.iter().map(|(a, b, _)| vec![*a, *b]).collect();
            let labels = points.iter().map(|(_, _, l)| *l as usize).collect();
            (rows, labels)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Probabilities are probabilities, whatever the data.
    #[test]
    fn classifier_probabilities_in_unit_interval((rows, labels) in labelled_rows()) {
        let mut m = LogisticRegression::new();
        m.fit(&rows, &labels);
        for row in &rows {
            let p = m.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    /// AUC is symmetric under score negation: AUC(s) + AUC(-s) = 1 for
    /// tie-free scores.
    #[test]
    fn auc_negation_symmetry(scores in prop::collection::vec(-100f64..100.0, 6..40)) {
        // Deduplicate to avoid ties; build alternating labels.
        let mut s = scores.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s.dedup();
        prop_assume!(s.len() >= 4);
        let labels: Vec<usize> = (0..s.len()).map(|i| i % 2).collect();
        let neg: Vec<f64> = s.iter().map(|v| -v).collect();
        let auc = roc_auc(&labels, &s);
        let auc_neg = roc_auc(&labels, &neg);
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    /// Stratified folds partition the index set and keep both classes in
    /// every fold when feasible.
    #[test]
    fn stratified_folds_partition(labels in prop::collection::vec(0usize..2, 10..80), k in 2usize..6) {
        let folds = stratified_folds(&labels, k);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        let pos = labels.iter().filter(|&&l| l == 1).count();
        let neg = labels.len() - pos;
        if pos >= k && neg >= k {
            for f in &folds {
                prop_assert!(f.iter().any(|&i| labels[i] == 1));
                prop_assert!(f.iter().any(|&i| labels[i] == 0));
            }
        }
    }

    /// Confusion-matrix metrics stay in [0, 1].
    #[test]
    fn confusion_metrics_bounded(truth in prop::collection::vec(0usize..2, 1..60), flips in prop::collection::vec(any::<bool>(), 1..60)) {
        let predicted: Vec<usize> = truth
            .iter()
            .zip(flips.iter().chain(std::iter::repeat(&false)))
            .map(|(&t, &f)| if f { 1 - t } else { t })
            .collect();
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        for v in [m.accuracy(), m.precision(), m.recall(), m.f1()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert_eq!(m.total(), truth.len().min(predicted.len()));
    }

    /// OLS on exactly-linear data recovers the relation regardless of the
    /// sampled coefficients.
    #[test]
    fn ols_recovers_exact_line(slope in -5.0f64..5.0, intercept in -10.0f64..10.0) {
        let x: Vec<f64> = (0..25).map(|i| i as f64 / 2.0).collect();
        let y: Vec<f64> = x.iter().map(|v| intercept + slope * v).collect();
        let fit = simple_regression(&x, &y);
        prop_assert!((fit.slope - slope).abs() < 1e-8);
        prop_assert!((fit.intercept - intercept).abs() < 1e-7);
        let mut model = LinearRegression::new();
        let rows: Vec<Vec<f64>> = x.iter().map(|v| vec![*v]).collect();
        model.fit(&rows, &y);
        prop_assert!((model.coefficients[0] - slope).abs() < 1e-6);
    }

    /// R² of a model's own training predictions on linear data is ≈ 1 and
    /// never NaN on constant data.
    #[test]
    fn regression_report_total(targets in prop::collection::vec(-100f64..100.0, 2..40)) {
        let report = RegressionReport::compute(&targets, &targets);
        prop_assert_eq!(report.mae, 0.0);
        prop_assert!(report.r_squared == 1.0 || report.r_squared == 0.0); // 0 for constant y
    }

    /// Standardization then inverse ordering: z-scores preserve order.
    #[test]
    fn standardizer_preserves_order(values in prop::collection::vec(-1e4f64..1e4, 3..50)) {
        let rows: Vec<Vec<f64>> = values.iter().map(|v| vec![*v]).collect();
        let st = Standardizer::fit(&rows);
        let mut transformed = rows.clone();
        st.transform(&mut transformed);
        for (a, b) in values.windows(2).map(|w| (w[0], w[1])).zip(transformed.windows(2).map(|w| (w[0][0], w[1][0]))).map(|((a, b), (ta, tb))| ((a, ta), (b, tb))) {
            let ((raw_a, z_a), (raw_b, z_b)) = (a, b);
            if raw_a < raw_b {
                prop_assert!(z_a <= z_b);
            }
            prop_assert!(z_a.is_finite() && z_b.is_finite());
        }
    }
}
