//! The `clairvoyant` command-line tool.
//!
//! A thin CLI over the library for day-to-day use in the §5.3 developer
//! workflow. Input files are MiniLang sources (see the `minilang` crate
//! docs for the grammar); the file extension picks the comment dialect
//! (`.c`/`.cc` → C-family, `.py` → Python, `.java` → Java).
//!
//! ```text
//! clairvoyant lint <files…>              run the bug-finding suite
//! clairvoyant features <files…>          print the testbed feature vector
//! clairvoyant evaluate [--json] <files…> train (cached-size corpus) + report
//! clairvoyant compare <fileA> <fileB>    pick the lower-risk candidate
//! clairvoyant gate <before> <after>      CI gate: exit 1 if risk rises
//! clairvoyant serve [--model PATH]       run the scoring daemon
//! clairvoyant query <op> [args…]         talk to a running daemon
//! clairvoyant longitudinal [--epochs N] [--apps N] [--serve-addr A]…
//!                                        replay an evolving corpus: stream,
//!                                        retrain per epoch, hot-redeploy
//! ```
//!
//! Commands that train the metric extract corpus features through the
//! pipeline engine and run ML training on a worker pool; `--jobs`,
//! `--train-jobs`, `--cache-dir` and `--no-cache` tune them. `serve`
//! and `query` speak the length-prefixed JSON protocol of the
//! `clairvoyant-serve` crate (DESIGN.md §11).

use clairvoyant::longitudinal::{replay, LongitudinalConfig};
use clairvoyant::prelude::*;
use clairvoyant::report::{explanation_json, security_report_json, Json};
use clairvoyant::{
    classify_delta, version_delta_compiled, IncrementalTestbed, RiskChange, Testbed,
};
use serve::client::{error_type, is_ok, Client, Fleet};
use serve::server::{ModelState, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (engine, train_jobs, args) = match parse_engine_flags(std::env::args().skip(1).collect()) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "lint" => lint(rest),
        "features" => features(rest, &engine),
        "evaluate" => evaluate(rest, &engine, train_jobs),
        "score" => score(rest, &engine, train_jobs),
        "explain" => explain(rest, &engine, train_jobs),
        "compare" => compare(rest, &engine, train_jobs),
        "gate" => gate(rest, &engine, train_jobs),
        "watch" => watch(rest, &engine, train_jobs),
        "serve" => serve_cmd(rest, &engine, train_jobs),
        "query" => query_cmd(rest),
        "longitudinal" => longitudinal_cmd(rest, &engine, train_jobs),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: clairvoyant [options] <command> [args]

commands:
  lint <files…>               run the 10-checker bug-finding suite
  features <files…>           print the testbed feature vector (97 features)
  evaluate [--json] <files…>  train the metric and print a security report
  score [--json] [--model PATH] [--save-model PATH] <files…>
                              batch-score each file as its own app through
                              the compiled inference engine; --model loads a
                              saved compiled model (skipping training),
                              --save-model persists the model for reuse
  explain [--json] [--model PATH] [--top-k N] <files…>
                              full explanation for each file: exact per-model
                              feature attributions plus ranked function
                              hotspots (--top-k, default 5); --json emits the
                              machine-readable form
  compare <fileA> <fileB>     evaluate two candidates, pick the safer one,
                              and say which code properties drive the gap
  gate [--model PATH] <before> <after>
                              CI gate: exit 1 when the change raises risk;
                              --model loads a saved compiled model instead of
                              retraining the fixed-seed corpus
  watch [--model PATH] [--once] [--interval-ms N] [--state PATH] <dir>
                              poll a project directory and incrementally
                              re-score on change (only edited functions are
                              re-analyzed); prints a gate verdict per change
                              and exits 1 when risk is RAISED. --once scores
                              a single round against the saved state file
                              (default <dir>/.clairvoyant-watch) — the CI
                              shape: baseline run, edit, verdict run
  serve [--addr A] [--model PATH] [--max-inflight N] [--batch-max N]
        [--reactor-threads N] [--batch-shards N]
                              run the scoring daemon; --model serves a saved
                              CLVY file (otherwise trains the fixed-seed
                              corpus once at startup); --reactor-threads
                              sizes the event-loop pool and --batch-shards
                              the batcher pool; prints the bound address,
                              then serves until `query shutdown`
  query [--addr A] <op>       talk to a running daemon (multi-file score and
                              explain pipeline every request over one
                              connection):
                                query health | stats | shutdown
                                query reload [model.clvy]
                                query score [--json] <files…>
                                query explain [--json] [--top-k N] <files…>
                                query compare <fileA> <fileB>
  longitudinal [--epochs N] [--apps N] [--seed N] [--window-years N]
               [--work-dir PATH] [--in-ram] [--serve-addr A]… [--json]
                              replay an evolving longitudinal corpus: stream
                              N apps per epoch (never all resident), extract
                              only changed apps through the incremental
                              engine, retrain on a sliding ground-truth
                              window (spill-to-disk matrices unless
                              --in-ram), measure model drift (stale vs fresh
                              AUC/Brier), and hot-reload each epoch's CLVY
                              into every --serve-addr daemon; --json prints
                              the deterministic drift report

options (pipeline engine, for commands that train the metric):
  --jobs <N>                  extraction worker threads (0 = all cores)
  --train-jobs <N>            ML training worker threads (default: --jobs;
                              0 = all cores; output is identical for any N)
  --cache-dir <PATH>          persist the feature cache under PATH
  --no-cache                  disable the feature cache entirely";

/// Strip the pipeline-engine flags (accepted anywhere on the command line)
/// and fold them into a [`PipelineConfig`] plus the training worker count
/// (`--train-jobs`, defaulting to `--jobs` when absent).
fn parse_engine_flags(args: Vec<String>) -> Result<(PipelineConfig, usize, Vec<String>), String> {
    let mut config = PipelineConfig::default();
    let mut train_jobs = 0;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a number")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--jobs: `{value}` is not a number"))?;
                config = config.jobs(n);
            }
            "--train-jobs" => {
                let value = it.next().ok_or("--train-jobs needs a number")?;
                train_jobs = value
                    .parse()
                    .map_err(|_| format!("--train-jobs: `{value}` is not a number"))?;
            }
            "--cache-dir" => {
                let dir = it.next().ok_or("--cache-dir needs a path")?;
                config = config.cache(CacheMode::Disk(PathBuf::from(dir)));
            }
            "--no-cache" => config = config.cache(CacheMode::Off),
            _ => rest.push(arg),
        }
    }
    Ok((config, train_jobs, rest))
}

fn dialect_of(path: &str) -> Dialect {
    match path.rsplit('.').next() {
        Some("py") => Dialect::Python,
        Some("java") => Dialect::Java,
        Some("cc" | "cpp") => Dialect::Cpp,
        _ => Dialect::C,
    }
}

fn load_program(name: &str, paths: &[String]) -> Result<minilang::ast::Program, String> {
    if paths.is_empty() {
        return Err("no input files".to_string());
    }
    let mut files = Vec::new();
    for path in paths {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        files.push((path.clone(), source));
    }
    let dialect = dialect_of(&paths[0]);
    minilang::parse_program(name, dialect, &files).map_err(|e| format!("parse error: {e}"))
}

/// The CLI's trained model: a fixed-seed mid-size corpus, trained once per
/// invocation (a production deployment would persist the model; retraining
/// keeps this binary self-contained and deterministic). Corpus features go
/// through the pipeline engine, so `--cache-dir` makes repeat invocations
/// skip re-extraction entirely.
fn trained_model(engine: &PipelineConfig, train_jobs: usize) -> TrainedModel {
    let mut config = CorpusConfig::small(20, 20170408);
    config.language_mix = [15, 2, 1, 2];
    let corpus = Corpus::generate(&config);
    let trainer = Trainer::with_config(TrainerConfig {
        pipeline: engine.clone(),
        train_jobs,
        ..Default::default()
    });
    let (model, report) = trainer.train_with_report(&corpus);
    eprintln!(
        "extraction: {:.1} programs/sec on {} worker(s), {}/{} cache hits",
        report.extraction.throughput(),
        report.extraction.jobs,
        report.extraction.cache_hits,
        report.extraction.programs,
    );
    model
}

fn lint(paths: &[String]) -> Result<ExitCode, String> {
    let program = load_program("input", paths)?;
    let report = bugfind::MetaTool::new().run(&program);
    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "{} findings ({} errors, {} warnings, {} notes)",
        report.total(),
        report.count_severity(bugfind::DiagSeverity::Error),
        report.count_severity(bugfind::DiagSeverity::Warning),
        report.count_severity(bugfind::DiagSeverity::Note),
    );
    Ok(if report.count_severity(bugfind::DiagSeverity::Error) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn features(paths: &[String], engine: &PipelineConfig) -> Result<ExitCode, String> {
    let program = load_program("input", paths)?;
    // One program, so parallelism comes from fanning its functions
    // across the extraction workers; the vector is identical for any N.
    let fv = Testbed::new().with_fn_jobs(engine.jobs).extract(&program);
    println!("{fv}");
    Ok(ExitCode::SUCCESS)
}

fn evaluate(
    args: &[String],
    engine: &PipelineConfig,
    train_jobs: usize,
) -> Result<ExitCode, String> {
    let (json, paths): (bool, Vec<String>) = match args.split_first() {
        Some((flag, rest)) if flag == "--json" => (true, rest.to_vec()),
        _ => (false, args.to_vec()),
    };
    let program = load_program("input", &paths)?;
    eprintln!("training the metric (fixed-seed corpus)…");
    let model = trained_model(engine, train_jobs);
    let report = model.evaluate(&program);
    if json {
        println!("{}", security_report_json(&report));
    } else {
        println!("{report}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Batch-score many programs through the compiled inference engine: each
/// input file is parsed as its own application, features are extracted on
/// the worker pool, and the whole corpus is scored in one
/// `evaluate_batch` pass.
fn score(args: &[String], engine: &PipelineConfig, train_jobs: usize) -> Result<ExitCode, String> {
    let mut json = false;
    let mut model_path: Option<PathBuf> = None;
    let mut save_path: Option<PathBuf> = None;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--model" => {
                model_path = Some(PathBuf::from(it.next().ok_or("--model needs a path")?));
            }
            "--save-model" => {
                save_path = Some(PathBuf::from(it.next().ok_or("--save-model needs a path")?));
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return Err("no input files".to_string());
    }

    let compiled = match &model_path {
        Some(path) => {
            let model = CompiledModel::load(path)?;
            eprintln!("loaded compiled model from `{}`", path.display());
            model
        }
        None => {
            eprintln!("training the metric (fixed-seed corpus)…");
            trained_model(engine, train_jobs).compile()
        }
    };
    // Codegen: quantized kernels for the whole battery, once up front.
    compiled.optimize();
    if let Some(path) = &save_path {
        compiled.save(path)?;
        eprintln!("saved compiled model to `{}`", path.display());
    }

    let programs: Vec<minilang::ast::Program> = paths
        .iter()
        .map(|p| load_program(p, std::slice::from_ref(p)))
        .collect::<Result<_, _>>()?;
    let apps: Vec<(String, static_analysis::FeatureVector)> =
        pipeline::parallel_map(engine.jobs, &programs, |_, program| {
            (program.name.clone(), Testbed::new().extract(program))
        });
    let reports = compiled.evaluate_batch(&apps, engine.jobs);

    if json {
        let items: Vec<String> = reports.iter().map(security_report_json).collect();
        println!("[{}]", items.join(","));
    } else {
        println!(
            "{:<40} {:>6} {:>8} {:>8} {:>8}",
            "app", "risk", "#vulns", "cvss>7", "av:n"
        );
        for report in &reports {
            let pct = |p: Option<f64>| match p {
                Some(p) => format!("{:.0}%", p * 100.0),
                None => "-".to_string(),
            };
            println!(
                "{:<40} {:>6.1} {:>8.1} {:>8} {:>8}",
                report.app,
                report.risk_score(),
                report.predicted_vulnerabilities,
                pct(report.high_severity_risk),
                pct(report.network_risk),
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Explain each input file through the compiled engine: exact per-model
/// attributions plus ranked function hotspots.
fn explain(
    args: &[String],
    engine: &PipelineConfig,
    train_jobs: usize,
) -> Result<ExitCode, String> {
    let mut json = false;
    let mut model_path: Option<PathBuf> = None;
    let mut top_k = 5usize;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--model" => {
                model_path = Some(PathBuf::from(it.next().ok_or("--model needs a path")?));
            }
            "--top-k" => {
                let value = it.next().ok_or("--top-k needs a number")?;
                top_k = value
                    .parse()
                    .map_err(|_| format!("--top-k: `{value}` is not a number"))?;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return Err("no input files".to_string());
    }

    let compiled = match &model_path {
        Some(path) => {
            let model = CompiledModel::load(path)?;
            eprintln!("loaded compiled model from `{}`", path.display());
            model
        }
        None => {
            eprintln!("training the metric (fixed-seed corpus)…");
            trained_model(engine, train_jobs).compile()
        }
    };
    // Codegen: quantized kernels for the whole battery, once up front.
    compiled.optimize();

    let mut rendered = Vec::new();
    for path in &paths {
        let program = load_program(path, std::slice::from_ref(path))?;
        let explanation = compiled.explain_program(&program, top_k, engine.jobs);
        if json {
            rendered.push(explanation_json(&explanation));
        } else {
            println!("{explanation}");
        }
    }
    if json {
        println!("[{}]", rendered.join(","));
    }
    Ok(ExitCode::SUCCESS)
}

fn compare(
    args: &[String],
    engine: &PipelineConfig,
    train_jobs: usize,
) -> Result<ExitCode, String> {
    let [a, b] = args else {
        return Err("compare needs exactly two files".to_string());
    };
    let pa = load_program(a, std::slice::from_ref(a))?;
    let pb = load_program(b, std::slice::from_ref(b))?;
    eprintln!("training the metric (fixed-seed corpus)…");
    let model = trained_model(engine, train_jobs);
    let cmp = compare_programs(&model, &pa, &pb);
    println!("{cmp}");
    Ok(ExitCode::SUCCESS)
}

/// Default daemon address for `serve`/`query` when `--addr` is absent.
const DEFAULT_ADDR: &str = "127.0.0.1:4747";

/// Run the scoring daemon until a `shutdown` request arrives.
fn serve_cmd(
    args: &[String],
    engine: &PipelineConfig,
    train_jobs: usize,
) -> Result<ExitCode, String> {
    let mut config = ServeConfig {
        addr: DEFAULT_ADDR.to_string(),
        jobs: engine.jobs,
        ..ServeConfig::default()
    };
    let mut model_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--model" => {
                model_path = Some(PathBuf::from(it.next().ok_or("--model needs a path")?));
            }
            "--max-inflight" => {
                let value = it.next().ok_or("--max-inflight needs a number")?;
                config.max_inflight = value
                    .parse()
                    .map_err(|_| format!("--max-inflight: `{value}` is not a number"))?;
                if config.max_inflight == 0 {
                    return Err("--max-inflight must be at least 1".into());
                }
            }
            "--batch-max" => {
                let value = it.next().ok_or("--batch-max needs a number")?;
                config.batch_max = value
                    .parse()
                    .map_err(|_| format!("--batch-max: `{value}` is not a number"))?;
                if config.batch_max == 0 {
                    return Err("--batch-max must be at least 1".into());
                }
            }
            "--reactor-threads" => {
                let value = it.next().ok_or("--reactor-threads needs a number")?;
                config.reactor_threads = value
                    .parse()
                    .map_err(|_| format!("--reactor-threads: `{value}` is not a number"))?;
                if config.reactor_threads == 0 {
                    return Err("--reactor-threads must be at least 1".into());
                }
            }
            "--batch-shards" => {
                let value = it.next().ok_or("--batch-shards needs a number")?;
                config.batch_shards = value
                    .parse()
                    .map_err(|_| format!("--batch-shards: `{value}` is not a number"))?;
                if config.batch_shards == 0 {
                    return Err("--batch-shards must be at least 1".into());
                }
            }
            other => return Err(format!("serve does not understand `{other}`")),
        }
    }
    let model = match &model_path {
        Some(path) => {
            let state = ModelState::load(path)?;
            eprintln!(
                "serving model {} from `{}`",
                state.fingerprint_hex(),
                path.display()
            );
            state
        }
        None => {
            eprintln!("training the metric (fixed-seed corpus)…");
            let state = ModelState::from_model(trained_model(engine, train_jobs).compile());
            eprintln!("serving model {}", state.fingerprint_hex());
            state
        }
    };
    let handle = serve::start(config, model)?;
    // The bound address on stdout is the contract scripts rely on for
    // ephemeral ports (`--addr 127.0.0.1:0`).
    println!("listening on {}", handle.addr());
    handle.wait();
    eprintln!("drained and stopped");
    Ok(ExitCode::SUCCESS)
}

/// One protocol round-trip against a running daemon.
fn query_cmd(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs host:port")?.clone(),
            other => rest.push(other.to_string()),
        }
    }
    let Some((op, op_args)) = rest.split_first() else {
        return Err(
            "query needs an op: health | stats | shutdown | reload | score | explain | compare"
                .into(),
        );
    };
    let mut client = Client::connect(&addr)?;
    match op.as_str() {
        "health" => print_response(client.health()?),
        "stats" => print_response(client.stats()?),
        "shutdown" => print_response(client.shutdown()?),
        "reload" => print_response(client.reload(op_args.first().map(String::as_str))?),
        "score" => {
            let (json, paths): (bool, &[String]) = match op_args.split_first() {
                Some((flag, tail)) if flag == "--json" => (true, tail),
                _ => (false, op_args),
            };
            if paths.is_empty() {
                return Err("query score needs input files".into());
            }
            // Pipeline: every file's request goes on the wire before
            // the first response is read; the daemon answers in order.
            let mut requests = Vec::with_capacity(paths.len());
            for path in paths {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                requests.push(Json::object(vec![
                    ("op", Json::String("score".into())),
                    ("name", Json::String(path.clone())),
                    ("source", Json::String(source)),
                    ("dialect", Json::String(dialect_name(path).into())),
                ]));
            }
            let responses = client.pipeline(&requests)?;
            let mut failed = false;
            let mut refused_busy = false;
            for (path, response) in paths.iter().zip(&responses) {
                if json {
                    println!("{response}");
                } else if is_ok(response) {
                    print_score_line(path, response);
                } else {
                    println!("{path}: error: {response}");
                }
                if !is_ok(response) {
                    if error_type(response) == Some("busy") {
                        refused_busy = true;
                    } else {
                        failed = true;
                    }
                }
            }
            // Same contract as print_response: hard failures exit 1,
            // overload-only refusals exit 3 so retry scripts can back
            // off and resubmit.
            Ok(if failed {
                ExitCode::FAILURE
            } else if refused_busy {
                ExitCode::from(3)
            } else {
                ExitCode::SUCCESS
            })
        }
        "explain" => {
            let mut json = false;
            let mut top_k = 5usize;
            let mut paths: Vec<String> = Vec::new();
            let mut args = op_args.iter();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--top-k" => {
                        let value = args.next().ok_or("--top-k needs a number")?;
                        top_k = value
                            .parse()
                            .map_err(|_| format!("--top-k: `{value}` is not a number"))?;
                    }
                    other => paths.push(other.to_string()),
                }
            }
            if paths.is_empty() {
                return Err("query explain needs input files".into());
            }
            // Pipelined like `query score`: one connection, all requests
            // on the wire back-to-back, responses read in request order.
            let mut requests = Vec::with_capacity(paths.len());
            for path in &paths {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                requests.push(Json::object(vec![
                    ("op", Json::String("explain".into())),
                    ("name", Json::String(path.clone())),
                    ("source", Json::String(source)),
                    ("dialect", Json::String(dialect_name(path).into())),
                    ("top_k", Json::Number(top_k as f64)),
                ]));
            }
            let responses = client.pipeline(&requests)?;
            let mut failed = false;
            let mut refused_busy = false;
            for (path, response) in paths.iter().zip(&responses) {
                if json || is_ok(response) {
                    println!("{response}");
                } else {
                    println!("{path}: error: {response}");
                }
                if !is_ok(response) {
                    if error_type(response) == Some("busy") {
                        refused_busy = true;
                    } else {
                        failed = true;
                    }
                }
            }
            // Same exit contract as `query score`: busy-only refusals
            // exit 3 so retry scripts can back off and resubmit.
            Ok(if failed {
                ExitCode::FAILURE
            } else if refused_busy {
                ExitCode::from(3)
            } else {
                ExitCode::SUCCESS
            })
        }
        "compare" => {
            let [a, b] = op_args else {
                return Err("query compare needs exactly two files".into());
            };
            let read = |path: &String| {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
            };
            let (sa, sb) = (read(a)?, read(b)?);
            let response = client.compare_sources((a, &sa), (b, &sb), dialect_name(a))?;
            print_response(response)
        }
        other => Err(format!("unknown query op `{other}`")),
    }
}

/// Replay an evolving longitudinal corpus: stream → extract (incremental)
/// → retrain (out-of-core) → hot-redeploy into a fleet of daemons.
fn longitudinal_cmd(
    args: &[String],
    engine: &PipelineConfig,
    train_jobs: usize,
) -> Result<ExitCode, String> {
    let mut config = LongitudinalConfig {
        trainer: TrainerConfig {
            pipeline: engine.clone(),
            train_jobs,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut addrs: Vec<String> = Vec::new();
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let number = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<usize, String> {
            let value = it.next().ok_or(format!("{flag} needs a number"))?;
            value
                .parse()
                .map_err(|_| format!("{flag}: `{value}` is not a number"))
        };
        match arg.as_str() {
            "--epochs" => config.epochs = number("--epochs", &mut it)?.max(1),
            "--apps" => config.stream.apps = number("--apps", &mut it)?.max(1),
            "--seed" => config.stream.seed = number("--seed", &mut it)? as u64,
            "--window-years" => {
                config.window_years = number("--window-years", &mut it)? as i32;
                if config.window_years < 6 {
                    return Err("--window-years must be at least 6 (the selection \
                                rule needs 5+ years of history)"
                        .into());
                }
            }
            "--work-dir" => {
                config.work_dir = PathBuf::from(it.next().ok_or("--work-dir needs a path")?);
            }
            "--in-ram" => config.out_of_core = false,
            "--serve-addr" => addrs.push(it.next().ok_or("--serve-addr needs host:port")?.clone()),
            "--json" => json = true,
            other => return Err(format!("longitudinal does not understand `{other}`")),
        }
    }
    let fleet = Fleet::new(addrs);
    if !fleet.is_empty() {
        // Fail fast before streaming 100k apps at an unreachable fleet.
        fleet.health_all()?;
        eprintln!("fleet healthy: {}", fleet.addrs().join(", "));
    }
    eprintln!(
        "replaying {} epoch(s) over {} app(s) ({}, work dir `{}`)…",
        config.epochs,
        config.stream.apps,
        if config.out_of_core {
            "out-of-core"
        } else {
            "in-RAM"
        },
        config.work_dir.display(),
    );
    let report = replay(&config, |epoch, path| {
        if fleet.is_empty() {
            return Ok(());
        }
        let fingerprints = fleet.reload_all(&path.to_string_lossy())?;
        eprintln!(
            "epoch {epoch}: redeployed `{}` to {} daemon(s) (model {})",
            path.display(),
            fingerprints.len(),
            fingerprints.first().map(String::as_str).unwrap_or("?"),
        );
        Ok(())
    })
    .map_err(|e| format!("replay failed: {e}"))?;
    for e in &report.epochs {
        let stale = match (e.stale_auc, e.stale_brier) {
            (Some(auc), Some(brier)) => format!("stale auc {auc:.3} brier {brier:.3}  "),
            _ => String::new(),
        };
        let line = format!(
            "epoch {} (≤{}): {} changed, {} trained, {} features  {}fresh auc {:.3} \
             brier {:.3}  extract {}ms retrain {}ms  model {}",
            e.epoch,
            e.cutoff_year,
            e.apps_changed,
            e.trained_apps,
            e.n_features,
            stale,
            e.fresh_auc,
            e.fresh_brier,
            e.extract_ms,
            e.retrain_ms,
            e.fingerprint,
        );
        // With --json, stdout carries only the drift report; the human
        // summary (which includes wall-clock noise) moves to stderr.
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    if json {
        println!("{}", report.drift_json());
    }
    Ok(ExitCode::SUCCESS)
}

/// The wire name of a path's dialect (mirrors [`dialect_of`]).
fn dialect_name(path: &str) -> &'static str {
    match dialect_of(path) {
        Dialect::Python => "python",
        Dialect::Java => "java",
        Dialect::Cpp => "cpp",
        Dialect::C => "c",
    }
}

fn print_response(response: Json) -> Result<ExitCode, String> {
    println!("{response}");
    Ok(if is_ok(&response) {
        ExitCode::SUCCESS
    } else if error_type(&response) == Some("busy") {
        // Distinguish overload from protocol errors for retry scripts.
        ExitCode::from(3)
    } else {
        ExitCode::FAILURE
    })
}

/// Render a score response as one summary line (mirrors `score`'s table).
fn print_score_line(path: &str, response: &Json) {
    let field = |report: &Json, key: &str| -> Option<f64> {
        match report {
            Json::Object(obj) => match obj.get(key) {
                Some(Json::Number(n)) => Some(*n),
                _ => None,
            },
            _ => None,
        }
    };
    let (model, report) = match response {
        Json::Object(obj) => (obj.get("model"), obj.get("report")),
        _ => (None, None),
    };
    let model = match model {
        Some(Json::String(s)) => s.as_str(),
        _ => "?",
    };
    match report {
        Some(report) => println!(
            "{path:<40} risk {:>5.1}  #vulns {:>5.1}  (model {model})",
            field(report, "risk_score").unwrap_or(f64::NAN),
            field(report, "predicted_vulnerabilities").unwrap_or(f64::NAN),
        ),
        None => println!("{path}: malformed response: {response}"),
    }
}

fn gate(args: &[String], engine: &PipelineConfig, train_jobs: usize) -> Result<ExitCode, String> {
    let mut model_path: Option<PathBuf> = None;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                model_path = Some(PathBuf::from(it.next().ok_or("--model needs a path")?));
            }
            other => paths.push(other.to_string()),
        }
    }
    let [before, after] = paths.as_slice() else {
        return Err("gate needs exactly two files (before, after)".to_string());
    };
    let pb = load_program("before", std::slice::from_ref(before))?;
    let pa = load_program("after", std::slice::from_ref(after))?;
    // CI shape: load a persisted compiled model (`score --save-model`)
    // instead of retraining the fixed-seed corpus on every push.
    let delta = match &model_path {
        Some(path) => {
            let compiled = CompiledModel::load(path)?;
            eprintln!("loaded compiled model from `{}`", path.display());
            compiled.optimize();
            version_delta_compiled(&compiled, &pb, &pa, engine.jobs)
        }
        None => {
            eprintln!("training the metric (fixed-seed corpus)…");
            version_delta(&trained_model(engine, train_jobs), &pb, &pa)
        }
    };
    println!("{delta}");
    Ok(match delta.verdict {
        RiskChange::Raised => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    })
}

/// Known source extensions for `watch` directory scans.
const WATCH_EXTENSIONS: [&str; 5] = ["c", "cc", "cpp", "py", "java"];

/// Recursively collect the watchable source files under `dir` (sorted, so
/// module order — and therefore the merged program — is deterministic),
/// with their modification stamps. Dot-files (including the watch state
/// file) are skipped.
fn scan_sources(
    dir: &std::path::Path,
) -> Result<Vec<(PathBuf, std::time::SystemTime, u64)>, String> {
    fn walk(
        dir: &std::path::Path,
        out: &mut Vec<(PathBuf, std::time::SystemTime, u64)>,
    ) -> Result<(), String> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?;
            let path = entry.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with('.'))
            {
                continue;
            }
            let meta = entry
                .metadata()
                .map_err(|e| format!("cannot stat `{}`: {e}", path.display()))?;
            if meta.is_dir() {
                walk(&path, out)?;
            } else if path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| WATCH_EXTENSIONS.contains(&e))
            {
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                out.push((path, mtime, meta.len()));
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(dir, &mut out)?;
    out.sort();
    Ok(out)
}

/// Render the shared gate verdict line from two risk scores (exactly
/// `VersionDelta`'s Display, which `gate` prints).
fn verdict_line(before: f64, after: f64) -> (RiskChange, String) {
    let delta = after - before;
    let verdict = classify_delta(delta);
    let word = match verdict {
        RiskChange::Lowered => "LOWERED",
        RiskChange::Unchanged => "UNCHANGED",
        RiskChange::Raised => "RAISED",
    };
    (
        verdict,
        format!("risk {word}: {before:.1} → {after:.1} ({delta:+.1})"),
    )
}

/// Poll a project directory and incrementally re-score on change. The
/// per-function entry store persists across polls, so a one-function edit
/// in a large project re-analyzes one function; each re-score prints the
/// gate verdict against the previous score and the process exits 1 on
/// the first RAISED verdict (the CI-gate contract). `--once` does a
/// single round against the state file instead of looping.
fn watch(args: &[String], engine: &PipelineConfig, train_jobs: usize) -> Result<ExitCode, String> {
    let mut model_path: Option<PathBuf> = None;
    let mut state_path: Option<PathBuf> = None;
    let mut once = false;
    let mut interval = std::time::Duration::from_millis(500);
    let mut dirs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                model_path = Some(PathBuf::from(it.next().ok_or("--model needs a path")?));
            }
            "--state" => {
                state_path = Some(PathBuf::from(it.next().ok_or("--state needs a path")?));
            }
            "--once" => once = true,
            "--interval-ms" => {
                let value = it.next().ok_or("--interval-ms needs a number")?;
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("--interval-ms: `{value}` is not a number"))?;
                interval = std::time::Duration::from_millis(ms.max(1));
            }
            other => dirs.push(other.to_string()),
        }
    }
    let [dir] = dirs.as_slice() else {
        return Err("watch needs exactly one project directory".to_string());
    };
    let dir = PathBuf::from(dir);
    if !dir.is_dir() {
        return Err(format!("`{}` is not a directory", dir.display()));
    }
    let state_path = state_path.unwrap_or_else(|| dir.join(".clairvoyant-watch"));

    let compiled = match &model_path {
        Some(path) => {
            let model = CompiledModel::load(path)?;
            eprintln!("loaded compiled model from `{}`", path.display());
            model
        }
        None => {
            eprintln!("training the metric (fixed-seed corpus)…");
            trained_model(engine, train_jobs).compile()
        }
    };
    compiled.optimize();

    let project = dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("project")
        .to_string();
    // The resident incremental engine: the whole point of `watch` — only
    // functions whose fingerprints changed are re-analyzed per poll.
    let mut incr = IncrementalTestbed::new().with_fn_jobs(engine.jobs);
    let rescore = |incr: &mut IncrementalTestbed| -> Result<f64, String> {
        let sources = scan_sources(&dir)?;
        let paths: Vec<String> = sources
            .iter()
            .map(|(p, _, _)| p.to_string_lossy().into_owned())
            .collect();
        let program = load_program(&project, &paths)?;
        let (fv, report) = incr.extract_stats(&program);
        eprintln!(
            "extracted {} function(s): {} cached, {} rebuilt",
            report.functions, report.hits, report.rebuilt
        );
        let reports = compiled.evaluate_batch(&[(project.clone(), fv)], engine.jobs);
        Ok(reports[0].risk_score())
    };

    if once {
        let score = rescore(&mut incr)?;
        let previous = std::fs::read_to_string(&state_path)
            .ok()
            .and_then(|s| u64::from_str_radix(s.trim(), 16).ok())
            .map(f64::from_bits);
        std::fs::write(&state_path, format!("{:016x}\n", score.to_bits()))
            .map_err(|e| format!("cannot write `{}`: {e}", state_path.display()))?;
        return Ok(match previous {
            Some(before) => {
                let (verdict, line) = verdict_line(before, score);
                println!("{line}");
                match verdict {
                    RiskChange::Raised => ExitCode::FAILURE,
                    _ => ExitCode::SUCCESS,
                }
            }
            None => {
                println!("baseline risk {score:.1}");
                ExitCode::SUCCESS
            }
        });
    }

    let mut stamps = scan_sources(&dir)?;
    let mut score = rescore(&mut incr)?;
    println!("baseline risk {score:.1}");
    loop {
        std::thread::sleep(interval);
        let current = scan_sources(&dir)?;
        if current == stamps {
            continue;
        }
        stamps = current;
        let next = rescore(&mut incr)?;
        let (verdict, line) = verdict_line(score, next);
        println!("{line}");
        let _ = std::fs::write(&state_path, format!("{:016x}\n", next.to_bits()));
        if verdict == RiskChange::Raised {
            return Ok(ExitCode::FAILURE);
        }
        score = next;
    }
}
