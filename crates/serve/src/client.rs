//! A small blocking protocol client, with pipelining.
//!
//! One [`Client`] wraps one persistent connection. The simple calls
//! (`health`, `score_source`, …) send one frame and block for the
//! matching response. The pipelined surface splits the two halves:
//! [`Client::send_raw`] queues requests without waiting and
//! [`Client::recv`] reads the next response, so a caller can put many
//! requests on the wire back-to-back and collect the answers — which
//! the server guarantees come back in request order —
//! ([`Client::pipeline`] wraps the common case). The CLI `query`
//! subcommand, the bench, and the black-box test harness all drive the
//! daemon through this type, so the tests exercise exactly the code
//! users run.

use crate::json;
use crate::protocol::{frame_into, read_frame_into, write_frame, FrameError};
use clairvoyant::report::Json;
use std::io::{BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a scoring daemon.
pub struct Client {
    /// Read half is buffered so one syscall can drain a whole pipelined
    /// burst of response frames; writes go straight to the socket via
    /// `get_ref` (a `&TcpStream` is independently writable).
    stream: BufReader<TcpStream>,
    /// Reused response buffer: [`Client::recv_payload`] lands every
    /// response here, so a pipelined read loop does not allocate.
    recv_buf: Vec<u8>,
    /// Set when a response timed out or the stream desynced: the late
    /// response may still arrive, so another roundtrip on this
    /// connection would read a stale answer. Poisoned clients refuse
    /// further requests; callers must reconnect.
    poisoned: bool,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4747`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect: {e}"))?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("cannot configure socket: {e}"))?;
        Ok(Client {
            stream: BufReader::with_capacity(64 * 1024, stream),
            recv_buf: Vec::new(),
            poisoned: false,
        })
    }

    /// Cap how long a single request may wait for its response.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), String> {
        self.stream
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| format!("cannot set timeout: {e}"))
    }

    fn check_poisoned(&self) -> Result<(), String> {
        if self.poisoned {
            return Err(
                "connection is poisoned by an earlier timeout or framing error; reconnect".into(),
            );
        }
        Ok(())
    }

    /// Queue one raw request payload without waiting for its response —
    /// the send half of the pipelined surface. Responses come back in
    /// send order via [`Client::recv`]/[`Client::recv_payload`].
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), String> {
        self.check_poisoned()?;
        write_frame(&mut self.stream.get_ref(), payload)
            .map_err(|e| format!("cannot send request: {e}"))
    }

    /// Queue one request value without waiting for its response.
    pub fn send(&mut self, request: &Json) -> Result<(), String> {
        self.check_poisoned()?;
        let mut framed = Vec::new();
        frame_into(&mut framed, request);
        self.stream
            .get_ref()
            .write_all(&framed)
            .map_err(|e| format!("cannot send request: {e}"))
    }

    /// Put pre-framed bytes (built with [`frame_into`], possibly many
    /// frames) on the wire in one write. The bench precomputes request
    /// frames once and blasts them through here, so the client side of
    /// the hot loop is a single `write_all`.
    pub fn send_framed(&mut self, frames: &[u8]) -> Result<(), String> {
        self.check_poisoned()?;
        self.stream
            .get_ref()
            .write_all(frames)
            .map_err(|e| format!("cannot send requests: {e}"))
    }

    /// Read the next response payload into the reused internal buffer
    /// and borrow it — the allocation-free receive half.
    pub fn recv_payload(&mut self) -> Result<&[u8], String> {
        self.check_poisoned()?;
        // `keep_waiting` is only consulted on a read timeout, so if it
        // runs at all the wait exceeded `set_timeout` — distinguish that
        // from the server actually closing the connection.
        let mut timed_out = false;
        let len = read_frame_into(&mut self.stream, &mut self.recv_buf, &mut || {
            timed_out = true;
            false
        })
        .map_err(|e| {
            if timed_out {
                // The response is still in flight; a later roundtrip
                // would read it as its own answer. Refuse reuse.
                self.poisoned = true;
                return "timed out waiting for the response; reconnect before retrying".into();
            }
            match e {
                FrameError::Closed => "server closed the connection".to_string(),
                FrameError::Desync(m) => {
                    self.poisoned = true;
                    format!("response framing broke: {m}")
                }
                FrameError::Io(e) => format!("cannot read response: {e}"),
            }
        })?;
        Ok(&self.recv_buf[..len])
    }

    /// Read and parse the next response.
    pub fn recv(&mut self) -> Result<Json, String> {
        let payload = self.recv_payload()?;
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("response is not UTF-8: {e}"))?;
        json::parse(text).map_err(|e| format!("response is not valid JSON: {e}"))
    }

    /// Send one raw request payload and return the parsed response.
    pub fn roundtrip_raw(&mut self, payload: &[u8]) -> Result<Json, String> {
        self.send_raw(payload)?;
        self.recv()
    }

    /// Send one request value and return the parsed response.
    pub fn roundtrip(&mut self, request: &Json) -> Result<Json, String> {
        self.roundtrip_raw(request.to_string().as_bytes())
    }

    /// Pipeline a batch: put every request on the wire back-to-back,
    /// then collect the responses, which arrive in request order.
    pub fn pipeline(&mut self, requests: &[Json]) -> Result<Vec<Json>, String> {
        self.check_poisoned()?;
        let mut framed = Vec::new();
        for request in requests {
            frame_into(&mut framed, request);
        }
        self.send_framed(&framed)?;
        requests.iter().map(|_| self.recv()).collect()
    }

    pub fn health(&mut self) -> Result<Json, String> {
        self.roundtrip(&Json::object(vec![("op", Json::String("health".into()))]))
    }

    pub fn stats(&mut self) -> Result<Json, String> {
        self.roundtrip(&Json::object(vec![("op", Json::String("stats".into()))]))
    }

    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.roundtrip(&Json::object(vec![("op", Json::String("shutdown".into()))]))
    }

    pub fn reload(&mut self, path: Option<&str>) -> Result<Json, String> {
        let mut pairs = vec![("op", Json::String("reload".into()))];
        if let Some(path) = path {
            pairs.push(("path", Json::String(path.into())));
        }
        self.roundtrip(&Json::object(pairs))
    }

    /// Score program source text.
    pub fn score_source(
        &mut self,
        name: &str,
        source: &str,
        dialect: &str,
    ) -> Result<Json, String> {
        self.roundtrip(&Json::object(vec![
            ("op", Json::String("score".into())),
            ("name", Json::String(name.into())),
            ("source", Json::String(source.into())),
            ("dialect", Json::String(dialect.into())),
        ]))
    }

    /// Score a pre-extracted feature vector.
    pub fn score_features(
        &mut self,
        name: &str,
        features: &static_analysis::FeatureVector,
    ) -> Result<Json, String> {
        self.roundtrip(&Json::object(vec![
            ("op", Json::String("score".into())),
            ("name", Json::String(name.into())),
            ("features", features_value(features)),
        ]))
    }

    /// Explain program source text: full per-model attributions plus up
    /// to `top_k` function hotspots.
    pub fn explain_source(
        &mut self,
        name: &str,
        source: &str,
        dialect: &str,
        top_k: usize,
    ) -> Result<Json, String> {
        self.roundtrip(&Json::object(vec![
            ("op", Json::String("explain".into())),
            ("name", Json::String(name.into())),
            ("source", Json::String(source.into())),
            ("dialect", Json::String(dialect.into())),
            ("top_k", Json::Number(top_k as f64)),
        ]))
    }

    /// Explain a pre-extracted feature vector (no hotspots: the server
    /// has no program to analyze).
    pub fn explain_features(
        &mut self,
        name: &str,
        features: &static_analysis::FeatureVector,
    ) -> Result<Json, String> {
        self.roundtrip(&Json::object(vec![
            ("op", Json::String("explain".into())),
            ("name", Json::String(name.into())),
            ("features", features_value(features)),
        ]))
    }

    /// Compare two source candidates: both are explained in one batch
    /// and the response carries the attribution-backed deltas.
    pub fn compare_sources(
        &mut self,
        a: (&str, &str),
        b: (&str, &str),
        dialect: &str,
    ) -> Result<Json, String> {
        let side = |(name, source): (&str, &str)| {
            Json::object(vec![
                ("name", Json::String(name.into())),
                ("source", Json::String(source.into())),
                ("dialect", Json::String(dialect.into())),
            ])
        };
        self.roundtrip(&Json::object(vec![
            ("op", Json::String("compare".into())),
            ("a", side(a)),
            ("b", side(b)),
        ]))
    }

    /// Compare two pre-extracted feature vectors.
    pub fn compare_features(
        &mut self,
        a: (&str, &static_analysis::FeatureVector),
        b: (&str, &static_analysis::FeatureVector),
    ) -> Result<Json, String> {
        let side = |(name, fv): (&str, &static_analysis::FeatureVector)| {
            Json::object(vec![
                ("name", Json::String(name.into())),
                ("features", features_value(fv)),
            ])
        };
        self.roundtrip(&Json::object(vec![
            ("op", Json::String("compare".into())),
            ("a", side(a)),
            ("b", side(b)),
        ]))
    }
}

/// A set of scoring daemons addressed together — the longitudinal
/// replay's redeploy target. Members are plain addresses; connections
/// are opened per call, so a fleet value stays cheap to clone around
/// and a crashed member surfaces as a connect error, not a stale socket.
#[derive(Debug, Clone)]
pub struct Fleet {
    addrs: Vec<String>,
}

impl Fleet {
    pub fn new(addrs: impl IntoIterator<Item = impl Into<String>>) -> Fleet {
        Fleet {
            addrs: addrs.into_iter().map(Into::into).collect(),
        }
    }

    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Hot-reload every member from the CLVY file at `path`, returning
    /// each member's reported post-swap model fingerprint (in member
    /// order). Fails on the first member that refuses or cannot be
    /// reached — the caller decides whether a half-deployed fleet is
    /// acceptable and retries accordingly.
    pub fn reload_all(&self, path: &str) -> Result<Vec<String>, String> {
        let mut fingerprints = Vec::with_capacity(self.addrs.len());
        for addr in &self.addrs {
            let mut client = Client::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
            let response = client
                .reload(Some(path))
                .map_err(|e| format!("{addr}: {e}"))?;
            if !is_ok(&response) {
                return Err(format!("{addr}: reload rejected: {response}"));
            }
            let fingerprint = match &response {
                Json::Object(obj) => json::get_str(obj, "model").unwrap_or_default().to_string(),
                _ => String::new(),
            };
            fingerprints.push(fingerprint);
        }
        Ok(fingerprints)
    }

    /// Health-check every member; Ok only when all respond ok.
    pub fn health_all(&self) -> Result<(), String> {
        for addr in &self.addrs {
            let mut client = Client::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
            let response = client.health().map_err(|e| format!("{addr}: {e}"))?;
            if !is_ok(&response) {
                return Err(format!("{addr}: unhealthy: {response}"));
            }
        }
        Ok(())
    }
}

/// Render a feature vector as the protocol's `features` object.
fn features_value(features: &static_analysis::FeatureVector) -> Json {
    Json::Object(
        features
            .iter()
            .map(|(k, v)| (k.to_string(), Json::Number(v)))
            .collect(),
    )
}

/// Pull `response.error.type` out of a failed response, if present.
pub fn error_type(response: &Json) -> Option<&str> {
    let Json::Object(obj) = response else {
        return None;
    };
    if obj.get("ok") == Some(&Json::Bool(true)) {
        return None;
    }
    match obj.get("error") {
        Some(Json::Object(err)) => json::get_str(err, "type"),
        _ => None,
    }
}

/// True when the response is `{"ok":true,...}`.
pub fn is_ok(response: &Json) -> bool {
    matches!(response, Json::Object(obj) if obj.get("ok") == Some(&Json::Bool(true)))
}
