//! Per-connection state machine for the reactor.
//!
//! One [`Conn`] owns one non-blocking socket and carries everything the
//! event loop needs between readiness events:
//!
//! - an incremental [`FrameBuffer`] on the read side — partial frames
//!   accumulate across events, complete frames are parsed *in place*
//!   (no per-frame allocation), and many frames per event are handled,
//!   which is what makes **pipelining** work;
//! - an ordered `pending` queue pairing every request with its eventual
//!   response. Cheap endpoints resolve immediately; scoring-family
//!   requests go to a batcher shard and come back as completions. The
//!   queue releases responses strictly in request order, so a pipelined
//!   client always reads answers in the order it sent questions, no
//!   matter how the shards interleave;
//! - a reused output buffer responses serialize into via
//!   [`Payload::frame_into`] — one buffer per connection for its whole life,
//!   written with as few syscalls as the socket allows, partial writes
//!   resumed on `POLLOUT`.
//!
//! Backpressure tier 1 lives here: once `pending` reaches
//! [`ServeConfig::max_pipeline`], the connection *stops reading* (its
//! fd leaves the interest set) instead of queueing unbounded work — the
//! kernel's TCP window then pushes back on the client. Tier 2 (the
//! global in-flight cap, typed `busy`) is checked per request in
//! [`Conn::submit`].
//!
//! [`ServeConfig::max_pipeline`]: crate::server::ServeConfig::max_pipeline

use crate::protocol::{error_response, FrameBuffer, Payload, Request};
use crate::server::{self, Shared};
use crate::shard::{Job, Work};
use crate::stats::EndpointStats;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on buffered-but-unsent response bytes. A reader this far
/// behind is not coming back; drop the connection instead of buffering
/// toward OOM.
const MAX_OUTBUF: usize = 64 * 1024 * 1024;

/// Token bit layout: `reactor(8) | slot(32) | gen(24)`. The generation
/// makes completions for a closed-and-reused slot detectably stale, so a
/// mid-pipeline disconnect can free its slot immediately without racing
/// the shard's late responses.
pub(crate) fn pack_token(reactor: usize, slot: usize, gen: u32) -> u64 {
    debug_assert!(reactor < 1 << 8 && slot < 1 << 32 && gen < 1 << 24);
    ((reactor as u64) << 56) | ((slot as u64) << 24) | u64::from(gen)
}

/// Inverse of [`pack_token`].
pub(crate) fn unpack_token(token: u64) -> (usize, usize, u32) {
    (
        (token >> 56) as usize,
        ((token >> 24) & 0xFFFF_FFFF) as usize,
        (token & 0xFF_FFFF) as u32,
    )
}

/// Which scoring-family endpoint an in-flight job belongs to, for stats
/// attribution when its completion arrives.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Endpoint {
    Score,
    Explain,
    Compare,
}

impl Endpoint {
    fn stats<'a>(&self, shared: &'a Shared) -> &'a EndpointStats {
        match self {
            Endpoint::Score => &shared.stats.score,
            Endpoint::Explain => &shared.stats.explain,
            Endpoint::Compare => &shared.stats.compare,
        }
    }
}

/// One slot of the ordered response queue.
enum Pending {
    /// Response computed; serialized (in order) by `flush_ready`.
    Ready(Payload),
    /// Waiting on a batcher shard; filled in by [`Conn::complete`].
    InFlight {
        seq: u64,
        t0: Instant,
        endpoint: Endpoint,
    },
}

pub(crate) struct Conn {
    stream: TcpStream,
    /// Routing token carried by every job this connection submits.
    token: u64,
    /// Batcher shard this connection's jobs land on (by connection id).
    shard: usize,
    fb: FrameBuffer,
    /// Reused serialization buffer: responses are framed into it via
    /// [`Payload::frame_into`] and written once, with the hot `score`
    /// path streaming pre-serialized text straight in.
    out: Vec<u8>,
    out_pos: usize,
    pending: VecDeque<Pending>,
    /// Admitted jobs not yet handed to the shard: one pump may parse a
    /// whole pipelined burst, and queueing the burst with one lock + one
    /// condvar notify (instead of one each per request) is where the
    /// shard handoff cost goes. Always drained before `pump` returns —
    /// every admitted job holds an in-flight slot, so it must reach the
    /// shard even if the connection dies mid-pump.
    outbox: Vec<Job>,
    next_seq: u64,
    /// Tier-1 backpressure: pipeline cap reached, fd out of the read set.
    read_paused: bool,
    /// A framing violation was answered; close once `out` drains.
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    pub fn new(
        stream: TcpStream,
        conn_id: u64,
        token: u64,
        shards: usize,
    ) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            token,
            shard: (conn_id as usize) % shards.max(1),
            fb: FrameBuffer::default(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            outbox: Vec::new(),
            next_seq: 0,
            read_paused: false,
            close_after_flush: false,
            dead: false,
        })
    }

    pub fn fd(&self) -> i32 {
        self.stream.as_raw_fd()
    }

    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub fn wants_read(&self) -> bool {
        !self.dead && !self.read_paused && !self.close_after_flush
    }

    pub fn wants_write(&self) -> bool {
        !self.dead && self.out_pos < self.out.len()
    }

    /// Nothing owed to this peer: no queued responses, nothing buffered.
    /// Drain uses this to decide when the connection may be closed.
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty() && self.out_pos >= self.out.len()
    }

    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// The read-side engine: parse any bytes already buffered (a resume
    /// after backpressure must not wait for new readiness), then read
    /// until `WouldBlock`, parsing between reads, then flush whatever
    /// responses became ready.
    pub fn pump(&mut self, shared: &Arc<Shared>) {
        self.parse(shared);
        while self.wants_read() {
            let space = self.fb.space();
            match self.stream.read(space) {
                Ok(0) => {
                    // Peer closed. Unparsed bytes mean a truncated frame.
                    if self.fb.has_partial() {
                        shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
                    }
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.fb.advance(n);
                    self.parse(shared);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        // Hand the whole parsed burst to the shard in one push, even if
        // the peer died mid-pump: admitted jobs hold in-flight slots.
        if !self.outbox.is_empty() {
            shared.shards[self.shard].push_batch(&mut self.outbox);
        }
        self.flush_ready();
        self.try_write();
    }

    /// Decode and dispatch every complete frame currently buffered,
    /// stopping at the pipeline cap (tier-1 backpressure) or a framing
    /// violation.
    fn parse(&mut self, shared: &Arc<Shared>) {
        loop {
            if self.dead || self.close_after_flush {
                return;
            }
            if self.pending.len() >= shared.config.max_pipeline {
                self.read_paused = true;
                break;
            }
            match self.fb.next_frame() {
                Ok(None) => break,
                Ok(Some(range)) => {
                    let end = range.end;
                    let parsed = Request::parse(self.fb.payload(range));
                    self.fb.consume(end);
                    self.handle(parsed, shared);
                }
                Err(message) => {
                    // The stream lost sync: answer best-effort, then die
                    // once the error frame has been written out.
                    shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
                    self.pending
                        .push_back(Pending::Ready(Payload::Value(error_response(
                            "bad_request",
                            &message,
                        ))));
                    self.close_after_flush = true;
                    break;
                }
            }
        }
        self.fb.compact();
    }

    fn handle(&mut self, parsed: Result<Request, String>, shared: &Arc<Shared>) {
        let t0 = Instant::now();
        let request = match parsed {
            Ok(request) => request,
            Err(message) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                self.pending
                    .push_back(Pending::Ready(Payload::Value(error_response(
                        "bad_request",
                        &message,
                    ))));
                return;
            }
        };
        match request {
            Request::Health | Request::Stats | Request::Reload { .. } | Request::Shutdown => {
                // Cheap endpoints answer inline on the reactor thread.
                // Ordering still holds: the response queues *behind* any
                // in-flight scoring work on this connection.
                let response = server::admin_response(request, shared, t0);
                self.pending
                    .push_back(Pending::Ready(Payload::Value(response)));
            }
            Request::Score { name, input } => {
                self.submit(shared, Endpoint::Score, t0, Work::Score { name, input });
            }
            Request::Explain { name, input, top_k } => {
                self.submit(
                    shared,
                    Endpoint::Explain,
                    t0,
                    Work::Explain { name, input, top_k },
                );
            }
            Request::Compare { a, b } => {
                self.submit(shared, Endpoint::Compare, t0, Work::Compare { a, b });
            }
        }
    }

    /// Admit a scoring-family request (tier 2: global in-flight cap ⇒
    /// typed `busy`; drain ⇒ typed `shutting_down`) and hand it to this
    /// connection's batcher shard, or queue the typed refusal.
    fn submit(&mut self, shared: &Arc<Shared>, endpoint: Endpoint, t0: Instant, work: Work) {
        let stats = endpoint.stats(shared);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let refusal = if shared.shutting_down.load(Ordering::SeqCst) {
            Some(server::draining_response())
        } else {
            server::reserve_slot(shared).err()
        };
        if let Some(response) = refusal {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            stats.latency.record(t0.elapsed());
            self.pending
                .push_back(Pending::Ready(Payload::Value(response)));
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending
            .push_back(Pending::InFlight { seq, t0, endpoint });
        // Queued locally; `pump` flushes the burst to the shard in one
        // push_batch once the read loop is done.
        self.outbox.push(Job {
            token: self.token,
            seq,
            work,
        });
    }

    /// A batcher shard finished job `seq`: slot the response into the
    /// ordered queue and account its latency. Serialization, the socket
    /// write, and un-pausing are deferred to [`Conn::after_completions`]
    /// so a wake delivering many completions to one connection pays for
    /// them once.
    pub fn complete(&mut self, seq: u64, response: Payload, shared: &Arc<Shared>) {
        for slot in self.pending.iter_mut() {
            if let Pending::InFlight {
                seq: s,
                t0,
                endpoint,
            } = slot
            {
                if *s == seq {
                    let ok = response.is_ok();
                    let stats = endpoint.stats(shared);
                    if !ok {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    stats.latency.record(t0.elapsed());
                    *slot = Pending::Ready(response);
                    break;
                }
            }
        }
    }

    /// Run once per reactor wake for each connection that received
    /// completions: release everything now at the front of the queue in
    /// one serialize + one write, and resume reading if the pipeline cap
    /// had paused us.
    pub fn after_completions(&mut self, shared: &Arc<Shared>) {
        self.flush_ready();
        self.try_write();
        if self.read_paused && self.pending.len() < shared.config.max_pipeline {
            self.read_paused = false;
            // Bytes may already be buffered past the old cap; pump now —
            // the kernel will not re-announce data we already drained.
            self.pump(shared);
        }
    }

    /// Serialize every response at the front of the queue, in request
    /// order, into the reused output buffer.
    fn flush_ready(&mut self) {
        while let Some(Pending::Ready(_)) = self.pending.front() {
            let Some(Pending::Ready(response)) = self.pending.pop_front() else {
                unreachable!()
            };
            response.frame_into(&mut self.out);
        }
        if self.out.len() - self.out_pos > MAX_OUTBUF {
            self.dead = true;
        }
    }

    /// Write buffered response bytes until the socket pushes back.
    pub fn try_write(&mut self) {
        if self.dead {
            return;
        }
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        // Fully drained: reset in place. The capacity stays for reuse;
        // clamp only a pathological burst so one giant response does not
        // pin megabytes per idle connection.
        self.out.clear();
        self.out_pos = 0;
        if self.out.capacity() > 1024 * 1024 {
            self.out.shrink_to(64 * 1024);
        }
        if self.close_after_flush {
            self.dead = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for (r, s, g) in [(0, 0, 0), (3, 77, 1), (255, 4_000_000_000, 0xFF_FFFF)] {
            let (r2, s2, g2) = unpack_token(pack_token(r, s, g));
            assert_eq!((r, s, g), (r2, s2, g2));
        }
    }
}
