//! A strict JSON parser for protocol requests.
//!
//! The workspace already ships a JSON *writer* ([`clairvoyant::report::Json`])
//! for report output; the scoring daemon also needs to *read* JSON off the
//! wire. This is the matching serde-free parser: it produces the same
//! [`Json`] value type, rejects anything outside RFC 8259 (trailing data,
//! bare values like `1..2`, lone surrogates, unescaped control characters)
//! with an `Err(String)` instead of panicking, and caps nesting depth so a
//! hostile frame of ten thousand `[` cannot overflow the stack.

use clairvoyant::report::Json;
use static_analysis::FeatureVector;
use std::collections::BTreeMap;

/// Maximum nesting depth before a parse is rejected. Protocol requests
/// are at most a few levels deep; 64 leaves generous headroom while
/// keeping recursion bounded.
const MAX_DEPTH: usize = 64;

/// Parse `input` as one JSON document (surrounding whitespace allowed,
/// trailing data rejected).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Parse one request document, streaming a top-level `"features"` object
/// straight into a [`FeatureVector`] instead of materializing a generic
/// tree node per feature — the score hot path runs this once per
/// request, and pre-extracted vectors carry ~100 entries.
///
/// Returns the parsed value (with a captured `features` key removed) and
/// the capture: `None` when no object-shaped `features` key was present,
/// `Some(Ok(fv))` on success, `Some(Err(msg))` when the object was valid
/// JSON but a value was not a number (`msg` matches the slow-path
/// diagnostic). Outer `Err` means the document is not valid JSON, same
/// as [`parse`].
#[allow(clippy::type_complexity)]
pub fn parse_request(input: &str) -> Result<(Json, Option<Result<FeatureVector, String>>), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.peek() != Some(b'{') {
        // Not an object: parse generically so malformed-document errors
        // match `parse` exactly; the caller rejects the shape.
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        return Ok((value, None));
    }
    p.pos += 1;
    let mut map = BTreeMap::new();
    let mut features: Option<Result<FeatureVector, String>> = None;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            if key == "features" && p.peek() == Some(b'{') {
                // Duplicate keys: last writer wins, like `parse`.
                map.remove("features");
                features = Some(p.feature_object()?);
            } else {
                if key == "features" {
                    features = None;
                }
                map.insert(key, p.value(1)?);
            }
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok((Json::Object(map), features))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            // Duplicate keys: last writer wins, like serde_json.
            map.insert(key, self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    /// `{"name":number,...}` parsed directly into a [`FeatureVector`].
    /// Outer `Err` = malformed JSON; inner `Err` = well-formed JSON with
    /// a non-number value (reported like the generic slow path, except
    /// in document order rather than sorted-key order).
    fn feature_object(&mut self) -> Result<Result<FeatureVector, String>, String> {
        self.expect(b'{')?;
        let mut fv = FeatureVector::new();
        let mut bad: Option<String> = None;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Ok(fv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match self.peek() {
                Some(c) if c == b'-' || c.is_ascii_digit() => {
                    let Json::Number(n) = self.number()? else {
                        unreachable!("number() yields Json::Number")
                    };
                    fv.set(key, n);
                }
                _ => {
                    // Validate the value as JSON, then report the same
                    // shape diagnostic the generic path produces.
                    self.value(2)?;
                    if bad.is_none() {
                        bad = Some(format!("feature `{key}` must be a number"));
                    }
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
        Ok(match bad {
            Some(message) => Err(message),
            None => Ok(fv),
        })
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(format!("invalid number at byte {start}"));
        }
        // RFC 8259: the integer part is `0` or a non-zero digit followed
        // by more digits — `01` and `-012.5` are not JSON.
        if self.bytes[digits_from] == b'0' && self.pos - digits_from > 1 {
            return Err(format!("leading zero in number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        // `input` is valid UTF-8 and the accepted bytes are ASCII.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Fast path: copy a whole run of plain bytes at once instead
            // of walking char by char. The run stops only at ASCII bytes
            // (`"`, `\`, controls), and the run starts on a scalar
            // boundary, so the slice is well-formed UTF-8 — one cheap
            // validation per run keeps parsing O(n) overall.
            let run_from = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > run_from {
                let run = std::str::from_utf8(&self.bytes[run_from..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => return Err(format!("invalid escape `\\{}`", c as char)),
                    }
                }
                Some(c) => {
                    debug_assert!(c < 0x20);
                    return Err(format!("unescaped control byte 0x{c:02x} in string"));
                }
            }
        }
    }

    /// `\uXXXX`, including surrogate pairs (`\uD83D\uDE00`); lone
    /// surrogates are rejected.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| "invalid surrogate pair".to_string());
                }
            }
            return Err("lone high surrogate in \\u escape".into());
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err("lone low surrogate in \\u escape".into());
        }
        char::from_u32(hi).ok_or_else(|| "invalid \\u escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or("truncated \\u escape")?;
            self.pos += 1;
            v = v * 16
                + (c as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("non-hex digit `{}` in \\u escape", c as char))?;
        }
        Ok(v)
    }
}

/// Fetch a string field from a parsed object.
pub fn get_str<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Option<&'a str> {
    match obj.get(key) {
        Some(Json::String(s)) => Some(s),
        _ => None,
    }
}

/// Fetch a numeric field from a parsed object.
pub fn get_num(obj: &BTreeMap<String, Json>, key: &str) -> Option<f64> {
    match obj.get(key) {
        Some(Json::Number(n)) => Some(*n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-3.25e2").unwrap(), Json::Number(-325.0));
        // Zero may stand alone before `.`/`e`/end — only `0` followed by
        // more integer digits is rejected.
        assert_eq!(parse("0").unwrap(), Json::Number(0.0));
        assert_eq!(parse("-0.5").unwrap(), Json::Number(-0.5));
        assert_eq!(parse("0e2").unwrap(), Json::Number(0.0));
        assert_eq!(parse("10").unwrap(), Json::Number(10.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".into()));
    }

    #[test]
    fn writer_output_parses_back() {
        let value = Json::object(vec![
            ("name", Json::String("naïve \"x\"\n".into())),
            ("xs", Json::Array(vec![Json::Number(1.5), Json::Null])),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn float_display_round_trip_is_stable() {
        // The serving bit-identity argument leans on this: writing a
        // parsed number back out reproduces the original text.
        for x in [0.1 + 0.2, 1.0 / 3.0, 3.0, -0.0, 1e-300, f64::MAX] {
            let once = Json::Number(x).to_string();
            let twice = parse(&once).unwrap().to_string();
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::String("😀".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01x",
            "01",
            "-012.5",
            "00",
            "--1",
            "1.",
            "1e",
            "\"\u{1}\"",
            "\"\\q\"",
            "1 2",
            "{\"a\":1}extra",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse("{\"a\":1,\"a\":2}").unwrap();
        let Json::Object(map) = v else { panic!() };
        assert_eq!(map.get("a"), Some(&Json::Number(2.0)));
    }
}
