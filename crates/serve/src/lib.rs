//! Clairvoyant scoring service: a long-running daemon over the batched
//! inference engine.
//!
//! The paper's end state (§5.3) is developers *querying* the trained
//! metric on demand. The one-shot CLI retrains or reloads per
//! invocation; this crate keeps a [`CompiledModel`] resident and serves
//! it over TCP with a small length-prefixed JSON protocol
//! ([`protocol`]): `score` (program source or a pre-extracted feature
//! vector in, battery risk report out), `health`, `stats`, `reload`
//! (hot-swap the model from a CLVY file without dropping in-flight
//! work) and `shutdown` (graceful drain).
//!
//! Design highlights (DESIGN.md §11, §13):
//!
//! - **Event-driven reactor** — a small fixed pool of threads drives
//!   every connection with non-blocking sockets and `poll(2)`
//!   ([`poll`], [`reactor`]); idle connections cost zero wakeups, and
//!   per-connection state machines ([`conn`]) decode frames
//!   incrementally and **pipeline** many in-flight requests, answering
//!   in request order from a reused serialization buffer.
//! - **Sharded micro-batching** — admitted requests route to N batcher
//!   shards ([`shard`]) by connection id; each coalesces work into
//!   `evaluate_batch` calls on the pipeline pool, so concurrent clients
//!   get the batch engine's throughput, and every response is
//!   bit-identical to offline scoring regardless of how requests
//!   interleave into batches.
//! - **Tiered backpressure** — a per-connection pipeline cap (stop
//!   reading, let TCP push back), then a global in-flight cap answering
//!   a typed `busy` error immediately instead of queueing unbounded
//!   work.
//! - **Hot reload** — the model sits behind an `Arc` swap; running
//!   batches finish on their snapshot and every score response carries
//!   the fingerprint of the model that produced it.
//!
//! ```no_run
//! use serve::{Client, ModelState, ServeConfig};
//! # fn demo(compiled: clairvoyant::CompiledModel) -> Result<(), String> {
//! let handle = serve::start(ServeConfig::default(), ModelState::from_model(compiled))?;
//! let mut client = Client::connect(handle.addr())?;
//! let health = client.health()?;
//! # Ok(()) }
//! ```
//!
//! [`CompiledModel`]: clairvoyant::CompiledModel

pub mod client;
mod conn;
pub mod json;
pub mod poll;
pub mod protocol;
mod reactor;
pub mod server;
mod shard;
pub mod stats;

pub use client::Client;
pub use server::{start, ModelState, ServeConfig, ServerHandle};
