//! A minimal, offline-safe `poll(2)` shim.
//!
//! The workspace builds without registry access, so there is no `libc`
//! crate to lean on; this module declares the four POSIX calls the
//! reactor needs (`poll`, `pipe`, `read`, `write` — plus `fcntl` and
//! `close` for pipe management) directly via `extern "C"`. The constants
//! are the Linux ABI values, which is the only platform this daemon
//! targets; the types match every mainstream 64-bit Unix.
//!
//! Two pieces live here:
//!
//! - [`poll`]: readiness polling over a borrowed `pollfd` slice. The
//!   reactor rebuilds its interest set per iteration (connection counts
//!   are thousands, not millions, so a rebuild is cheaper than the
//!   bookkeeping an epoll registration protocol would need — and `poll`
//!   exists everywhere, including inside minimal containers).
//! - [`Waker`]: the classic self-pipe. Reactor threads block in `poll`
//!   with an *infinite* timeout — an idle server makes zero wakeups —
//!   so batcher shards and the shutdown path need a file descriptor
//!   they can write one byte into to make a specific reactor's `poll`
//!   return. Both ends are non-blocking: `wake` on an already-signaled
//!   pipe is a no-op (`EAGAIN`), and `drain` reads until empty.

use std::io;

/// `pollfd.events`/`revents` flag: readable.
pub const POLLIN: i16 = 0x001;
/// `pollfd.events`/`revents` flag: writable.
pub const POLLOUT: i16 = 0x004;
/// `revents`-only flag: error condition.
pub const POLLERR: i16 = 0x008;
/// `revents`-only flag: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// `revents`-only flag: fd not open.
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` interest set (binary layout of `struct
/// pollfd` on Linux/BSD/macOS).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any of `flags` fired.
    pub fn has(&self, flags: i16) -> bool {
        self.revents & flags != 0
    }

    /// True for any condition that makes the fd dead or readable-to-EOF
    /// (`POLLERR`/`POLLHUP`/`POLLNVAL`).
    pub fn is_broken(&self) -> bool {
        self.has(POLLERR | POLLHUP | POLLNVAL)
    }
}

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }

    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    pub const O_NONBLOCK: i32 = 0o4000;
}

/// Block until at least one fd in `fds` is ready, `timeout_ms` elapses
/// (`-1` blocks forever), or a signal interrupts. Returns the number of
/// ready entries; `EINTR` is retried internally so callers never see it.
#[cfg(unix)]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
pub fn poll(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the serve reactor requires poll(2); this platform is not supported",
    ))
}

/// A self-pipe that makes a blocked `poll` return: include
/// [`Waker::read_fd`] in the interest set with `POLLIN`, and any thread
/// may call [`Waker::wake`]. Closes both ends on drop.
#[derive(Debug)]
pub struct Waker {
    read_fd: i32,
    write_fd: i32,
}

// The fds are plain integers used through atomic syscalls; wake() from
// any thread racing drain() on the owner is exactly the intended use.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(unix)]
impl Waker {
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
            if flags < 0 || unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    sys::close(fds[0]);
                    sys::close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to poll with `POLLIN`.
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// Make the owning reactor's `poll` return. Idempotent while the
    /// signal is pending: a full pipe means the reactor is already due
    /// to wake, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = [1u8];
        unsafe {
            let _ = sys::write(self.write_fd, byte.as_ptr(), 1);
        }
    }

    /// Clear the pending signal (reads until the pipe is empty).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

#[cfg(unix)]
impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(not(unix))]
impl Waker {
    pub fn new() -> io::Result<Waker> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the serve reactor requires a self-pipe; this platform is not supported",
        ))
    }
    pub fn read_fd(&self) -> i32 {
        -1
    }
    pub fn wake(&self) {}
    pub fn drain(&self) {}
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn waker_makes_poll_return_and_drains() {
        let waker = Waker::new().expect("pipe");
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];
        // Nothing pending: poll times out immediately.
        assert_eq!(poll(&mut fds, 0).expect("poll"), 0);
        waker.wake();
        waker.wake(); // coalesces
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000).expect("poll"), 1);
        assert!(fds[0].has(POLLIN));
        waker.drain();
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).expect("poll"), 0);
    }
}
