//! Wire protocol: length-prefixed JSON frames and typed requests.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! little-endian payload length followed by that many bytes of UTF-8
//! JSON. Length prefixes above [`MAX_FRAME`] are rejected before any
//! allocation happens, so a hostile 4-GiB prefix costs nothing; framing
//! violations (oversized prefix, truncated payload) are unrecoverable —
//! the stream has lost sync — so the server answers with a final error
//! frame where possible and drops the connection. Payload-level problems
//! (invalid UTF-8, malformed JSON, unknown `op`) leave the stream in
//! sync and get a typed error response on a still-usable connection.
//!
//! Requests are objects with an `op` field:
//!
//! ```json
//! {"op":"health"}
//! {"op":"stats"}
//! {"op":"reload","path":"model.clvy"}
//! {"op":"shutdown"}
//! {"op":"score","name":"app","source":"fn main(){}","dialect":"c"}
//! {"op":"score","name":"app","features":{"loc.code":120.0}}
//! {"op":"explain","name":"app","source":"fn main(){}","dialect":"c","top_k":5}
//! {"op":"compare","a":{"name":"x","source":"…"},"b":{"name":"y","features":{…}}}
//! ```
//!
//! Responses always carry `"ok"`: `{"ok":true,...}` on success,
//! `{"ok":false,"error":{"type":...,"message":...}}` on failure. Error
//! types are part of the protocol: `busy` (admission control rejected
//! the request; retry later), `bad_request`, `shutting_down`, and
//! `internal`.

use crate::json;
use clairvoyant::report::Json;
use minilang::Dialect;
use static_analysis::FeatureVector;
use std::io::{ErrorKind, Read, Write};

/// Hard cap on a frame payload. Large enough for any report batch or
/// source submission we expect; small enough that a forged length prefix
/// cannot balloon memory.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Why reading a frame stopped.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The peer disappeared mid-frame, or the frame violates the
    /// protocol (oversized prefix). The stream is out of sync and must
    /// be dropped.
    Desync(String),
    /// An I/O error other than a read timeout.
    Io(std::io::Error),
}

/// Write one frame: length prefix plus payload.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidInput, "frame larger than u32::MAX"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one frame, tolerating read timeouts: on `WouldBlock`/`TimedOut`
/// the `keep_waiting` callback decides whether to keep blocking (server
/// shutdown wants handler threads to notice the flag even while idle).
/// Returning `false` mid-frame counts as a desync, between frames as a
/// clean close.
pub fn read_frame(
    stream: &mut impl Read,
    keep_waiting: &mut impl FnMut() -> bool,
) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    read_exactly(stream, &mut header, true, keep_waiting)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Desync(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exactly(stream, &mut payload, false, keep_waiting)?;
    Ok(payload)
}

/// `read_exact` with timeout polling. `at_boundary` marks whether EOF
/// before the first byte is a clean close (frame boundary) or a
/// truncation (mid-frame).
fn read_exactly(
    stream: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    keep_waiting: &mut impl FnMut() -> bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Desync("connection closed mid-frame".into()))
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !keep_waiting() {
                    return if at_boundary && filled == 0 {
                        Err(FrameError::Closed)
                    } else {
                        Err(FrameError::Desync("shutdown mid-frame".into()))
                    };
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// A parsed protocol request.
#[derive(Debug)]
pub enum Request {
    Health,
    Stats,
    Reload {
        path: Option<String>,
    },
    Shutdown,
    Score {
        name: String,
        input: ScoreInput,
    },
    /// Like `score`, but the response carries the full explanation:
    /// per-model exact attributions, and (for source submissions)
    /// function hotspots capped at `top_k`.
    Explain {
        name: String,
        input: ScoreInput,
        top_k: usize,
    },
    /// Explain two candidates in one batch and return the
    /// attribution-backed comparison.
    Compare {
        a: (String, ScoreInput),
        b: (String, ScoreInput),
    },
}

/// What a scoring-family request submits: program source to run through
/// the testbed, or a pre-extracted feature vector.
#[derive(Debug)]
pub enum ScoreInput {
    Source { text: String, dialect: Dialect },
    Features(FeatureVector),
}

/// Default hotspot count for `explain` requests without `top_k`.
pub const DEFAULT_TOP_K: usize = 5;

/// Parse the `source`/`features`/`dialect` triple shared by `score`,
/// `explain`, and each side of `compare`. `what` names the request in
/// error messages.
fn parse_score_input(
    obj: &std::collections::BTreeMap<String, Json>,
    what: &str,
) -> Result<ScoreInput, String> {
    match (obj.get("source"), obj.get("features")) {
        (Some(Json::String(text)), None) => Ok(ScoreInput::Source {
            text: text.clone(),
            dialect: parse_dialect(json::get_str(obj, "dialect"))?,
        }),
        (None, Some(Json::Object(map))) => {
            let mut fv = FeatureVector::new();
            for (k, v) in map {
                match v {
                    Json::Number(n) => fv.set(k.clone(), *n),
                    _ => return Err(format!("feature `{k}` must be a number")),
                }
            }
            Ok(ScoreInput::Features(fv))
        }
        (Some(_), None) => Err("`source` must be a string".into()),
        (None, Some(_)) => Err("`features` must be an object".into()),
        (Some(_), Some(_)) => Err("give either `source` or `features`, not both".into()),
        (None, None) => Err(format!("{what} needs `source` or `features`")),
    }
}

impl Request {
    /// Parse a request payload. Errors are client-facing `bad_request`
    /// messages.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let value = json::parse(text).map_err(|e| format!("payload is not valid JSON: {e}"))?;
        let Json::Object(obj) = value else {
            return Err("request must be a JSON object".into());
        };
        match json::get_str(&obj, "op") {
            Some("health") => Ok(Request::Health),
            Some("stats") => Ok(Request::Stats),
            Some("shutdown") => Ok(Request::Shutdown),
            Some("reload") => Ok(Request::Reload {
                path: json::get_str(&obj, "path").map(str::to_string),
            }),
            Some("score") => {
                let name = json::get_str(&obj, "name").unwrap_or("app").to_string();
                let input = parse_score_input(&obj, "score")?;
                Ok(Request::Score { name, input })
            }
            Some("explain") => {
                let name = json::get_str(&obj, "name").unwrap_or("app").to_string();
                let input = parse_score_input(&obj, "explain")?;
                let top_k = match obj.get("top_k") {
                    None => DEFAULT_TOP_K,
                    Some(Json::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
                    Some(_) => return Err("`top_k` must be a non-negative integer".into()),
                };
                Ok(Request::Explain { name, input, top_k })
            }
            Some("compare") => {
                let side = |key: &str| -> Result<(String, ScoreInput), String> {
                    match obj.get(key) {
                        Some(Json::Object(sub)) => {
                            let name = json::get_str(sub, "name").unwrap_or(key).to_string();
                            Ok((name, parse_score_input(sub, key)?))
                        }
                        Some(_) => Err(format!("`{key}` must be an object")),
                        None => Err(format!("compare needs an `{key}` object")),
                    }
                };
                Ok(Request::Compare {
                    a: side("a")?,
                    b: side("b")?,
                })
            }
            Some(other) => Err(format!("unknown op `{other}`")),
            None => Err("request has no `op` field".into()),
        }
    }
}

fn parse_dialect(name: Option<&str>) -> Result<Dialect, String> {
    match name.unwrap_or("c") {
        "c" => Ok(Dialect::C),
        "cpp" | "c++" | "cc" => Ok(Dialect::Cpp),
        "python" | "py" => Ok(Dialect::Python),
        "java" => Ok(Dialect::Java),
        other => Err(format!("unknown dialect `{other}`")),
    }
}

/// Build a typed error response.
pub fn error_response(kind: &str, message: &str) -> Json {
    Json::object(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::object(vec![
                ("type", Json::String(kind.to_string())),
                ("message", Json::String(message.to_string())),
            ]),
        ),
    ])
}

/// Build a success response from `op`-specific fields.
pub fn ok_response(op: &str, mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::String(op.to_string())),
    ];
    pairs.append(&mut fields);
    Json::object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"health\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut wait = || true;
        assert_eq!(
            read_frame(&mut cursor, &mut wait).unwrap(),
            b"{\"op\":\"health\"}"
        );
        assert_eq!(read_frame(&mut cursor, &mut wait).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, &mut wait),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_is_desync_without_allocation() {
        let mut buf = Vec::from(u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"xx");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, &mut || true),
            Err(FrameError::Desync(_))
        ));
    }

    #[test]
    fn truncated_payload_is_desync() {
        let mut buf = Vec::from(10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, &mut || true),
            Err(FrameError::Desync(_))
        ));
    }

    #[test]
    fn requests_parse() {
        assert!(matches!(
            Request::parse(b"{\"op\":\"health\"}"),
            Ok(Request::Health)
        ));
        assert!(matches!(
            Request::parse(b"{\"op\":\"reload\"}"),
            Ok(Request::Reload { path: None })
        ));
        let r = Request::parse(b"{\"op\":\"score\",\"name\":\"x\",\"features\":{\"a\":1}}");
        match r {
            Ok(Request::Score { name, input }) => {
                assert_eq!(name, "x");
                match input {
                    ScoreInput::Features(fv) => assert_eq!(fv.get("a"), Some(1.0)),
                    _ => panic!("expected features"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn explain_and_compare_parse() {
        let r = Request::parse(b"{\"op\":\"explain\",\"name\":\"x\",\"features\":{\"a\":1}}");
        match r {
            Ok(Request::Explain { name, top_k, .. }) => {
                assert_eq!(name, "x");
                assert_eq!(top_k, DEFAULT_TOP_K);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let r = Request::parse(b"{\"op\":\"explain\",\"source\":\"s\",\"top_k\":3}");
        assert!(matches!(r, Ok(Request::Explain { top_k: 3, .. })));
        let r = Request::parse(
            b"{\"op\":\"compare\",\"a\":{\"name\":\"x\",\"features\":{\"f\":1}},\
              \"b\":{\"name\":\"y\",\"source\":\"s\",\"dialect\":\"py\"}}",
        );
        match r {
            Ok(Request::Compare { a, b }) => {
                assert_eq!(a.0, "x");
                assert!(matches!(a.1, ScoreInput::Features(_)));
                assert_eq!(b.0, "y");
                assert!(matches!(
                    b.1,
                    ScoreInput::Source {
                        dialect: Dialect::Python,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Sub-objects default their side's key as the name.
        let r = Request::parse(
            b"{\"op\":\"compare\",\"a\":{\"source\":\"s\"},\"b\":{\"source\":\"s\"}}",
        );
        match r {
            Ok(Request::Compare { a, b }) => {
                assert_eq!(a.0, "a");
                assert_eq!(b.0, "b");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        for bad in [
            &b"\xff\xfe"[..],
            b"[]",
            b"{\"op\":\"frobnicate\"}",
            b"{}",
            b"{\"op\":\"score\"}",
            b"{\"op\":\"score\",\"source\":\"x\",\"features\":{}}",
            b"{\"op\":\"score\",\"source\":\"x\",\"dialect\":\"cobol\"}",
            b"{\"op\":\"score\",\"features\":{\"a\":\"one\"}}",
            b"{\"op\":\"explain\"}",
            b"{\"op\":\"explain\",\"source\":\"x\",\"top_k\":-1}",
            b"{\"op\":\"explain\",\"source\":\"x\",\"top_k\":1.5}",
            b"{\"op\":\"compare\"}",
            b"{\"op\":\"compare\",\"a\":{\"source\":\"x\"}}",
            b"{\"op\":\"compare\",\"a\":\"x\",\"b\":\"y\"}",
            b"{\"op\":\"compare\",\"a\":{\"source\":\"x\"},\"b\":{}}",
        ] {
            assert!(
                Request::parse(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }
}
