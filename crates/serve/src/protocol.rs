//! Wire protocol: length-prefixed JSON frames and typed requests.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! little-endian payload length followed by that many bytes of UTF-8
//! JSON. Length prefixes above [`MAX_FRAME`] are rejected before any
//! allocation happens, so a hostile 4-GiB prefix costs nothing; framing
//! violations (oversized prefix, truncated payload) are unrecoverable —
//! the stream has lost sync — so the server answers with a final error
//! frame where possible and drops the connection. Payload-level problems
//! (invalid UTF-8, malformed JSON, unknown `op`) leave the stream in
//! sync and get a typed error response on a still-usable connection.
//!
//! Requests are objects with an `op` field:
//!
//! ```json
//! {"op":"health"}
//! {"op":"stats"}
//! {"op":"reload","path":"model.clvy"}
//! {"op":"shutdown"}
//! {"op":"score","name":"app","source":"fn main(){}","dialect":"c"}
//! {"op":"score","name":"app","features":{"loc.code":120.0}}
//! {"op":"explain","name":"app","source":"fn main(){}","dialect":"c","top_k":5}
//! {"op":"compare","a":{"name":"x","source":"…"},"b":{"name":"y","features":{…}}}
//! ```
//!
//! Responses always carry `"ok"`: `{"ok":true,...}` on success,
//! `{"ok":false,"error":{"type":...,"message":...}}` on failure. Error
//! types are part of the protocol: `busy` (admission control rejected
//! the request; retry later), `bad_request`, `shutting_down`, and
//! `internal`.

use crate::json;
use clairvoyant::report::Json;
use minilang::Dialect;
use static_analysis::FeatureVector;
use std::io::{ErrorKind, Read, Write};

/// Hard cap on a frame payload. Large enough for any report batch or
/// source submission we expect; small enough that a forged length prefix
/// cannot balloon memory.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Why reading a frame stopped.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The peer disappeared mid-frame, or the frame violates the
    /// protocol (oversized prefix). The stream is out of sync and must
    /// be dropped.
    Desync(String),
    /// An I/O error other than a read timeout.
    Io(std::io::Error),
}

/// Write one frame: length prefix plus payload.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidInput, "frame larger than u32::MAX"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Serialize `value` as one frame appended to `out` — the zero-copy
/// response path. Four placeholder bytes are reserved, the JSON renders
/// *directly into the buffer* through a `fmt::Write` adapter (no
/// intermediate `String`), and the length prefix is patched afterwards.
/// Callers keep one `out` buffer per connection and reuse it across
/// responses, so a busy pipelined connection serializes without
/// allocating once the buffer has warmed up.
pub fn frame_into(out: &mut Vec<u8>, value: &Json) {
    use std::fmt::Write as _;
    struct VecWriter<'a>(&'a mut Vec<u8>);
    impl std::fmt::Write for VecWriter<'_> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.0.extend_from_slice(s.as_bytes());
            Ok(())
        }
    }
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    write!(VecWriter(out), "{value}").expect("writing into a Vec cannot fail");
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// A computed response: either a structured [`Json`] value, or JSON text
/// a streaming fast path already serialized (the hot `score` endpoint
/// renders reports straight into a `String`, skipping the tree-building
/// a [`Json`] value costs per response).
pub enum Payload {
    Value(Json),
    Raw(String),
}

impl Payload {
    /// True for `{"ok":true,...}` responses. `Raw` payloads exist only
    /// on success fast paths — error responses always carry the typed
    /// [`Json`] value — so they count as ok by construction.
    pub fn is_ok(&self) -> bool {
        match self {
            Payload::Value(v) => {
                matches!(v, Json::Object(o) if o.get("ok") == Some(&Json::Bool(true)))
            }
            Payload::Raw(_) => true,
        }
    }

    /// Frame this response (length prefix + body) into `out`.
    pub fn frame_into(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Value(value) => frame_into(out, value),
            Payload::Raw(text) => {
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text.as_bytes());
            }
        }
    }
}

/// Incremental frame accumulator for non-blocking reads: bytes land in a
/// reused buffer via [`FrameBuffer::space`]/[`FrameBuffer::advance`],
/// and complete frames are *borrowed* out of it ([`FrameBuffer::payload`])
/// instead of copied into per-frame allocations. The reactor's
/// connection state machine drives one of these per connection.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` holding received data.
    filled: usize,
    /// Start of the first unconsumed byte (everything before it has been
    /// parsed and will be reclaimed by `compact`).
    cursor: usize,
}

/// How much writable tail `space()` guarantees per call.
const READ_CHUNK: usize = 16 * 1024;

impl FrameBuffer {
    /// Writable tail to read into; always at least [`READ_CHUNK`] bytes.
    pub fn space(&mut self) -> &mut [u8] {
        if self.buf.len() - self.filled < READ_CHUNK {
            self.buf.resize(self.filled + READ_CHUNK, 0);
        }
        &mut self.buf[self.filled..]
    }

    /// Record `n` bytes read into the tail returned by [`space`].
    ///
    /// [`space`]: FrameBuffer::space
    pub fn advance(&mut self, n: usize) {
        debug_assert!(self.filled + n <= self.buf.len());
        self.filled += n;
    }

    /// The next complete frame's payload range, if one is buffered.
    /// `Err` means the stream is out of sync (length prefix above
    /// [`MAX_FRAME`]) and the connection must die.
    pub fn next_frame(&self) -> Result<Option<std::ops::Range<usize>>, String> {
        let avail = self.filled - self.cursor;
        if avail < 4 {
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[self.cursor..self.cursor + 4]
            .try_into()
            .expect("4-byte slice");
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME {
            return Err(format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte limit"
            ));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.cursor + 4;
        Ok(Some(start..start + len))
    }

    /// Borrow a payload range returned by [`next_frame`].
    ///
    /// [`next_frame`]: FrameBuffer::next_frame
    pub fn payload(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    /// Mark the frame ending at `payload_end` consumed.
    pub fn consume(&mut self, payload_end: usize) {
        debug_assert!(payload_end <= self.filled);
        self.cursor = payload_end;
    }

    /// Reclaim consumed bytes by shifting the unparsed tail to the
    /// front. Called once per read event, after the parse loop — a
    /// single `copy_within` instead of per-frame allocation.
    pub fn compact(&mut self) {
        if self.cursor == 0 {
            return;
        }
        self.buf.copy_within(self.cursor..self.filled, 0);
        self.filled -= self.cursor;
        self.cursor = 0;
        // A one-off burst should not pin a huge buffer forever.
        if self.buf.len() > 4 * READ_CHUNK && self.filled < READ_CHUNK {
            self.buf.truncate(self.filled.max(READ_CHUNK));
            self.buf.shrink_to(4 * READ_CHUNK);
        }
    }

    /// True when bytes of an incomplete frame are buffered — EOF here is
    /// a mid-frame truncation, not a clean close.
    pub fn has_partial(&self) -> bool {
        self.filled > self.cursor
    }
}

/// Read one frame, tolerating read timeouts: on `WouldBlock`/`TimedOut`
/// the `keep_waiting` callback decides whether to keep blocking (server
/// shutdown wants handler threads to notice the flag even while idle).
/// Returning `false` mid-frame counts as a desync, between frames as a
/// clean close.
pub fn read_frame(
    stream: &mut impl Read,
    keep_waiting: &mut impl FnMut() -> bool,
) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    read_exactly(stream, &mut header, true, keep_waiting)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Desync(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exactly(stream, &mut payload, false, keep_waiting)?;
    Ok(payload)
}

/// Like [`read_frame`], but lands the payload in a caller-owned reused
/// buffer (resized, not reallocated, once warm) and returns its length.
/// The pipelined client reads hundreds of responses per connection; this
/// keeps that loop allocation-free.
pub fn read_frame_into(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    keep_waiting: &mut impl FnMut() -> bool,
) -> Result<usize, FrameError> {
    let mut header = [0u8; 4];
    read_exactly(stream, &mut header, true, keep_waiting)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Desync(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    if buf.len() < len {
        buf.resize(len, 0);
    }
    read_exactly(stream, &mut buf[..len], false, keep_waiting)?;
    Ok(len)
}

/// `read_exact` with timeout polling. `at_boundary` marks whether EOF
/// before the first byte is a clean close (frame boundary) or a
/// truncation (mid-frame).
fn read_exactly(
    stream: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    keep_waiting: &mut impl FnMut() -> bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Desync("connection closed mid-frame".into()))
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !keep_waiting() {
                    return if at_boundary && filled == 0 {
                        Err(FrameError::Closed)
                    } else {
                        Err(FrameError::Desync("shutdown mid-frame".into()))
                    };
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// A parsed protocol request.
#[derive(Debug)]
pub enum Request {
    Health,
    Stats,
    Reload {
        path: Option<String>,
    },
    Shutdown,
    Score {
        name: String,
        input: ScoreInput,
    },
    /// Like `score`, but the response carries the full explanation:
    /// per-model exact attributions, and (for source submissions)
    /// function hotspots capped at `top_k`.
    Explain {
        name: String,
        input: ScoreInput,
        top_k: usize,
    },
    /// Explain two candidates in one batch and return the
    /// attribution-backed comparison.
    Compare {
        a: (String, ScoreInput),
        b: (String, ScoreInput),
    },
}

/// What a scoring-family request submits: program source to run through
/// the testbed, or a pre-extracted feature vector.
#[derive(Debug)]
pub enum ScoreInput {
    Source { text: String, dialect: Dialect },
    Features(FeatureVector),
}

/// Default hotspot count for `explain` requests without `top_k`.
pub const DEFAULT_TOP_K: usize = 5;

/// Parse the `source`/`features`/`dialect` triple shared by `score`,
/// `explain`, and each side of `compare`. `what` names the request in
/// error messages.
fn parse_score_input(
    obj: &mut std::collections::BTreeMap<String, Json>,
    captured: Option<Result<FeatureVector, String>>,
    what: &str,
) -> Result<ScoreInput, String> {
    // `remove` moves the already-parsed strings and feature names out of
    // the document instead of cloning them — the score hot path runs
    // this once per request. A top-level features object arrives already
    // streamed into a vector (`captured`, from `json::parse_request`);
    // compare sides and non-object `features` values take the generic
    // path here. `feats`: absent / Ok(vector) / Err(shape diagnostic).
    let feats: Option<Result<FeatureVector, String>> = match captured {
        Some(result) => Some(result),
        None => match obj.remove("features") {
            None => None,
            Some(Json::Object(map)) => Some((|| {
                let mut fv = FeatureVector::new();
                for (k, v) in map {
                    match v {
                        Json::Number(n) => fv.set(k, n),
                        _ => return Err(format!("feature `{k}` must be a number")),
                    }
                }
                Ok(fv)
            })()),
            Some(_) => Some(Err("`features` must be an object".into())),
        },
    };
    match (obj.remove("source"), feats) {
        (Some(Json::String(text)), None) => Ok(ScoreInput::Source {
            text,
            dialect: parse_dialect(json::get_str(obj, "dialect"))?,
        }),
        (None, Some(Ok(fv))) => Ok(ScoreInput::Features(fv)),
        (None, Some(Err(message))) => Err(message),
        (Some(_), None) => Err("`source` must be a string".into()),
        (Some(_), Some(_)) => Err("give either `source` or `features`, not both".into()),
        (None, None) => Err(format!("{what} needs `source` or `features`")),
    }
}

impl Request {
    /// Parse a request payload. Errors are client-facing `bad_request`
    /// messages.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let (value, captured) =
            json::parse_request(text).map_err(|e| format!("payload is not valid JSON: {e}"))?;
        let Json::Object(mut obj) = value else {
            return Err("request must be a JSON object".into());
        };
        let Some(op) = json::get_str(&obj, "op").map(str::to_string) else {
            return Err("request has no `op` field".into());
        };
        match op.as_str() {
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "reload" => Ok(Request::Reload {
                path: json::get_str(&obj, "path").map(str::to_string),
            }),
            "score" => {
                let name = json::get_str(&obj, "name").unwrap_or("app").to_string();
                let input = parse_score_input(&mut obj, captured, "score")?;
                Ok(Request::Score { name, input })
            }
            "explain" => {
                let name = json::get_str(&obj, "name").unwrap_or("app").to_string();
                let input = parse_score_input(&mut obj, captured, "explain")?;
                let top_k = match obj.get("top_k") {
                    None => DEFAULT_TOP_K,
                    Some(Json::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
                    Some(_) => return Err("`top_k` must be a non-negative integer".into()),
                };
                Ok(Request::Explain { name, input, top_k })
            }
            "compare" => {
                let mut side = |key: &str| -> Result<(String, ScoreInput), String> {
                    match obj.remove(key) {
                        Some(Json::Object(mut sub)) => {
                            let name = json::get_str(&sub, "name").unwrap_or(key).to_string();
                            Ok((name, parse_score_input(&mut sub, None, key)?))
                        }
                        Some(_) => Err(format!("`{key}` must be an object")),
                        None => Err(format!("compare needs an `{key}` object")),
                    }
                };
                Ok(Request::Compare {
                    a: side("a")?,
                    b: side("b")?,
                })
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

fn parse_dialect(name: Option<&str>) -> Result<Dialect, String> {
    match name.unwrap_or("c") {
        "c" => Ok(Dialect::C),
        "cpp" | "c++" | "cc" => Ok(Dialect::Cpp),
        "python" | "py" => Ok(Dialect::Python),
        "java" => Ok(Dialect::Java),
        other => Err(format!("unknown dialect `{other}`")),
    }
}

/// Build a typed error response.
pub fn error_response(kind: &str, message: &str) -> Json {
    Json::object(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::object(vec![
                ("type", Json::String(kind.to_string())),
                ("message", Json::String(message.to_string())),
            ]),
        ),
    ])
}

/// Build a success response from `op`-specific fields.
pub fn ok_response(op: &str, mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::String(op.to_string())),
    ];
    pairs.append(&mut fields);
    Json::object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"health\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let mut wait = || true;
        assert_eq!(
            read_frame(&mut cursor, &mut wait).unwrap(),
            b"{\"op\":\"health\"}"
        );
        assert_eq!(read_frame(&mut cursor, &mut wait).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, &mut wait),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_is_desync_without_allocation() {
        let mut buf = Vec::from(u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"xx");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, &mut || true),
            Err(FrameError::Desync(_))
        ));
    }

    #[test]
    fn truncated_payload_is_desync() {
        let mut buf = Vec::from(10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, &mut || true),
            Err(FrameError::Desync(_))
        ));
    }

    #[test]
    fn frame_buffer_decodes_incrementally_and_zero_copy() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"op\":\"health\"}").unwrap();
        write_frame(&mut wire, b"second").unwrap();

        let mut fb = FrameBuffer::default();
        // Feed the bytes one at a time: no frame until the last byte of
        // the first payload lands.
        let mut seen = Vec::new();
        for (i, byte) in wire.iter().enumerate() {
            fb.space()[0] = *byte;
            fb.advance(1);
            while let Some(range) = fb.next_frame().unwrap() {
                seen.push(fb.payload(range.clone()).to_vec());
                fb.consume(range.end);
            }
            if i + 1 < 4 + 15 {
                assert!(seen.is_empty(), "frame surfaced too early at byte {i}");
            }
        }
        fb.compact();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], b"{\"op\":\"health\"}");
        assert_eq!(seen[1], b"second");
        assert!(!fb.has_partial());
    }

    #[test]
    fn frame_buffer_rejects_oversized_prefix() {
        let mut fb = FrameBuffer::default();
        let header = (MAX_FRAME as u32 + 1).to_le_bytes();
        fb.space()[..4].copy_from_slice(&header);
        fb.advance(4);
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn frame_into_matches_write_frame() {
        let value = ok_response("health", vec![("status", Json::String("serving".into()))]);
        let mut via_write = Vec::new();
        write_frame(&mut via_write, value.to_string().as_bytes()).unwrap();
        let mut via_into = Vec::new();
        frame_into(&mut via_into, &value);
        assert_eq!(via_write, via_into);
        // Appending reuses the same buffer.
        frame_into(&mut via_into, &value);
        assert_eq!(via_into.len(), 2 * via_write.len());
    }

    #[test]
    fn read_frame_into_reuses_the_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"a longer first frame").unwrap();
        write_frame(&mut wire, b"short").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        let mut wait = || true;
        let n = read_frame_into(&mut cursor, &mut buf, &mut wait).unwrap();
        assert_eq!(&buf[..n], b"a longer first frame");
        let cap = buf.capacity();
        let n = read_frame_into(&mut cursor, &mut buf, &mut wait).unwrap();
        assert_eq!(&buf[..n], b"short");
        assert_eq!(buf.capacity(), cap, "second read must not reallocate");
    }

    #[test]
    fn requests_parse() {
        assert!(matches!(
            Request::parse(b"{\"op\":\"health\"}"),
            Ok(Request::Health)
        ));
        assert!(matches!(
            Request::parse(b"{\"op\":\"reload\"}"),
            Ok(Request::Reload { path: None })
        ));
        let r = Request::parse(b"{\"op\":\"score\",\"name\":\"x\",\"features\":{\"a\":1}}");
        match r {
            Ok(Request::Score { name, input }) => {
                assert_eq!(name, "x");
                match input {
                    ScoreInput::Features(fv) => assert_eq!(fv.get("a"), Some(1.0)),
                    _ => panic!("expected features"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn explain_and_compare_parse() {
        let r = Request::parse(b"{\"op\":\"explain\",\"name\":\"x\",\"features\":{\"a\":1}}");
        match r {
            Ok(Request::Explain { name, top_k, .. }) => {
                assert_eq!(name, "x");
                assert_eq!(top_k, DEFAULT_TOP_K);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let r = Request::parse(b"{\"op\":\"explain\",\"source\":\"s\",\"top_k\":3}");
        assert!(matches!(r, Ok(Request::Explain { top_k: 3, .. })));
        let r = Request::parse(
            b"{\"op\":\"compare\",\"a\":{\"name\":\"x\",\"features\":{\"f\":1}},\
              \"b\":{\"name\":\"y\",\"source\":\"s\",\"dialect\":\"py\"}}",
        );
        match r {
            Ok(Request::Compare { a, b }) => {
                assert_eq!(a.0, "x");
                assert!(matches!(a.1, ScoreInput::Features(_)));
                assert_eq!(b.0, "y");
                assert!(matches!(
                    b.1,
                    ScoreInput::Source {
                        dialect: Dialect::Python,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Sub-objects default their side's key as the name.
        let r = Request::parse(
            b"{\"op\":\"compare\",\"a\":{\"source\":\"s\"},\"b\":{\"source\":\"s\"}}",
        );
        match r {
            Ok(Request::Compare { a, b }) => {
                assert_eq!(a.0, "a");
                assert_eq!(b.0, "b");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        for bad in [
            &b"\xff\xfe"[..],
            b"[]",
            b"{\"op\":\"frobnicate\"}",
            b"{}",
            b"{\"op\":\"score\"}",
            b"{\"op\":\"score\",\"source\":\"x\",\"features\":{}}",
            b"{\"op\":\"score\",\"source\":\"x\",\"dialect\":\"cobol\"}",
            b"{\"op\":\"score\",\"features\":{\"a\":\"one\"}}",
            b"{\"op\":\"explain\"}",
            b"{\"op\":\"explain\",\"source\":\"x\",\"top_k\":-1}",
            b"{\"op\":\"explain\",\"source\":\"x\",\"top_k\":1.5}",
            b"{\"op\":\"compare\"}",
            b"{\"op\":\"compare\",\"a\":{\"source\":\"x\"}}",
            b"{\"op\":\"compare\",\"a\":\"x\",\"b\":\"y\"}",
            b"{\"op\":\"compare\",\"a\":{\"source\":\"x\"},\"b\":{}}",
        ] {
            assert!(
                Request::parse(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }
}
