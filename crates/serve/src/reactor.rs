//! Reactor threads: the event-driven I/O half of the daemon.
//!
//! ```text
//!              ┌ reactor 0 ─ poll(listener, waker, conns…) ┐
//!  accept ───▶ │  conn conn conn …   (state machines)      │──▶ shard 0
//!              ├ reactor 1 ─ poll(waker, conns…)           ├──▶ shard 1
//!              │  conn conn conn …                         │──▶   …
//!              └ …                                         ┘
//!                   ▲ completions (mailbox + self-pipe wake)
//! ```
//!
//! Each reactor owns a disjoint set of connections for their whole life
//! (accepted connections are routed by `conn_id % reactors`), so no
//! lock guards per-connection state — the only cross-thread traffic is
//! two small mailboxes (`inbox` for handed-off accepts, `completions`
//! from batcher shards), each drained once per loop.
//!
//! The loop is level-triggered `poll(2)` over a rebuilt interest set:
//! the waker pipe, the listener (reactor 0 only), and every connection
//! that currently wants readability (not pipeline-paused) and/or
//! writability (buffered response bytes). An **idle server blocks with
//! an infinite timeout** — zero wakeups, zero CPU — which is the fix
//! for the old per-connection read-timeout spin; `reactor_wakeups`
//! counts loop iterations so the regression test can pin that down.
//!
//! Connection slots are generation-stamped: when a connection dies
//! mid-pipeline its slot frees immediately, and completions still in
//! flight for it are dropped by a token mismatch instead of landing on
//! whoever reuses the slot.
//!
//! Graceful drain: once `shutting_down` is set the listener closes, new
//! scoring work is refused with typed errors (in `Conn::submit`), and
//! the reactor keeps polling — with a `poll_tick` timeout now — until
//! every connection is quiescent and the global in-flight count is
//! zero, then holds connections open one `poll_tick` longer so clients
//! mid-conversation get typed `shutting_down` refusals instead of
//! connection resets.

use crate::conn::{pack_token, unpack_token, Conn};
use crate::poll::{poll, PollFd, Waker, POLLIN, POLLOUT};
use crate::protocol::Payload;
use crate::server::Shared;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A finished job on its way back from a batcher shard.
pub(crate) struct Completion {
    pub token: u64,
    pub seq: u64,
    pub response: Payload,
}

/// The cross-thread face of one reactor: mailboxes plus the self-pipe
/// that makes its `poll` return.
pub(crate) struct ReactorShared {
    /// Connections accepted by reactor 0 but owned by this reactor.
    pub inbox: Mutex<Vec<(TcpStream, u64)>>,
    /// Finished jobs from the batcher shards.
    pub completions: Mutex<Vec<Completion>>,
    pub waker: Waker,
}

impl ReactorShared {
    pub fn new() -> std::io::Result<ReactorShared> {
        Ok(ReactorShared {
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }
}

/// What each pollfd entry refers to, index-aligned with the fd slice.
enum FdKind {
    Waker,
    Listener,
    Conn(usize),
}

/// Mask for the 24-bit generation field of a connection token.
const GEN_MASK: u32 = 0xFF_FFFF;

pub(crate) fn reactor_loop(shared: &Arc<Shared>, id: usize, mut listener: Option<TcpListener>) {
    let me = &shared.reactors[id];
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut gens: Vec<u32> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut kinds: Vec<FdKind> = Vec::new();
    // Slots that received completions this wake (reused across loops).
    let mut touched: Vec<usize> = Vec::new();
    // Set once the drain has reached quiescence; expiry ends the loop.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let draining = shared.shutting_down.load(Ordering::SeqCst);
        if draining {
            // Stop accepting: dropping the listener closes the socket,
            // so late clients get connection-refused, not a hang.
            listener = None;
        }

        fds.clear();
        kinds.clear();
        fds.push(PollFd::new(me.waker.read_fd(), POLLIN));
        kinds.push(FdKind::Waker);
        if let Some(l) = &listener {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
            kinds.push(FdKind::Listener);
        }
        for (slot, conn) in conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(conn.fd(), events));
                kinds.push(FdKind::Conn(slot));
            }
        }

        // Idle and not draining: block forever — wakeups come only from
        // real readiness or the self-pipe. Draining: tick so the grace
        // deadline is observed.
        let timeout_ms = if draining {
            shared
                .config
                .poll_tick
                .as_millis()
                .clamp(1, i32::MAX as u128) as i32
        } else {
            -1
        };
        let _ = poll(&mut fds, timeout_ms);
        shared.stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);

        for i in 0..fds.len() {
            let pfd = fds[i];
            match kinds[i] {
                FdKind::Waker => {
                    if pfd.has(POLLIN) {
                        me.waker.drain();
                    }
                }
                FdKind::Listener => {
                    if pfd.has(POLLIN) || pfd.is_broken() {
                        if let Some(l) = &listener {
                            accept_burst(shared, id, l, &mut conns, &mut gens, &mut free);
                        }
                    }
                }
                FdKind::Conn(slot) => {
                    let Some(conn) = conns[slot].as_mut() else {
                        continue;
                    };
                    if pfd.has(POLLIN) {
                        conn.pump(shared);
                    } else if pfd.is_broken() {
                        // No read interest (paused or closing) and the
                        // peer is gone: nothing left to deliver.
                        conn.kill();
                    }
                    if pfd.has(POLLOUT) {
                        conn.try_write();
                    }
                }
            }
        }

        // Adopt connections handed over by the accepting reactor.
        let adopted: Vec<(TcpStream, u64)> = {
            let mut inbox = me.inbox.lock().unwrap();
            std::mem::take(&mut *inbox)
        };
        for (stream, conn_id) in adopted {
            if draining {
                drop(stream);
                continue;
            }
            register(
                shared, id, stream, conn_id, &mut conns, &mut gens, &mut free,
            );
        }

        // Apply completions from the batcher shards. A stale generation
        // means the connection died mid-pipeline and the slot was
        // recycled: the response is dropped on the floor, which is the
        // whole point of the stamp.
        let completed: Vec<Completion> = {
            let mut mailbox = me.completions.lock().unwrap();
            std::mem::take(&mut *mailbox)
        };
        touched.clear();
        for completion in completed {
            let (reactor, slot, gen) = unpack_token(completion.token);
            debug_assert_eq!(reactor, id, "completion routed to the wrong reactor");
            if slot < conns.len() && gens[slot] == gen {
                if let Some(conn) = conns[slot].as_mut() {
                    conn.complete(completion.seq, completion.response, shared);
                    touched.push(slot);
                }
            }
        }
        // Serialize + write once per connection this wake, however many
        // completions just landed on it.
        touched.sort_unstable();
        touched.dedup();
        for &slot in &touched {
            if let Some(conn) = conns[slot].as_mut() {
                conn.after_completions(shared);
            }
        }

        // Reap dead connections: bump the generation so any in-flight
        // completion for the old occupant goes stale, then free the slot.
        for slot in 0..conns.len() {
            if conns[slot].as_ref().is_some_and(Conn::is_dead) {
                conns[slot] = None;
                gens[slot] = gens[slot].wrapping_add(1) & GEN_MASK;
                free.push(slot);
            }
        }

        if draining {
            let quiet = conns.iter().flatten().all(Conn::quiescent)
                && shared.inflight.load(Ordering::SeqCst) == 0;
            if !quiet {
                drain_deadline = None;
            } else {
                match drain_deadline {
                    None => {
                        // Quiescent: every admitted request is answered
                        // and flushed. Linger one tick so clients still
                        // talking get typed refusals, then exit.
                        drain_deadline = Some(Instant::now() + shared.config.poll_tick);
                    }
                    Some(deadline) if Instant::now() >= deadline => return,
                    Some(_) => {}
                }
            }
        }
    }
}

/// Accept until `WouldBlock`, routing each connection to its owning
/// reactor by id. Runs only on the reactor holding the listener.
fn accept_burst(
    shared: &Arc<Shared>,
    my_id: usize,
    listener: &TcpListener,
    conns: &mut Vec<Option<Conn>>,
    gens: &mut Vec<u32>,
    free: &mut Vec<usize>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    drop(stream);
                    continue;
                }
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let target = (conn_id as usize) % shared.reactors.len();
                if target == my_id {
                    register(shared, my_id, stream, conn_id, conns, gens, free);
                } else {
                    shared.reactors[target]
                        .inbox
                        .lock()
                        .unwrap()
                        .push((stream, conn_id));
                    shared.reactors[target].waker.wake();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Transient accept failure (EMFILE, ECONNABORTED…): poll
            // will re-announce readiness; don't spin here.
            Err(_) => return,
        }
    }
}

/// Install a connection into a free slot (or grow) under a fresh token.
fn register(
    shared: &Arc<Shared>,
    reactor_id: usize,
    stream: TcpStream,
    conn_id: u64,
    conns: &mut Vec<Option<Conn>>,
    gens: &mut Vec<u32>,
    free: &mut Vec<usize>,
) {
    let slot = free.pop().unwrap_or_else(|| {
        conns.push(None);
        gens.push(0);
        conns.len() - 1
    });
    let token = pack_token(reactor_id, slot, gens[slot]);
    match Conn::new(stream, conn_id, token, shared.shards.len()) {
        Ok(conn) => conns[slot] = Some(conn),
        Err(_) => free.push(slot),
    }
}
