//! The scoring daemon: reactor threads, sharded batchers, admission
//! control, and hot model reload.
//!
//! ```text
//!                 ┌─ reactor 0 (poll) ── conns… ─┐   ┌─ shard 0 ─┐
//!  clients ─────▶ ├─ reactor 1 (poll) ── conns… ─┼──▶├─ shard 1  ├─▶ evaluate_batch
//!                 └─ …                           ┘   └─ …        ┘
//!                        ▲ ordered responses            │ completions
//!                        └──────────────────────────────┘
//! ```
//!
//! A small fixed pool of reactor threads ([`crate::reactor`]) owns every
//! connection: non-blocking sockets driven by `poll(2)`, per-connection
//! state machines ([`crate::conn`]) that decode length-prefixed frames
//! incrementally, answer the cheap endpoints (`health`, `stats`,
//! `reload`, `shutdown`) inline, and pipeline scoring-family requests —
//! many in flight per connection, responses written back in request
//! order from a reused serialization buffer.
//!
//! Scoring work routes to N batcher shards ([`crate::shard`]) by
//! connection id; each shard coalesces jobs into micro-batches of up to
//! [`ServeConfig::batch_max`] apps and scores them with one
//! `evaluate_batch`/`explain_batch` pair on the pipeline pool.
//!
//! Backpressure is tiered instead of a single counter race:
//!
//! 1. **pipeline cap** — a connection with [`ServeConfig::max_pipeline`]
//!    unanswered requests stops being read; TCP pushes back on the
//!    client without a single byte of queued response;
//! 2. **global in-flight cap** — [`reserve_slot`] admits at most
//!    [`ServeConfig::max_inflight`] jobs across all shards; over the cap
//!    the client gets an immediate typed `busy` error;
//! 3. **drain** — after shutdown every scoring request gets a typed
//!    `shutting_down` refusal while admitted work finishes.
//!
//! The model lives behind `Mutex<Arc<ModelState>>`: each shard clones
//! the `Arc` once per batch, `reload` swaps the slot after loading and
//! validating the new file, and in-flight batches finish on whichever
//! model they started with — a reload never stalls or corrupts running
//! requests, and every response reports the fingerprint of the exact
//! model that produced it.
//!
//! Scoring a batch is row-independent (each app's report depends only on
//! its own feature row — `evaluate_batch` is bit-identical to per-app
//! scoring), so responses do not depend on how pipelined requests from
//! many connections interleave into shard batches. The black-box
//! harness (`tests/tests/serve_engine.rs`) pins this down.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or a `shutdown` request) is
//! graceful: the listener closes, scoring requests are refused with
//! typed errors, shards drain every admitted job, reactors flush every
//! owed response and linger one `poll_tick` before closing, and all
//! threads are joined.

use crate::protocol::{error_response, ok_response, Request};
use crate::reactor::{reactor_loop, ReactorShared};
use crate::shard::{shard_loop, ShardQueue};
use crate::stats::ServiceStats;
use clairvoyant::report::Json;
use clairvoyant::CompiledModel;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Admission-control cap: score requests admitted (queued or being
    /// scored) at once, across all shards. Beyond it, clients get a
    /// typed `busy` error.
    pub max_inflight: usize,
    /// Most apps scored in one `evaluate_batch` call.
    pub batch_max: usize,
    /// Pipeline-pool workers per batch (0 = all cores).
    pub jobs: usize,
    /// Reactor event-loop threads. Connections are pinned to a reactor
    /// for their whole life by `conn_id % reactor_threads`.
    pub reactor_threads: usize,
    /// Batcher shard threads. Connections are pinned to a shard by
    /// `conn_id % batch_shards`.
    pub batch_shards: usize,
    /// Most unanswered requests one connection may pipeline before the
    /// reactor stops reading it (tier-1 backpressure).
    pub max_pipeline: usize,
    /// Drain/shutdown tick: shard condvar re-check interval and the
    /// post-quiescence linger before reactors close connections.
    pub poll_tick: Duration,
    /// Artificial delay per scored batch. Zero in production; tests and
    /// the bench overload path use it to hold requests in flight
    /// deterministically.
    pub debug_batch_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_inflight: 256,
            batch_max: 64,
            jobs: 1,
            reactor_threads: 2,
            batch_shards: 2,
            max_pipeline: 64,
            poll_tick: Duration::from_millis(50),
            debug_batch_delay: Duration::ZERO,
        }
    }
}

/// A loaded model plus its identity.
pub struct ModelState {
    pub compiled: CompiledModel,
    /// FNV-1a of the serialized model — the `model` field of every score
    /// response, so clients can pin responses to a model version.
    pub fingerprint: u64,
    /// Where the model was loaded from; `reload` without a path re-reads
    /// this file.
    pub path: Option<PathBuf>,
}

impl ModelState {
    /// Wrap an in-memory model (fingerprints its serialized form) with
    /// its optimized kernels compiled up front, so the first request
    /// never pays the codegen step.
    pub fn from_model(compiled: CompiledModel) -> ModelState {
        let fingerprint = fingerprint_bytes(&compiled.to_bytes());
        compiled.optimize();
        ModelState {
            compiled,
            fingerprint,
            path: None,
        }
    }

    /// Load and fingerprint a CLVY file, compiling the optimized kernels
    /// before the state is published. On the hot-reload path this runs
    /// *before* the `Arc<ModelState>` swap, so in-flight and subsequent
    /// batches always see a fully compiled battery — the swap never
    /// races codegen.
    pub fn load(path: &Path) -> Result<ModelState, String> {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot read model from `{}`: {e}", path.display()))?;
        let compiled = CompiledModel::from_bytes(&bytes)?;
        compiled.optimize();
        Ok(ModelState {
            compiled,
            fingerprint: fingerprint_bytes(&bytes),
            path: Some(path.to_path_buf()),
        })
    }

    /// The fingerprint as the wire-format hex string.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    pipeline::fnv::hash_bytes(bytes)
}

/// State shared by every thread of one server.
pub(crate) struct Shared {
    pub config: ServeConfig,
    pub model: Mutex<Arc<ModelState>>,
    pub shards: Vec<ShardQueue>,
    pub reactors: Vec<ReactorShared>,
    pub next_conn_id: AtomicU64,
    pub inflight: AtomicUsize,
    pub shutting_down: AtomicBool,
    pub stats: ServiceStats,
    pub started: Instant,
}

impl Shared {
    pub fn current_model(&self) -> Arc<ModelState> {
        self.model.lock().unwrap().clone()
    }

    /// Flip the drain flag and wake every parked thread so it observes
    /// the flag now rather than at its next natural wakeup.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for reactor in &self.reactors {
            reactor.waker.wake();
        }
        for shard in &self.shards {
            shard.kick();
        }
    }

    fn shard_depths(&self) -> Vec<usize> {
        self.shards.iter().map(ShardQueue::depth).collect()
    }
}

/// A running daemon. Dropping the handle shuts the server down
/// gracefully (drain, then join every thread).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// Start the daemon: bind, spawn the reactor and shard threads, and
/// return immediately.
pub fn start(config: ServeConfig, model: ModelState) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot make the listener non-blocking: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;

    let reactor_count = config.reactor_threads.clamp(1, 256);
    let shard_count = config.batch_shards.max(1);
    let mut reactors = Vec::with_capacity(reactor_count);
    for _ in 0..reactor_count {
        reactors
            .push(ReactorShared::new().map_err(|e| format!("cannot create a reactor waker: {e}"))?);
    }
    let shared = Arc::new(Shared {
        config,
        model: Mutex::new(Arc::new(model)),
        shards: (0..shard_count).map(|_| ShardQueue::new()).collect(),
        reactors,
        next_conn_id: AtomicU64::new(0),
        inflight: AtomicUsize::new(0),
        shutting_down: AtomicBool::new(false),
        stats: ServiceStats::default(),
        started: Instant::now(),
    });

    let mut threads = Vec::with_capacity(shard_count + reactor_count);
    for shard_id in 0..shard_count {
        let shared = shared.clone();
        threads.push(std::thread::spawn(move || shard_loop(&shared, shard_id)));
    }
    let mut listener = Some(listener);
    for reactor_id in 0..reactor_count {
        let shared = shared.clone();
        // Reactor 0 owns the listener; the others only poll their conns.
        let listener = (reactor_id == 0).then(|| listener.take()).flatten();
        threads.push(std::thread::spawn(move || {
            reactor_loop(&shared, reactor_id, listener)
        }));
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Block until a `shutdown` request arrives over the wire, then
    /// finish the drain and join every thread.
    pub fn wait(mut self) {
        while !self.is_shutting_down() {
            std::thread::sleep(self.shared.config.poll_tick);
        }
        self.join_all();
    }

    /// Graceful shutdown: refuse new connections and requests, drain
    /// every admitted job, flush every owed response, join every thread.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        // A wire-triggered shutdown already woke everything; waking
        // again is a cheap no-op and covers the local path.
        self.shared.begin_shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shared.begin_shutdown();
            self.join_all();
        }
    }
}

/// Answer a cheap endpoint inline on the reactor thread. Scoring-family
/// requests never reach here — they route through `Conn::submit`.
pub(crate) fn admin_response(request: Request, shared: &Arc<Shared>, t0: Instant) -> Json {
    match request {
        Request::Health => {
            let stats = &shared.stats.health;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let model = shared.current_model();
            let status = if shared.shutting_down.load(Ordering::SeqCst) {
                "draining"
            } else {
                "serving"
            };
            let response = ok_response(
                "health",
                vec![
                    ("status", Json::String(status.into())),
                    ("model", Json::String(model.fingerprint_hex())),
                    (
                        "uptime_ms",
                        Json::Number(shared.started.elapsed().as_millis() as f64),
                    ),
                ],
            );
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Stats => {
            let stats = &shared.stats.stats;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let inflight = shared.inflight.load(Ordering::SeqCst);
            let depths = shared.shard_depths();
            let response = ok_response(
                "stats",
                vec![("stats", shared.stats.to_json(inflight, &depths))],
            );
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Shutdown => {
            let stats = &shared.stats.shutdown;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            shared.begin_shutdown();
            ok_response("shutdown", vec![("draining", Json::Bool(true))])
        }
        Request::Reload { path } => {
            let stats = &shared.stats.reload;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let response = reload(shared, path.as_deref());
            if !matches!(&response, Json::Object(o) if o.get("ok") == Some(&Json::Bool(true))) {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Score { .. } | Request::Explain { .. } | Request::Compare { .. } => {
            unreachable!("scoring-family requests go through Conn::submit")
        }
    }
}

fn reload(shared: &Arc<Shared>, path: Option<&str>) -> Json {
    let path: PathBuf = match path {
        Some(p) => PathBuf::from(p),
        None => match &shared.current_model().path {
            Some(p) => p.clone(),
            None => {
                return error_response(
                    "bad_request",
                    "reload needs a path: the current model was not loaded from a file",
                );
            }
        },
    };
    // Load and validate *before* touching the served slot: a bad file
    // leaves the old model serving.
    match ModelState::load(&path) {
        Ok(next) => {
            let next = Arc::new(next);
            let previous = {
                let mut slot = shared.model.lock().unwrap();
                std::mem::replace(&mut *slot, next.clone())
            };
            ok_response(
                "reload",
                vec![
                    ("model", Json::String(next.fingerprint_hex())),
                    ("previous", Json::String(previous.fingerprint_hex())),
                    ("path", Json::String(path.display().to_string())),
                ],
            )
        }
        Err(message) => error_response("bad_request", &message),
    }
}

/// Admission control (backpressure tier 2): reserve an in-flight slot or
/// produce the typed refusal. The counter covers queued *and*
/// being-scored requests across every shard, so the bound also caps the
/// total batcher backlog. On success the caller (or the shard it hands
/// the job to) owns the slot.
pub(crate) fn reserve_slot(shared: &Arc<Shared>) -> Result<(), Json> {
    let max = shared.config.max_inflight;
    if shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < max).then_some(n + 1)
        })
        .is_err()
    {
        shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return Err(error_response(
            "busy",
            &format!("admission queue is full ({max} requests in flight); retry later"),
        ));
    }

    // Re-check the flag now that the slot is held: shutdown may have
    // started between the first check and the increment, and a shard
    // may already have observed `shutting_down && inflight == 0` and
    // exited — queueing here would leave this request waiting forever.
    // With SeqCst on both the increment and the flag, reading `false`
    // here guarantees every shard's exit check sees `inflight >= 1` and
    // stays alive to drain the job.
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return Err(draining_response());
    }
    Ok(())
}

pub(crate) fn draining_response() -> Json {
    error_response(
        "shutting_down",
        "server is draining; not accepting new work",
    )
}
