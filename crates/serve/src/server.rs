//! The scoring daemon: accept loop, admission control, micro-batcher,
//! and hot model reload.
//!
//! ```text
//!  client ──frame──▶ handler thread ──admit──▶ bounded queue ─┐
//!  client ──frame──▶ handler thread ──admit──▶      …         ├─▶ batcher
//!  client ──frame──▶ handler thread ──busy ◀─(queue full)     │   thread
//!                         ▲                                   │
//!                         └────────── report + fingerprint ◀──┘
//! ```
//!
//! One thread per connection parses frames and answers the cheap
//! endpoints (`health`, `stats`, `reload`, `shutdown`) inline. `score`
//! requests pass admission control — a shared in-flight counter capped
//! at [`ServeConfig::max_inflight`]; over the cap the handler answers a
//! typed `busy` error immediately instead of queueing unbounded work —
//! and then wait on a per-request channel while the single batcher
//! thread drains the queue in micro-batches of up to
//! [`ServeConfig::batch_max`] apps, scoring each batch with one
//! [`CompiledModel::evaluate_batch`] call on the pipeline pool.
//!
//! The model lives behind `Mutex<Arc<ModelState>>`: the batcher clones
//! the `Arc` once per batch, `reload` swaps the slot after loading and
//! validating the new file, and in-flight batches finish on whichever
//! model they started with — a reload never stalls or corrupts running
//! requests, and every response reports the fingerprint of the exact
//! model that produced it.
//!
//! Scoring a batch is row-independent (each app's report depends only on
//! its own feature row — `evaluate_batch` is bit-identical to per-app
//! scoring), so responses do not depend on how client requests interleave
//! into batches. The black-box harness (`tests/tests/serve_engine.rs`)
//! pins this down.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or a `shutdown` request) is
//! graceful: the listener stops accepting, handlers refuse new work with
//! a `shutting_down` error, the batcher drains every admitted request,
//! and all threads are joined.

use crate::protocol::{
    error_response, ok_response, read_frame, write_frame, FrameError, Request, ScoreInput,
};
use crate::stats::ServiceStats;
use clairvoyant::report::{comparison_value, explanation_value, security_report_value, Json};
use clairvoyant::{
    rank_hotspots, Comparison, CompiledModel, Explanation, Hotspot, SecurityReport, Testbed,
};
use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Admission-control cap: score requests admitted (queued or being
    /// scored) at once. Beyond it, clients get a typed `busy` error.
    pub max_inflight: usize,
    /// Most apps scored in one `evaluate_batch` call.
    pub batch_max: usize,
    /// Pipeline-pool workers per batch (0 = all cores).
    pub jobs: usize,
    /// Handler read-poll tick: how often an idle connection re-checks
    /// the shutdown flag.
    pub poll_tick: Duration,
    /// Artificial delay per scored batch. Zero in production; tests and
    /// the bench overload path use it to hold requests in flight
    /// deterministically.
    pub debug_batch_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_inflight: 256,
            batch_max: 64,
            jobs: 1,
            poll_tick: Duration::from_millis(50),
            debug_batch_delay: Duration::ZERO,
        }
    }
}

/// A loaded model plus its identity.
pub struct ModelState {
    pub compiled: CompiledModel,
    /// FNV-1a of the serialized model — the `model` field of every score
    /// response, so clients can pin responses to a model version.
    pub fingerprint: u64,
    /// Where the model was loaded from; `reload` without a path re-reads
    /// this file.
    pub path: Option<PathBuf>,
}

impl ModelState {
    /// Wrap an in-memory model (fingerprints its serialized form).
    pub fn from_model(compiled: CompiledModel) -> ModelState {
        let fingerprint = fingerprint_bytes(&compiled.to_bytes());
        ModelState {
            compiled,
            fingerprint,
            path: None,
        }
    }

    /// Load and fingerprint a CLVY file.
    pub fn load(path: &Path) -> Result<ModelState, String> {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot read model from `{}`: {e}", path.display()))?;
        let compiled = CompiledModel::from_bytes(&bytes)?;
        Ok(ModelState {
            compiled,
            fingerprint: fingerprint_bytes(&bytes),
            path: Some(path.to_path_buf()),
        })
    }

    /// The fingerprint as the wire-format hex string.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    pipeline::fnv::hash_bytes(bytes)
}

/// One admitted request waiting for the batcher. Every variant holds one
/// admission slot; `Compare` contributes two rows to the batch but still
/// counts once against the in-flight cap (it is one client waiting).
enum Job {
    Score {
        name: String,
        features: static_analysis::FeatureVector,
        reply: mpsc::Sender<(SecurityReport, u64)>,
    },
    Explain {
        name: String,
        features: static_analysis::FeatureVector,
        /// Hotspots are computed on the handler thread (they need the
        /// parsed program, which only source submissions have); the
        /// batcher attaches them to the finished explanation.
        hotspots: Vec<Hotspot>,
        reply: mpsc::Sender<(Explanation, u64)>,
    },
    Compare {
        a: (String, static_analysis::FeatureVector),
        b: (String, static_analysis::FeatureVector),
        reply: mpsc::Sender<(Comparison, u64)>,
    },
}

/// State shared by every thread of one server.
struct Shared {
    config: ServeConfig,
    model: Mutex<Arc<ModelState>>,
    queue: Mutex<VecDeque<Job>>,
    queue_signal: Condvar,
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    stats: ServiceStats,
    started: Instant,
}

impl Shared {
    fn current_model(&self) -> Arc<ModelState> {
        self.model.lock().unwrap().clone()
    }
}

/// A running daemon. Dropping the handle shuts the server down
/// gracefully (drain, then join every thread).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

/// Start the daemon: bind, spawn the accept loop and the batcher, and
/// return immediately.
pub fn start(config: ServeConfig, model: ModelState) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    let shared = Arc::new(Shared {
        config,
        model: Mutex::new(Arc::new(model)),
        queue: Mutex::new(VecDeque::new()),
        queue_signal: Condvar::new(),
        inflight: AtomicUsize::new(0),
        shutting_down: AtomicBool::new(false),
        stats: ServiceStats::default(),
        started: Instant::now(),
    });

    let batcher = {
        let shared = shared.clone();
        std::thread::spawn(move || batcher_loop(&shared))
    };
    let accept = {
        let shared = shared.clone();
        std::thread::spawn(move || accept_loop(listener, &shared))
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        batcher: Some(batcher),
    })
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Block until a `shutdown` request arrives over the wire, then
    /// finish the drain and join every thread.
    pub fn wait(mut self) {
        while !self.is_shutting_down() {
            std::thread::sleep(self.shared.config.poll_tick);
        }
        self.join_all();
    }

    /// Graceful shutdown: refuse new connections and requests, drain the
    /// admitted queue, join every thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        self.join_all();
    }

    fn begin_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.queue_signal.notify_all();
        // Unblock the accept loop: it is parked in `accept()`, so poke it
        // with a throwaway connection. Failure is fine — the listener may
        // already be gone.
        let _ = TcpStream::connect(self.addr);
    }

    fn join_all(&mut self) {
        // A wire-triggered shutdown set the flag without unblocking
        // `accept()`; poke the listener so the loop observes it.
        let _ = TcpStream::connect(self.addr);
        // Accept loop first (it joins handler threads), then the batcher
        // (handlers waiting on score replies need it alive to drain).
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.queue_signal.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.batcher.is_some() {
            self.begin_shutdown();
            self.join_all();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // The poke connection (or a late client): refuse.
                    drop(stream);
                    break;
                }
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &shared)
                }));
                // Reap finished handlers so a long-lived daemon does not
                // accumulate one parked JoinHandle per past connection.
                handlers.retain(|h| !h.is_finished());
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (EMFILE, ECONNABORTED…):
                // back off briefly and keep serving.
                std::thread::sleep(shared.config.poll_tick);
            }
        }
    }
    drop(listener);
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Short read timeouts let the handler poll the shutdown flag while
    // the connection idles between frames.
    let _ = stream.set_read_timeout(Some(shared.config.poll_tick));
    let _ = stream.set_nodelay(true);
    loop {
        let mut keep_waiting = || !shared.shutting_down.load(Ordering::SeqCst);
        let payload = match read_frame(&mut stream, &mut keep_waiting) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => return,
            Err(FrameError::Desync(message)) => {
                shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
                // Best-effort final error; the stream is out of sync, so
                // the connection must die either way.
                let reply = error_response("bad_request", &message).to_string();
                let _ = write_frame(&mut stream, reply.as_bytes());
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let t0 = Instant::now();
        let response = match Request::parse(&payload) {
            Ok(request) => dispatch(request, shared, t0),
            Err(message) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                error_response("bad_request", &message)
            }
        };
        if write_frame(&mut stream, response.to_string().as_bytes()).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

fn dispatch(request: Request, shared: &Arc<Shared>, t0: Instant) -> Json {
    match request {
        Request::Health => {
            let stats = &shared.stats.health;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let model = shared.current_model();
            let status = if shared.shutting_down.load(Ordering::SeqCst) {
                "draining"
            } else {
                "serving"
            };
            let response = ok_response(
                "health",
                vec![
                    ("status", Json::String(status.into())),
                    ("model", Json::String(model.fingerprint_hex())),
                    (
                        "uptime_ms",
                        Json::Number(shared.started.elapsed().as_millis() as f64),
                    ),
                ],
            );
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Stats => {
            let stats = &shared.stats.stats;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let inflight = shared.inflight.load(Ordering::SeqCst);
            let queue_depth = shared.queue.lock().unwrap().len();
            let response = ok_response(
                "stats",
                vec![("stats", shared.stats.to_json(inflight, queue_depth))],
            );
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Shutdown => {
            let stats = &shared.stats.shutdown;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            shared.shutting_down.store(true, Ordering::SeqCst);
            shared.queue_signal.notify_all();
            ok_response("shutdown", vec![("draining", Json::Bool(true))])
        }
        Request::Reload { path } => {
            let stats = &shared.stats.reload;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let response = reload(shared, path.as_deref());
            if !matches!(&response, Json::Object(o) if o.get("ok") == Some(&Json::Bool(true))) {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Score { name, input } => {
            let response = score(shared, name, input);
            let stats = &shared.stats.score;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            if !matches!(&response, Json::Object(o) if o.get("ok") == Some(&Json::Bool(true))) {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Explain { name, input, top_k } => {
            let response = explain(shared, name, input, top_k);
            let stats = &shared.stats.explain;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            if !matches!(&response, Json::Object(o) if o.get("ok") == Some(&Json::Bool(true))) {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            stats.latency.record(t0.elapsed());
            response
        }
        Request::Compare { a, b } => {
            let response = compare(shared, a, b);
            let stats = &shared.stats.compare;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            if !matches!(&response, Json::Object(o) if o.get("ok") == Some(&Json::Bool(true))) {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            stats.latency.record(t0.elapsed());
            response
        }
    }
}

fn reload(shared: &Arc<Shared>, path: Option<&str>) -> Json {
    let path: PathBuf = match path {
        Some(p) => PathBuf::from(p),
        None => match &shared.current_model().path {
            Some(p) => p.clone(),
            None => {
                return error_response(
                    "bad_request",
                    "reload needs a path: the current model was not loaded from a file",
                );
            }
        },
    };
    // Load and validate *before* touching the served slot: a bad file
    // leaves the old model serving.
    match ModelState::load(&path) {
        Ok(next) => {
            let next = Arc::new(next);
            let previous = {
                let mut slot = shared.model.lock().unwrap();
                std::mem::replace(&mut *slot, next.clone())
            };
            ok_response(
                "reload",
                vec![
                    ("model", Json::String(next.fingerprint_hex())),
                    ("previous", Json::String(previous.fingerprint_hex())),
                    ("path", Json::String(path.display().to_string())),
                ],
            )
        }
        Err(message) => error_response("bad_request", &message),
    }
}

/// Resolve a scoring-family input on the handler thread (extraction
/// parallelizes across connections): pre-extracted features pass
/// through; source is parsed and run through the testbed, returning the
/// program too so `explain` can rank hotspots.
fn resolve_input(
    name: &str,
    input: ScoreInput,
) -> Result<
    (
        static_analysis::FeatureVector,
        Option<minilang::ast::Program>,
    ),
    Json,
> {
    match input {
        ScoreInput::Features(fv) => Ok((fv, None)),
        ScoreInput::Source { text, dialect } => {
            let files = vec![(format!("{name}.src"), text)];
            match minilang::parse_program(name, dialect, &files) {
                Ok(program) => {
                    let fv = Testbed::new().extract(&program);
                    Ok((fv, Some(program)))
                }
                Err(e) => Err(error_response("bad_request", &format!("parse error: {e}"))),
            }
        }
    }
}

/// Admission control: reserve an in-flight slot or produce the typed
/// refusal. The counter covers queued *and* being-scored requests, so
/// the bound also caps the batcher's backlog. On success the caller (or
/// the batcher it hands the job to) owns the slot.
fn reserve_slot(shared: &Arc<Shared>) -> Result<(), Json> {
    let max = shared.config.max_inflight;
    if shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < max).then_some(n + 1)
        })
        .is_err()
    {
        shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return Err(error_response(
            "busy",
            &format!("admission queue is full ({max} requests in flight); retry later"),
        ));
    }

    // Re-check the flag now that the slot is held: shutdown may have
    // started between the first check and the increment, and the batcher
    // may already have observed `shutting_down && inflight == 0` and
    // exited — queueing here would leave this request waiting forever.
    // With SeqCst on both the increment and the flag, reading `false`
    // here guarantees the batcher's exit check sees `inflight >= 1` and
    // stays alive to drain the job.
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return Err(error_response(
            "shutting_down",
            "server is draining; not accepting new work",
        ));
    }
    Ok(())
}

/// Queue an admitted job and wake the batcher. The slot travels with it.
fn enqueue(shared: &Arc<Shared>, job: Job) {
    shared.queue.lock().unwrap().push_back(job);
    shared.queue_signal.notify_all();
}

fn draining_response() -> Json {
    error_response(
        "shutting_down",
        "server is draining; not accepting new work",
    )
}

fn score(shared: &Arc<Shared>, name: String, input: ScoreInput) -> Json {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return draining_response();
    }
    let (features, _) = match resolve_input(&name, input) {
        Ok(resolved) => resolved,
        Err(response) => return response,
    };
    if let Err(response) = reserve_slot(shared) {
        return response;
    }
    let (reply, result) = mpsc::channel();
    enqueue(
        shared,
        Job::Score {
            name,
            features,
            reply,
        },
    );

    // The batcher owns the slot now and releases it after replying; if
    // it died (channel closed) report an internal error.
    match result.recv() {
        Ok((report, fingerprint)) => ok_response(
            "score",
            vec![
                ("model", Json::String(format!("{fingerprint:016x}"))),
                ("report", security_report_value(&report)),
            ],
        ),
        Err(_) => error_response("internal", "scoring backend dropped the request"),
    }
}

fn explain(shared: &Arc<Shared>, name: String, input: ScoreInput, top_k: usize) -> Json {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return draining_response();
    }
    let (features, program) = match resolve_input(&name, input) {
        Ok(resolved) => resolved,
        Err(response) => return response,
    };
    // Hotspot ranking is per-program static analysis — handler-thread
    // work, like extraction. Feature-vector submissions have no program
    // and get no hotspots, matching `CompiledModel::explain_features`.
    let hotspots = program
        .as_ref()
        .map(|p| rank_hotspots(p, top_k))
        .unwrap_or_default();
    if let Err(response) = reserve_slot(shared) {
        return response;
    }
    let (reply, result) = mpsc::channel();
    enqueue(
        shared,
        Job::Explain {
            name,
            features,
            hotspots,
            reply,
        },
    );
    match result.recv() {
        Ok((explanation, fingerprint)) => ok_response(
            "explain",
            vec![
                ("model", Json::String(format!("{fingerprint:016x}"))),
                ("explanation", explanation_value(&explanation)),
            ],
        ),
        Err(_) => error_response("internal", "scoring backend dropped the request"),
    }
}

fn compare(shared: &Arc<Shared>, a: (String, ScoreInput), b: (String, ScoreInput)) -> Json {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return draining_response();
    }
    let (a_features, _) = match resolve_input(&a.0, a.1) {
        Ok(resolved) => resolved,
        Err(response) => return response,
    };
    let (b_features, _) = match resolve_input(&b.0, b.1) {
        Ok(resolved) => resolved,
        Err(response) => return response,
    };
    // One comparison = one waiting client = one admission slot, even
    // though it contributes two rows to the explanation batch.
    if let Err(response) = reserve_slot(shared) {
        return response;
    }
    let (reply, result) = mpsc::channel();
    enqueue(
        shared,
        Job::Compare {
            a: (a.0, a_features),
            b: (b.0, b_features),
            reply,
        },
    );
    match result.recv() {
        Ok((comparison, fingerprint)) => ok_response(
            "compare",
            vec![
                ("model", Json::String(format!("{fingerprint:016x}"))),
                ("comparison", comparison_value(&comparison)),
            ],
        ),
        Err(_) => error_response("internal", "scoring backend dropped the request"),
    }
}

/// The batcher: drain admitted jobs in arrival order, partition the
/// batch into scoring rows (one `evaluate_batch` call) and explanation
/// rows (`explain` plus both sides of every `compare`, one
/// `explain_batch` call) against one model snapshot, reply per job.
/// Mixing rows from different clients is safe: each row's result depends
/// only on its own features, so responses do not depend on batch
/// composition. Exits only when shutdown is requested *and* every
/// admitted job has been answered.
fn batcher_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().unwrap();
            while queue.is_empty() {
                if shared.shutting_down.load(Ordering::SeqCst)
                    && shared.inflight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                // Timed wait: an admitted-but-not-yet-queued job (the
                // handler increments `inflight` before pushing) must be
                // picked up even if the notify raced the wait.
                let (q, _) = shared
                    .queue_signal
                    .wait_timeout(queue, shared.config.poll_tick)
                    .unwrap();
                queue = q;
            }
            let take = shared.config.batch_max.max(1).min(queue.len());
            queue.drain(..take).collect()
        };

        // One model snapshot per batch: a concurrent reload swaps the
        // slot for *future* batches; this one finishes on the snapshot.
        let model = shared.current_model();
        let mut score_apps: Vec<(String, static_analysis::FeatureVector)> = Vec::new();
        let mut explain_apps: Vec<(String, static_analysis::FeatureVector)> = Vec::new();
        for job in &batch {
            match job {
                Job::Score { name, features, .. } => {
                    score_apps.push((name.clone(), features.clone()));
                }
                Job::Explain { name, features, .. } => {
                    explain_apps.push((name.clone(), features.clone()));
                }
                Job::Compare { a, b, .. } => {
                    explain_apps.push(a.clone());
                    explain_apps.push(b.clone());
                }
            }
        }
        // Panic isolation: a poisoned feature row must not kill the
        // batcher thread — that would wedge every queued handler (live
        // Senders, recv() blocks forever) and leak the in-flight slots.
        // On panic, answer each job in the failed batch with an internal
        // error (dropping the Sender fails the handler's recv), release
        // the slots, and keep serving.
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let reports = if score_apps.is_empty() {
                Vec::new()
            } else {
                model
                    .compiled
                    .evaluate_batch(&score_apps, shared.config.jobs)
            };
            let explanations = if explain_apps.is_empty() {
                Vec::new()
            } else {
                model
                    .compiled
                    .explain_batch(&explain_apps, shared.config.jobs)
            };
            (reports, explanations)
        }));
        let (reports, explanations) = match scored {
            Ok(results) => results,
            Err(_) => {
                shared.stats.batch_panics.fetch_add(1, Ordering::Relaxed);
                for job in batch {
                    // Dropping the Sender fails the handler's recv().
                    match job {
                        Job::Score { reply, .. } => drop(reply),
                        Job::Explain { reply, .. } => drop(reply),
                        Job::Compare { reply, .. } => drop(reply),
                    }
                    shared.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                continue;
            }
        };
        if !shared.config.debug_batch_delay.is_zero() {
            std::thread::sleep(shared.config.debug_batch_delay);
        }
        shared.stats.scored_apps.fetch_add(
            (score_apps.len() + explain_apps.len()) as u64,
            Ordering::Relaxed,
        );
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        // Results come back in partition order, so walking the batch in
        // order with two cursors reunites every job with its rows.
        let mut reports = reports.into_iter();
        let mut explanations = explanations.into_iter();
        for job in batch {
            // A handler that timed out or died just drops the receiver;
            // the slot must be released either way.
            match job {
                Job::Score { reply, .. } => {
                    let report = reports.next().expect("one report per score job");
                    let _ = reply.send((report, model.fingerprint));
                }
                Job::Explain {
                    hotspots, reply, ..
                } => {
                    let mut explanation = explanations
                        .next()
                        .expect("one explanation per explain job");
                    explanation.hotspots = hotspots;
                    let _ = reply.send((explanation, model.fingerprint));
                }
                Job::Compare { reply, .. } => {
                    let ea = explanations.next().expect("two explanations per compare");
                    let eb = explanations.next().expect("two explanations per compare");
                    let _ =
                        reply.send((Comparison::from_explanations(&ea, &eb), model.fingerprint));
                }
            }
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
