//! Sharded micro-batchers: the compute half of the reactor design.
//!
//! The old daemon funneled every admitted request through one batcher
//! thread behind one global `Mutex<VecDeque>` — a single lock every
//! connection fought over, and a single thread all scoring serialized
//! through. Here the queue is split into N independent [`ShardQueue`]s;
//! each connection is pinned to `conn_id % N` at accept time, so a
//! connection's jobs never change shards (cache-friendly, no rebalancing
//! races) and lock contention divides by N.
//!
//! Each shard thread runs [`shard_loop`]: sleep on its condvar, drain up
//! to `batch_max` jobs, resolve inputs (parse + feature extraction — CPU
//! work that used to burn handler threads now rides the shard), score
//! the whole batch with one `evaluate_batch`/`explain_batch` pair
//! against one model snapshot, then hand per-job [`Completion`]s back to
//! the reactors that own the connections and wake them via self-pipe.
//!
//! Batch composition is invisible on the wire: every row's report
//! depends only on its own features, so coalescing jobs from many
//! connections produces bit-identical responses to scoring them one by
//! one — the property the equality gates in the bench and harness pin.
//!
//! Panic isolation is preserved from the old batcher: a poisoned row
//! answers every job in its batch with a typed `internal` error instead
//! of wedging the shard, and `batch_panics` ticks for the alert.
//!
//! Exit protocol: a shard parks until `shutting_down && inflight == 0`.
//! The SeqCst handshake in [`crate::server::reserve_slot`] guarantees
//! any job admitted before the flag was observable is drained first.

use crate::conn::unpack_token;
use crate::protocol::{error_response, ok_response, Payload, ScoreInput};
use crate::reactor::Completion;
use crate::server::Shared;
use clairvoyant::report::{comparison_value, explanation_value, write_security_report, Json};
use clairvoyant::{rank_hotspots, Comparison, Explanation, Hotspot, IncrementalTestbed};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The scoring-family work a connection submits to its shard. Inputs are
/// raw wire payloads: resolution (parse, extraction, hotspot ranking)
/// happens on the shard thread, off the reactor's event loop.
pub(crate) enum Work {
    Score {
        name: String,
        input: ScoreInput,
    },
    Explain {
        name: String,
        input: ScoreInput,
        top_k: usize,
    },
    Compare {
        a: (String, ScoreInput),
        b: (String, ScoreInput),
    },
}

/// One admitted request. `token` routes the completion back to the
/// owning reactor/connection; `seq` slots it into the connection's
/// ordered response queue. Every job holds one admission slot
/// (`Compare` contributes two batch rows but is one waiting client).
pub(crate) struct Job {
    pub token: u64,
    pub seq: u64,
    pub work: Work,
}

/// One shard's job queue: a mutexed deque plus a condvar for the shard
/// thread and an exact depth mirror the `stats` endpoint can read
/// without taking the lock.
pub(crate) struct ShardQueue {
    queue: Mutex<VecDeque<Job>>,
    signal: Condvar,
    depth: AtomicUsize,
}

impl ShardQueue {
    pub fn new() -> ShardQueue {
        ShardQueue {
            queue: Mutex::new(VecDeque::new()),
            signal: Condvar::new(),
            depth: AtomicUsize::new(0),
        }
    }

    /// Queue a burst of admitted jobs (the admission slots travel with
    /// them) under one lock and wake the shard thread once. Connections
    /// accumulate a pump's worth of parsed requests and hand them over
    /// here, so a 16-deep pipelined burst costs one lock + one notify
    /// instead of sixteen of each.
    pub fn push_batch(&self, jobs: &mut Vec<Job>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        self.queue.lock().unwrap().extend(jobs.drain(..));
        self.depth.fetch_add(n, Ordering::SeqCst);
        self.signal.notify_one();
    }

    /// Jobs queued and not yet drained into a batch.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Wake the shard thread so it re-checks the shutdown exit condition.
    pub fn kick(&self) {
        self.signal.notify_all();
    }
}

/// How one resolved job maps into the batch's result rows.
enum Resolved {
    /// Input resolution failed; the response is already final.
    Error(Json),
    Score {
        row: usize,
    },
    Explain {
        row: usize,
        hotspots: Vec<Hotspot>,
    },
    Compare {
        row_a: usize,
        row_b: usize,
    },
}

/// Resolve a scoring-family input on the shard thread: pre-extracted
/// features pass through; source is parsed and run through the shard's
/// resident incremental engine, returning the program too so `explain`
/// can rank hotspots. The engine lives for the shard's whole lifetime
/// (the old code built a fresh `Testbed::new()` per request), so repeat
/// or lightly-edited sources reuse resident per-function entries and
/// only re-analyze what changed; the hit/miss/rebuild counts land in the
/// service-wide `incr_*` counters.
fn resolve_input(
    engine: &mut IncrementalTestbed,
    shared: &Shared,
    name: &str,
    input: ScoreInput,
) -> Result<
    (
        static_analysis::FeatureVector,
        Option<minilang::ast::Program>,
    ),
    Json,
> {
    match input {
        ScoreInput::Features(fv) => Ok((fv, None)),
        ScoreInput::Source { text, dialect } => {
            let files = vec![(format!("{name}.src"), text)];
            match minilang::parse_program(name, dialect, &files) {
                Ok(program) => {
                    let (fv, report) = engine.extract_stats(&program);
                    shared
                        .stats
                        .incr_hits
                        .fetch_add(report.hits, Ordering::Relaxed);
                    shared
                        .stats
                        .incr_misses
                        .fetch_add(report.misses, Ordering::Relaxed);
                    shared
                        .stats
                        .incr_rebuilt_fns
                        .fetch_add(report.rebuilt, Ordering::Relaxed);
                    Ok((fv, Some(program)))
                }
                Err(e) => Err(error_response("bad_request", &format!("parse error: {e}"))),
            }
        }
    }
}

fn model_field(fingerprint: u64) -> (&'static str, Json) {
    ("model", Json::String(format!("{fingerprint:016x}")))
}

pub(crate) fn shard_loop(shared: &Arc<Shared>, shard_id: usize) {
    let me = &shared.shards[shard_id];
    // The shard's warm analysis context: one testbed + per-function entry
    // store, resident across batches. Connections are pinned to shards,
    // so a client iterating on one source keeps hitting its own warm
    // entries.
    let mut engine = IncrementalTestbed::new();
    loop {
        let batch: Vec<Job> = {
            let mut queue = me.queue.lock().unwrap();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutting_down.load(Ordering::SeqCst)
                    && shared.inflight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                // Timed wait: an admitted-but-not-yet-queued job (the
                // reactor increments `inflight` before pushing) must be
                // picked up even if the notify raced the wait.
                let (q, _) = me
                    .signal
                    .wait_timeout(queue, shared.config.poll_tick)
                    .unwrap();
                queue = q;
            }
            let take = shared.config.batch_max.max(1).min(queue.len());
            queue.drain(..take).collect()
        };
        me.depth.fetch_sub(batch.len(), Ordering::SeqCst);

        // One model snapshot per batch: a concurrent reload swaps the
        // slot for *future* batches; this one finishes on the snapshot.
        let model = shared.current_model();

        // Resolve every input and partition the batch into scoring rows
        // (one `evaluate_batch` call) and explanation rows (`explain`
        // plus both sides of every `compare`, one `explain_batch` call).
        let mut score_apps: Vec<(String, static_analysis::FeatureVector)> = Vec::new();
        let mut explain_apps: Vec<(String, static_analysis::FeatureVector)> = Vec::new();
        let mut items: Vec<(u64, u64, Resolved)> = Vec::with_capacity(batch.len());
        for job in batch {
            let resolved = match job.work {
                Work::Score { name, input } => {
                    match resolve_input(&mut engine, shared, &name, input) {
                        Ok((features, _)) => {
                            score_apps.push((name, features));
                            Resolved::Score {
                                row: score_apps.len() - 1,
                            }
                        }
                        Err(response) => Resolved::Error(response),
                    }
                }
                Work::Explain { name, input, top_k } => {
                    match resolve_input(&mut engine, shared, &name, input) {
                        Ok((features, program)) => {
                            // Feature-vector submissions have no program and
                            // get no hotspots, matching `explain_features`.
                            let hotspots = program
                                .as_ref()
                                .map(|p| rank_hotspots(p, top_k))
                                .unwrap_or_default();
                            explain_apps.push((name, features));
                            Resolved::Explain {
                                row: explain_apps.len() - 1,
                                hotspots,
                            }
                        }
                        Err(response) => Resolved::Error(response),
                    }
                }
                Work::Compare { a, b } => {
                    match (
                        resolve_input(&mut engine, shared, &a.0, a.1),
                        resolve_input(&mut engine, shared, &b.0, b.1),
                    ) {
                        (Ok((fa, _)), Ok((fb, _))) => {
                            explain_apps.push((a.0, fa));
                            explain_apps.push((b.0, fb));
                            Resolved::Compare {
                                row_a: explain_apps.len() - 2,
                                row_b: explain_apps.len() - 1,
                            }
                        }
                        (Err(response), _) | (_, Err(response)) => Resolved::Error(response),
                    }
                }
            };
            items.push((job.token, job.seq, resolved));
        }

        // Panic isolation: a poisoned feature row must not kill the
        // shard — that would strand every queued connection and leak the
        // in-flight slots. On panic, answer each scoring job in the
        // failed batch with a typed internal error and keep serving.
        let rows = score_apps.len() + explain_apps.len();
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let reports = if score_apps.is_empty() {
                Vec::new()
            } else {
                model
                    .compiled
                    .evaluate_batch(&score_apps, shared.config.jobs)
            };
            let explanations = if explain_apps.is_empty() {
                Vec::new()
            } else {
                model
                    .compiled
                    .explain_batch(&explain_apps, shared.config.jobs)
            };
            (reports, explanations)
        }));
        if !shared.config.debug_batch_delay.is_zero() {
            std::thread::sleep(shared.config.debug_batch_delay);
        }

        let completions: Vec<Completion> = match scored {
            Ok((reports, explanations)) => {
                if rows > 0 {
                    shared
                        .stats
                        .scored_apps
                        .fetch_add(rows as u64, Ordering::Relaxed);
                    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
                }
                let mut explanations: Vec<Option<Explanation>> =
                    explanations.into_iter().map(Some).collect();
                let mut take_explanation = |row: usize| {
                    explanations[row]
                        .take()
                        .expect("each explanation row consumed once")
                };
                items
                    .into_iter()
                    .map(|(token, seq, resolved)| {
                        let response = match resolved {
                            Resolved::Error(response) => Payload::Value(response),
                            // The hot path: stream the report straight
                            // into a String — key order matches what
                            // `ok_response` + `security_report_value`
                            // would serialize, byte for byte (pinned by
                            // a protocol test and the bench's in-loop
                            // equality gate).
                            Resolved::Score { row } => {
                                use std::fmt::Write as _;
                                let mut text = String::with_capacity(4096);
                                let _ = write!(
                                    text,
                                    "{{\"model\":\"{:016x}\",\"ok\":true,\"op\":\"score\",\"report\":",
                                    model.fingerprint
                                );
                                let _ = write_security_report(&reports[row], &mut text);
                                text.push('}');
                                Payload::Raw(text)
                            }
                            Resolved::Explain { row, hotspots } => {
                                let mut explanation = take_explanation(row);
                                explanation.hotspots = hotspots;
                                Payload::Value(ok_response(
                                    "explain",
                                    vec![
                                        model_field(model.fingerprint),
                                        ("explanation", explanation_value(&explanation)),
                                    ],
                                ))
                            }
                            Resolved::Compare { row_a, row_b } => {
                                let ea = take_explanation(row_a);
                                let eb = take_explanation(row_b);
                                Payload::Value(ok_response(
                                    "compare",
                                    vec![
                                        model_field(model.fingerprint),
                                        (
                                            "comparison",
                                            comparison_value(&Comparison::from_explanations(
                                                &ea, &eb,
                                            )),
                                        ),
                                    ],
                                ))
                            }
                        };
                        Completion {
                            token,
                            seq,
                            response,
                        }
                    })
                    .collect()
            }
            Err(_) => {
                shared.stats.batch_panics.fetch_add(1, Ordering::Relaxed);
                items
                    .into_iter()
                    .map(|(token, seq, resolved)| Completion {
                        token,
                        seq,
                        // Resolution errors keep their own diagnostics;
                        // everything that reached scoring gets the typed
                        // internal error.
                        response: Payload::Value(match resolved {
                            Resolved::Error(response) => response,
                            _ => error_response("internal", "scoring backend failed on this batch"),
                        }),
                    })
                    .collect()
            }
        };

        // Deliver grouped by owning reactor, one lock + one wake each.
        let released = completions.len();
        let mut per_reactor: Vec<Vec<Completion>> = Vec::new();
        per_reactor.resize_with(shared.reactors.len(), Vec::new);
        for completion in completions {
            let (reactor, _, _) = unpack_token(completion.token);
            per_reactor[reactor].push(completion);
        }
        for (reactor, group) in per_reactor.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            shared.reactors[reactor]
                .completions
                .lock()
                .unwrap()
                .extend(group);
            shared.reactors[reactor].waker.wake();
        }
        // Slots release only after the completions are visible to the
        // reactors: drain logic treats `inflight == 0` as "no responses
        // still owed anywhere".
        shared.inflight.fetch_sub(released, Ordering::SeqCst);
    }
}
