//! Lock-free service counters and latency histograms.
//!
//! Every handler thread bumps shared atomics; the `stats` endpoint
//! renders a snapshot without stopping the world. Latencies land in
//! power-of-two microsecond buckets (`[1µs, 2µs)`, `[2µs, 4µs)`, …),
//! which is coarse but monotone — good enough to read p50/p99 trends off
//! a dashboard without a t-digest dependency.

use clairvoyant::report::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: the last bucket catches
/// everything at or above ~2.2 minutes (2^31 µs).
const BUCKETS: usize = 32;

/// A histogram over power-of-two microsecond buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in [0, 1].
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Non-empty buckets as `{"us_lt": upper_bound, "count": n}` objects.
    fn to_json(&self) -> Json {
        Json::Array(
            self.buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let count = b.load(Ordering::Relaxed);
                    (count > 0).then(|| {
                        Json::object(vec![
                            ("us_lt", Json::Number((1u64 << i) as f64)),
                            ("count", Json::Number(count as f64)),
                        ])
                    })
                })
                .collect(),
        )
    }
}

/// One endpoint's counters.
#[derive(Debug, Default)]
pub struct EndpointStats {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub latency: LatencyHistogram,
}

impl EndpointStats {
    fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "requests",
                Json::Number(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors",
                Json::Number(self.errors.load(Ordering::Relaxed) as f64),
            ),
            ("p50_us", Json::Number(self.latency.quantile_us(0.5) as f64)),
            (
                "p99_us",
                Json::Number(self.latency.quantile_us(0.99) as f64),
            ),
            (
                "p999_us",
                Json::Number(self.latency.quantile_us(0.999) as f64),
            ),
            ("latency_buckets", self.latency.to_json()),
        ])
    }
}

/// Whole-service counters, one [`EndpointStats`] per protocol op plus
/// service-wide admission and connection counts.
#[derive(Debug, Default)]
pub struct ServiceStats {
    pub score: EndpointStats,
    pub explain: EndpointStats,
    pub compare: EndpointStats,
    pub health: EndpointStats,
    pub stats: EndpointStats,
    pub reload: EndpointStats,
    pub shutdown: EndpointStats,
    /// Score requests refused by admission control (`busy` responses).
    pub rejected_busy: AtomicU64,
    /// Frames that failed to parse into a request (`bad_request`s).
    pub bad_requests: AtomicU64,
    /// Connections accepted since startup.
    pub connections: AtomicU64,
    /// Connections dropped for framing violations (desync).
    pub desyncs: AtomicU64,
    /// Apps scored through the batcher, and the batches they rode in —
    /// `batches < scored` means micro-batching is actually coalescing.
    pub scored_apps: AtomicU64,
    pub batches: AtomicU64,
    /// Batches whose scoring panicked; every job in them was answered
    /// with an `internal` error. Non-zero here means a model or feature
    /// row is tripping a bug — worth alerting on.
    pub batch_panics: AtomicU64,
    /// Times a reactor thread's `poll` returned. Idle connections are
    /// parked with an infinite timeout, so on a quiet server this
    /// counter is *flat* — it moving while no requests arrive means a
    /// wakeup storm (the bug the reactor replaced: per-connection
    /// read-timeout spinning). A regression test pins this down.
    pub reactor_wakeups: AtomicU64,
    /// Warm-context cache: functions served from resident per-function
    /// entries during request resolution (fixpoints skipped). A repeat
    /// score of an unchanged source is all hits.
    pub incr_hits: AtomicU64,
    /// Functions whose fingerprint found no resident entry.
    pub incr_misses: AtomicU64,
    /// Functions fully re-analyzed. An edited source moves this by the
    /// number of *changed* functions, not the program size.
    pub incr_rebuilt_fns: AtomicU64,
}

impl ServiceStats {
    /// Snapshot as the `stats` response body. `shard_depths` is each
    /// batcher shard's queued-job count; `queue_depth` stays in the
    /// schema as their sum so dashboards keyed on the old field keep
    /// working.
    pub fn to_json(&self, inflight: usize, shard_depths: &[usize]) -> Json {
        let n = |a: &AtomicU64| Json::Number(a.load(Ordering::Relaxed) as f64);
        Json::object(vec![
            (
                "endpoints",
                Json::object(vec![
                    ("score", self.score.to_json()),
                    ("explain", self.explain.to_json()),
                    ("compare", self.compare.to_json()),
                    ("health", self.health.to_json()),
                    ("stats", self.stats.to_json()),
                    ("reload", self.reload.to_json()),
                    ("shutdown", self.shutdown.to_json()),
                ]),
            ),
            ("rejected_busy", n(&self.rejected_busy)),
            ("bad_requests", n(&self.bad_requests)),
            ("connections", n(&self.connections)),
            ("desyncs", n(&self.desyncs)),
            ("scored_apps", n(&self.scored_apps)),
            ("batches", n(&self.batches)),
            ("batch_panics", n(&self.batch_panics)),
            ("reactor_wakeups", n(&self.reactor_wakeups)),
            ("incr_hits", n(&self.incr_hits)),
            ("incr_misses", n(&self.incr_misses)),
            ("incr_rebuilt_fns", n(&self.incr_rebuilt_fns)),
            ("inflight", Json::Number(inflight as f64)),
            (
                "queue_depth",
                Json::Number(shard_depths.iter().sum::<usize>() as f64),
            ),
            (
                "queue_depths",
                Json::Array(
                    shard_depths
                        .iter()
                        .map(|d| Json::Number(*d as f64))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.total(), 4);
        // 3µs lands in [2, 4): upper bound 4.
        assert_eq!(h.quantile_us(0.75), 4);
        assert!(h.quantile_us(1.0) >= 1024);
    }

    #[test]
    fn quantiles_on_empty_histogram_are_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn snapshot_serializes() {
        let s = ServiceStats::default();
        s.score.requests.fetch_add(2, Ordering::Relaxed);
        s.score.latency.record(Duration::from_micros(10));
        let json = s.to_json(1, &[3, 4]).to_string();
        assert!(json.contains("\"requests\":2"));
        assert!(json.contains("\"inflight\":1"));
        // Per-shard depths plus the legacy total.
        assert!(json.contains("\"queue_depths\":[3,4]"));
        assert!(json.contains("\"queue_depth\":7"));
        assert!(json.contains("\"p999_us\""));
        assert!(json.contains("\"reactor_wakeups\""));
        assert!(json.contains("\"incr_hits\""));
        assert!(json.contains("\"incr_misses\""));
        assert!(json.contains("\"incr_rebuilt_fns\""));
    }
}
