//! Dense `u64`-word bit sets — the lattice representation shared by the
//! dataflow, taint and interval fixpoints.
//!
//! Every set-valued analysis fact in this crate (reaching def ids, tainted
//! [`crate::symbols::SymbolId`]s, interval-environment domains) is a
//! subset of a universe whose size is known up front, so a flat word
//! vector beats a hash set: `union_with` is a handful of `or`s per 64
//! elements, equality is `memcmp`, and cloning is one allocation.

/// A dense bit set sized at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size (not the number of set bits — see [`BitSet::count`]).
    pub fn universe(&self) -> usize {
        self.len
    }

    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_ones()
    }

    /// Iterate set indices in increasing order, skipping zero words — the
    /// sparse-friendly walk the def-use sweep uses.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set bit indices (see [`BitSet::iter_ones`]).
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_ones_skips_empty_words() {
        let mut s = BitSet::new(300);
        for i in [0, 63, 64, 200, 299] {
            s.insert(i);
        }
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 200, 299]);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn empty_universe_iterates_nothing() {
        let s = BitSet::new(0);
        assert_eq!(s.iter_ones().count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn intersect_and_clear() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        b.insert(3);
        a.intersect_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2]);
        a.clear();
        assert!(a.is_empty());
    }
}
