//! Call-graph construction and control-flow statistics (Allen [15]).
//!
//! §4.1: *"Control flow analysis can determine numbers of calling and
//! returning targets in a program."* The call graph also drives the
//! interprocedural taint summaries and the attack-surface reachability
//! analysis (which endpoints can reach which dangerous operations).

use minilang::ast::Program;
use minilang::visit;
use minilang::Intrinsic;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The program call graph over user-defined functions, with intrinsic calls
/// recorded separately.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Function names in definition order.
    pub functions: Vec<String>,
    /// Edges: caller → set of callees (user functions only).
    pub calls: BTreeMap<String, BTreeSet<String>>,
    /// Caller → multiset of intrinsic callees.
    pub intrinsic_calls: BTreeMap<String, Vec<Intrinsic>>,
    /// Calls to names that are neither defined functions nor intrinsics
    /// (unresolved externs — counted as an attack-surface unknown).
    pub unresolved: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Build the call graph of a program.
    pub fn build(program: &Program) -> CallGraph {
        let defined: BTreeSet<&str> = program.functions().map(|f| f.name.as_str()).collect();
        let mut cg = CallGraph::default();
        for f in program.functions() {
            cg.functions.push(f.name.clone());
            let calls = cg.calls.entry(f.name.clone()).or_default();
            let intr = cg.intrinsic_calls.entry(f.name.clone()).or_default();
            let unresolved = cg.unresolved.entry(f.name.clone()).or_default();
            for callee in visit::collect_calls(&f.body) {
                if let Some(i) = Intrinsic::from_name(callee) {
                    intr.push(i);
                } else if defined.contains(callee) {
                    calls.insert(callee.to_string());
                } else {
                    unresolved.insert(callee.to_string());
                }
            }
        }
        cg
    }

    /// Direct user-function callees of `name`.
    pub fn callees(&self, name: &str) -> impl Iterator<Item = &str> {
        self.calls
            .get(name)
            .into_iter()
            .flatten()
            .map(|s| s.as_str())
    }

    /// Functions transitively reachable from `roots` (including the roots
    /// themselves when defined).
    pub fn reachable_from<'a>(&self, roots: impl IntoIterator<Item = &'a str>) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = roots
            .into_iter()
            .filter(|r| self.calls.contains_key(*r))
            .map(|r| r.to_string())
            .collect();
        for r in &queue {
            seen.insert(r.clone());
        }
        while let Some(f) = queue.pop_front() {
            for callee in self.callees(&f) {
                if seen.insert(callee.to_string()) {
                    queue.push_back(callee.to_string());
                }
            }
        }
        seen
    }

    /// Summary statistics used as features.
    pub fn stats(&self) -> CallGraphStats {
        let call_edges: usize = self.calls.values().map(|s| s.len()).sum();
        let intrinsic_edges: usize = self.intrinsic_calls.values().map(|v| v.len()).sum();
        let unresolved_edges: usize = self.unresolved.values().map(|s| s.len()).sum();
        // In-degree = number of distinct callers per function ("returning
        // targets"); out-degree = calls per function ("calling targets").
        let mut in_degree: BTreeMap<&str, usize> = BTreeMap::new();
        for callees in self.calls.values() {
            for c in callees {
                *in_degree.entry(c.as_str()).or_insert(0) += 1;
            }
        }
        let max_out = self.calls.values().map(|s| s.len()).max().unwrap_or(0);
        let max_in = in_degree.values().copied().max().unwrap_or(0);
        let leaves = self
            .functions
            .iter()
            .filter(|f| self.calls.get(*f).is_none_or(|s| s.is_empty()))
            .count();
        // Roots: functions never called by another user function.
        let roots = self
            .functions
            .iter()
            .filter(|f| !in_degree.contains_key(f.as_str()))
            .count();
        CallGraphStats {
            functions: self.functions.len(),
            call_edges,
            intrinsic_edges,
            unresolved_edges,
            max_out_degree: max_out,
            max_in_degree: max_in,
            leaf_functions: leaves,
            root_functions: roots,
            recursive_functions: self.count_recursive(),
        }
    }

    /// Functions that participate in a call cycle (including self-recursion).
    fn count_recursive(&self) -> usize {
        // A function is recursive iff it can reach itself.
        self.functions
            .iter()
            .filter(|f| {
                let mut seen = BTreeSet::new();
                let mut queue: VecDeque<&str> = self.callees(f).collect::<Vec<_>>().into();
                while let Some(c) = queue.pop_front() {
                    if c == f.as_str() {
                        return true;
                    }
                    if seen.insert(c.to_string()) {
                        queue.extend(self.callees(c));
                    }
                }
                false
            })
            .count()
    }
}

/// Feature summary of the call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallGraphStats {
    pub functions: usize,
    pub call_edges: usize,
    pub intrinsic_edges: usize,
    pub unresolved_edges: usize,
    pub max_out_degree: usize,
    pub max_in_degree: usize,
    pub leaf_functions: usize,
    pub root_functions: usize,
    pub recursive_functions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn graph(src: &str) -> CallGraph {
        let p = parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap();
        CallGraph::build(&p)
    }

    #[test]
    fn builds_user_and_intrinsic_edges() {
        let cg = graph(
            "fn a() { b(); printf(\"x\"); }
             fn b() { c(); c(); }
             fn c() { }",
        );
        assert_eq!(cg.callees("a").collect::<Vec<_>>(), vec!["b"]);
        assert_eq!(cg.callees("b").collect::<Vec<_>>(), vec!["c"]);
        assert_eq!(cg.intrinsic_calls["a"], vec![Intrinsic::Printf]);
        let s = cg.stats();
        assert_eq!(s.functions, 3);
        assert_eq!(s.call_edges, 2); // duplicate b→c deduplicated
        assert_eq!(s.intrinsic_edges, 1);
        assert_eq!(s.leaf_functions, 1);
        assert_eq!(s.root_functions, 1);
    }

    #[test]
    fn unresolved_calls_are_tracked() {
        let cg = graph("fn a() { mystery(); }");
        assert_eq!(cg.unresolved["a"].len(), 1);
        assert_eq!(cg.stats().unresolved_edges, 1);
    }

    #[test]
    fn reachability_is_transitive() {
        let cg = graph(
            "fn main() { worker(); }
             fn worker() { helper(); }
             fn helper() { }
             fn unused() { helper(); }",
        );
        let r = cg.reachable_from(["main"]);
        assert!(r.contains("main") && r.contains("worker") && r.contains("helper"));
        assert!(!r.contains("unused"));
    }

    #[test]
    fn reachable_from_undefined_root_is_empty() {
        let cg = graph("fn a() { }");
        assert!(cg.reachable_from(["nope"]).is_empty());
    }

    #[test]
    fn self_recursion_detected() {
        let cg = graph("fn f(n: int) -> int { if n > 0 { return f(n - 1); } return 0; }");
        assert_eq!(cg.stats().recursive_functions, 1);
    }

    #[test]
    fn mutual_recursion_detected() {
        let cg = graph(
            "fn even(n: int) -> bool { if n == 0 { return true; } return odd(n - 1); }
             fn odd(n: int) -> bool { if n == 0 { return false; } return even(n - 1); }",
        );
        assert_eq!(cg.stats().recursive_functions, 2);
    }

    #[test]
    fn degrees() {
        let cg = graph(
            "fn hub() { a(); b(); c(); }
             fn a() { shared(); }
             fn b() { shared(); }
             fn c() { shared(); }
             fn shared() { }",
        );
        let s = cg.stats();
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 3);
    }
}
