//! Control-flow graph construction.
//!
//! Lowers a MiniLang function body to a statement-level CFG: one node per
//! simple statement, one per branch condition, plus synthetic entry/exit and
//! join nodes. Every edge carries an [`EdgeLabel`] so flow-sensitive
//! analyses know which branch outcome it represents. The CFG is the
//! substrate for McCabe complexity (E − N + 2P), the data-flow analyses
//! [56], taint tracking, the interval domain's branch refinement [27], and
//! the KLEE-style path explorer [22].

use minilang::ast::{Block, Expr, Function, Stmt, StmtKind};

/// Index of a node within its [`Cfg`].
pub type NodeId = usize;

/// Which branch outcome an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeLabel {
    /// Unconditional fallthrough.
    Jump,
    /// The condition evaluated to true.
    True,
    /// The condition evaluated to false.
    False,
    /// Switch dispatch into arm `i` (`usize::MAX` = the no-match edge of a
    /// switch without a `default`).
    Arm(usize),
}

/// What a CFG node represents.
#[derive(Debug, Clone, Copy)]
pub enum NodeKind<'a> {
    /// Unique function entry.
    Entry,
    /// Unique function exit (all returns and the final fallthrough reach it).
    Exit,
    /// A simple statement: `let`, assignment, expression, `return`,
    /// `break`, `continue`.
    Stmt(&'a Stmt),
    /// A branch on the given condition. Out-edges are labelled
    /// [`EdgeLabel::True`]/[`EdgeLabel::False`] (or [`EdgeLabel::Arm`] for
    /// switch scrutinees).
    Cond(&'a Expr),
    /// A synthetic merge point (loop exits, switch joins).
    Join,
}

/// One CFG node with its adjacency. `succs[i]` is reached via `labels[i]`.
#[derive(Debug, Clone)]
pub struct Node<'a> {
    pub kind: NodeKind<'a>,
    pub succs: Vec<NodeId>,
    pub labels: Vec<EdgeLabel>,
    pub preds: Vec<NodeId>,
}

/// A function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg<'a> {
    pub nodes: Vec<Node<'a>>,
    pub entry: NodeId,
    pub exit: NodeId,
}

impl<'a> Cfg<'a> {
    /// Build the CFG for a function body.
    pub fn build(function: &'a Function) -> Cfg<'a> {
        let mut b = Builder { nodes: Vec::new() };
        let entry = b.node(NodeKind::Entry);
        let exit = b.node(NodeKind::Exit);
        let mut ctx = Ctx {
            exit,
            break_to: None,
            continue_to: None,
        };
        let dangling = b.lower_block(&function.body, vec![(entry, EdgeLabel::Jump)], &mut ctx);
        for (d, label) in dangling {
            b.edge(d, exit, label);
        }
        Cfg {
            nodes: b.nodes,
            entry,
            exit,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges (parallel edges with distinct labels count
    /// separately — they are distinct paths).
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.succs.len()).sum()
    }

    /// The labels of every edge `from → to` (usually one; a condition whose
    /// branches converge immediately yields both `True` and `False`).
    pub fn edge_labels(&self, from: NodeId, to: NodeId) -> Vec<EdgeLabel> {
        self.nodes[from]
            .succs
            .iter()
            .zip(&self.nodes[from].labels)
            .filter_map(|(&s, &l)| (s == to).then_some(l))
            .collect()
    }

    /// Node ids in reverse post-order from the entry (a good iteration order
    /// for forward data-flow analyses). Unreachable nodes are appended at the
    /// end in index order so analyses still cover them.
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut post = Vec::with_capacity(self.nodes.len());
        // Iterative DFS to avoid recursion depth limits on long functions.
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        visited[self.entry] = true;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            if *child < self.nodes[node].succs.len() {
                let next = self.nodes[node].succs[*child];
                *child += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        for (i, seen) in visited.iter().enumerate() {
            if !seen {
                post.push(i);
            }
        }
        post
    }

    /// Ids of nodes unreachable from the entry — dead code, reported by the
    /// smell detector and excluded from path enumeration.
    pub fn unreachable_nodes(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![self.entry];
        visited[self.entry] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.nodes[n].succs {
                if !visited[s] {
                    visited[s] = true;
                    stack.push(s);
                }
            }
        }
        visited
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (!v).then_some(i))
            .collect()
    }
}

struct Ctx {
    exit: NodeId,
    break_to: Option<NodeId>,
    continue_to: Option<NodeId>,
}

/// Pending in-edges: `(source node, label the edge will carry)`.
type Preds = Vec<(NodeId, EdgeLabel)>;

struct Builder<'a> {
    nodes: Vec<Node<'a>>,
}

impl<'a> Builder<'a> {
    fn node(&mut self, kind: NodeKind<'a>) -> NodeId {
        self.nodes.push(Node {
            kind,
            succs: Vec::new(),
            labels: Vec::new(),
            preds: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: NodeId, to: NodeId, label: EdgeLabel) {
        let exists = self.nodes[from]
            .succs
            .iter()
            .zip(&self.nodes[from].labels)
            .any(|(&s, &l)| s == to && l == label);
        if !exists {
            self.nodes[from].succs.push(to);
            self.nodes[from].labels.push(label);
            self.nodes[to].preds.push(from);
        }
    }

    fn connect(&mut self, preds: &Preds, to: NodeId) {
        for &(p, label) in preds {
            self.edge(p, to, label);
        }
    }

    /// Lower a block; `preds` are the pending in-edges into it. Returns the
    /// pending out-edges falling through out of it.
    fn lower_block(&mut self, block: &'a Block, mut preds: Preds, ctx: &mut Ctx) -> Preds {
        for stmt in &block.stmts {
            preds = self.lower_stmt(stmt, preds, ctx);
        }
        preds
    }

    fn lower_stmt(&mut self, stmt: &'a Stmt, preds: Preds, ctx: &mut Ctx) -> Preds {
        use EdgeLabel::*;
        match &stmt.kind {
            StmtKind::Let { .. } | StmtKind::Assign { .. } | StmtKind::Expr(_) => {
                let n = self.node(NodeKind::Stmt(stmt));
                self.connect(&preds, n);
                vec![(n, Jump)]
            }
            StmtKind::Return(_) => {
                let n = self.node(NodeKind::Stmt(stmt));
                self.connect(&preds, n);
                let exit = ctx.exit;
                self.edge(n, exit, Jump);
                vec![]
            }
            StmtKind::Break => {
                let n = self.node(NodeKind::Stmt(stmt));
                self.connect(&preds, n);
                if let Some(target) = ctx.break_to {
                    self.edge(n, target, Jump);
                }
                vec![]
            }
            StmtKind::Continue => {
                let n = self.node(NodeKind::Stmt(stmt));
                self.connect(&preds, n);
                if let Some(target) = ctx.continue_to {
                    self.edge(n, target, Jump);
                }
                vec![]
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.node(NodeKind::Cond(cond));
                self.connect(&preds, c);
                let mut exits = self.lower_block(then_branch, vec![(c, True)], ctx);
                match else_branch {
                    Some(eb) => exits.extend(self.lower_block(eb, vec![(c, False)], ctx)),
                    None => exits.push((c, False)), // false edge falls through
                }
                exits
            }
            StmtKind::While { cond, body } => {
                let c = self.node(NodeKind::Cond(cond));
                self.connect(&preds, c);
                let after = self.node(NodeKind::Join);
                self.edge(c, after, False); // leaving the loop
                let saved = (ctx.break_to, ctx.continue_to);
                ctx.break_to = Some(after);
                ctx.continue_to = Some(c);
                let body_exits = self.lower_block(body, vec![(c, True)], ctx);
                (ctx.break_to, ctx.continue_to) = saved;
                self.connect(&body_exits, c); // back edge
                vec![(after, Jump)]
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut cur = preds;
                if let Some(i) = init {
                    cur = self.lower_stmt(i, cur, ctx);
                }
                // Header: a condition node when a condition exists, else a
                // plain join (an unconditional loop header).
                let header = match cond {
                    Some(c) => self.node(NodeKind::Cond(c)),
                    None => self.node(NodeKind::Join),
                };
                self.connect(&cur, header);
                let after = self.node(NodeKind::Join);
                if cond.is_some() {
                    self.edge(header, after, False);
                }
                // `continue` re-runs the step, then the header.
                let continue_target = match step {
                    Some(s) => {
                        let step_node = self.node(NodeKind::Stmt(s));
                        self.edge(step_node, header, Jump);
                        step_node
                    }
                    None => header,
                };
                let saved = (ctx.break_to, ctx.continue_to);
                ctx.break_to = Some(after);
                ctx.continue_to = Some(continue_target);
                let body_label = if cond.is_some() { True } else { Jump };
                let body_exits = self.lower_block(body, vec![(header, body_label)], ctx);
                (ctx.break_to, ctx.continue_to) = saved;
                self.connect(&body_exits, continue_target);
                vec![(after, Jump)]
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let c = self.node(NodeKind::Cond(scrutinee));
                self.connect(&preds, c);
                let after = self.node(NodeKind::Join);
                let saved = ctx.break_to;
                ctx.break_to = Some(after);
                for (i, case) in cases.iter().enumerate() {
                    let exits = self.lower_block(&case.body, vec![(c, Arm(i))], ctx);
                    self.connect(&exits, after);
                }
                match default {
                    Some(d) => {
                        let exits = self.lower_block(d, vec![(c, Arm(cases.len()))], ctx);
                        self.connect(&exits, after);
                    }
                    None => self.edge(c, after, Arm(usize::MAX)), // no-match edge
                }
                ctx.break_to = saved;
                vec![(after, Jump)]
            }
            StmtKind::Block(b) => self.lower_block(b, preds, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, Dialect};

    fn cfg_of(src: &str) -> (minilang::Module, usize, usize) {
        let m = parse_module("t.c", src, Dialect::C).unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        let (n, e) = (cfg.node_count(), cfg.edge_count());
        (m, n, e)
    }

    #[test]
    fn straight_line_shape() {
        let m = parse_module("t.c", "fn f() { let x: int = 1; x = 2; }", Dialect::C).unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        // entry, exit, 2 stmts
        assert_eq!(cfg.node_count(), 4);
        // entry→s1→s2→exit
        assert_eq!(cfg.edge_count(), 3);
        assert!(cfg.unreachable_nodes().is_empty());
    }

    #[test]
    fn if_without_else_has_diamond_shape() {
        let m = parse_module(
            "t.c",
            "fn f(x: int) { if x > 0 { x = 1; } x = 2; }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        // entry, exit, cond, then-stmt, tail-stmt = 5 nodes
        assert_eq!(cfg.node_count(), 5);
        // entry→cond, cond→then(T), cond→tail(F), then→tail, tail→exit
        assert_eq!(cfg.edge_count(), 5);
        // McCabe: E - N + 2 = 5 - 5 + 2 = 2 (one decision). ✓
    }

    #[test]
    fn empty_if_branches_create_parallel_labelled_edges() {
        let m = parse_module("t.c", "fn f(x: int) { if x > 0 { } x = 2; }", Dialect::C).unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        let cond = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Cond(_)))
            .unwrap();
        let tail = cfg.nodes[cond].succs[0];
        let labels = cfg.edge_labels(cond, tail);
        assert_eq!(labels, vec![EdgeLabel::True, EdgeLabel::False]);
        // E − N + 2 still reports complexity 2.
        assert_eq!(cfg.edge_count() as isize - cfg.node_count() as isize + 2, 2);
    }

    #[test]
    fn while_loop_true_edge_enters_body() {
        let m = parse_module(
            "t.c",
            "fn f() { let i: int = 0; while i < 3 { i += 1; } }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        // entry, exit, let, cond, join(after), body = 6 nodes
        assert_eq!(cfg.node_count(), 6);
        assert_eq!(cfg.edge_count(), 6);
        let cond = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Cond(_)))
            .unwrap();
        // The True-labelled successor must be the body statement.
        let (i, _) = cfg.nodes[cond]
            .labels
            .iter()
            .enumerate()
            .find(|(_, &l)| l == EdgeLabel::True)
            .unwrap();
        let body = cfg.nodes[cond].succs[i];
        assert!(matches!(cfg.nodes[body].kind, NodeKind::Stmt(_)));
        // The False-labelled successor is the after-join.
        let (j, _) = cfg.nodes[cond]
            .labels
            .iter()
            .enumerate()
            .find(|(_, &l)| l == EdgeLabel::False)
            .unwrap();
        assert!(matches!(
            cfg.nodes[cfg.nodes[cond].succs[j]].kind,
            NodeKind::Join
        ));
    }

    #[test]
    fn return_connects_to_exit_and_kills_fallthrough() {
        let m = parse_module(
            "t.c",
            "fn f(x: int) -> int { if x > 0 { return 1; } return 0; }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        let exit_preds = cfg.nodes[cfg.exit].preds.len();
        assert_eq!(exit_preds, 2);
        assert!(cfg.unreachable_nodes().is_empty());
    }

    #[test]
    fn dead_code_after_return_is_unreachable() {
        let m = parse_module(
            "t.c",
            "fn f() -> int { return 1; let x: int = 2; }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        assert_eq!(cfg.unreachable_nodes().len(), 1);
    }

    #[test]
    fn break_exits_loop_continue_reenters() {
        let (_m, n, e) = cfg_of(
            "fn f() { while true { if read_int() > 0 { break; } continue; } log_msg(\"x\"); }",
        );
        // Shape sanity: more edges than a straight line, graph is connected.
        assert!(e >= n - 1);
    }

    #[test]
    fn for_loop_step_is_continue_target() {
        let m = parse_module(
            "t.c",
            "fn f() { for i = 0; i < 10; i += 1 { if i == 5 { continue; } } }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        // Find the continue node and check it points at the step node.
        let continue_node = cfg
            .nodes
            .iter()
            .position(
                |nd| matches!(nd.kind, NodeKind::Stmt(s) if matches!(s.kind, StmtKind::Continue)),
            )
            .unwrap();
        let succ = cfg.nodes[continue_node].succs[0];
        assert!(
            matches!(cfg.nodes[succ].kind, NodeKind::Stmt(s) if matches!(s.kind, StmtKind::Assign{..}))
        );
        assert!(cfg.unreachable_nodes().is_empty());
    }

    #[test]
    fn for_without_cond_loops_forever() {
        let m = parse_module(
            "t.c",
            "fn f() { for ; ; { } log_msg(\"after\"); }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        // The after-join is only reachable via break; with no break it is
        // unreachable, as is the trailing statement.
        assert!(cfg.unreachable_nodes().len() >= 2);
    }

    #[test]
    fn switch_fans_out_with_arm_labels() {
        let m = parse_module(
            "t.c",
            "fn f(x: int) { switch x { case 1: { x = 1; } case 2: { x = 2; } default: { x = 3; } } }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        let cond = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Cond(_)))
            .unwrap();
        assert_eq!(cfg.nodes[cond].succs.len(), 3);
        assert_eq!(
            cfg.nodes[cond].labels,
            vec![EdgeLabel::Arm(0), EdgeLabel::Arm(1), EdgeLabel::Arm(2)]
        );
    }

    #[test]
    fn switch_without_default_has_nomatch_edge() {
        let m = parse_module(
            "t.c",
            "fn f(x: int) { switch x { case 1: { x = 1; } } x = 9; }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        let cond = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Cond(_)))
            .unwrap();
        // Arm edge + no-match edge to the join.
        assert_eq!(cfg.nodes[cond].succs.len(), 2);
        assert!(cfg.nodes[cond].labels.contains(&EdgeLabel::Arm(usize::MAX)));
        assert!(cfg.unreachable_nodes().is_empty());
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_covers_all() {
        let m = parse_module(
            "t.c",
            "fn f(x: int) { if x > 0 { x = 1; } else { x = 2; } while x < 9 { x += 1; } }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], cfg.entry);
        let mut sorted = rpo.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.node_count()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_function_is_entry_to_exit() {
        let m = parse_module("t.c", "fn f() { }", Dialect::C).unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        assert_eq!(cfg.node_count(), 2);
        assert_eq!(cfg.edge_count(), 1);
    }

    #[test]
    fn preds_mirror_succs() {
        let m = parse_module(
            "t.c",
            "fn f(x: int) { for i = 0; i < x; i += 1 { if i % 2 == 0 { continue; } break; } }",
            Dialect::C,
        )
        .unwrap();
        let cfg = Cfg::build(&m.functions[0]);
        for (id, node) in cfg.nodes.iter().enumerate() {
            assert_eq!(node.succs.len(), node.labels.len());
            for &s in &node.succs {
                assert!(cfg.nodes[s].preds.contains(&id));
            }
            for &p in &node.preds {
                assert!(cfg.nodes[p].succs.contains(&id));
            }
        }
    }
}
