//! The shared analysis context: expensive structural work done once per
//! program, consumed by every collector.
//!
//! Before this module existed, `registry`, `taint`, `interval`, `paths`
//! and `smells` each rebuilt the same per-function CFGs, and the
//! set-valued fixpoints hashed variable-name strings. An
//! [`AnalysisContext`] now owns, per program:
//!
//! * a [`SymbolTable`] interning every identifier ([`SymbolId`]s assigned
//!   in one deterministic sequential pass);
//! * one [`FunctionContext`] per function — its [`Cfg`], reverse
//!   postorder, immediate dominators, per-node def/use sets as dense
//!   symbol indices, and the precomputed dataflow / interval / bounds /
//!   path / dead-code results every collector needs;
//! * one shared interprocedural [`TaintReport`] (the legacy path computed
//!   it up to three times per program: taint features, attack-surface
//!   features, and the path-traversal checker).
//!
//! Function contexts are independent once interning is done, so
//! [`AnalysisContext::build_with`] lets callers fan their construction out
//! over a thread pool — results merge back in program order, keeping every
//! downstream feature bit-identical for any worker count.

use crate::bitset::BitSet;
use crate::cfg::{Cfg, NodeId};
use crate::cyclomatic;
use crate::dataflow::{self, DataflowStats};
use crate::interval::{self, BoundsReport, SymIntervalAnalysis};
use crate::paths::{self, PathConfig, PathReport};
use crate::symbols::{SymbolId, SymbolTable};
use crate::taint::{self, TaintReport};
use minilang::ast::{Function, Program};
use minilang::visit;
use std::collections::HashMap;

/// Function-local symbol index (dense remap of the [`SymbolId`]s a single
/// function mentions; bitset lattices are keyed by this).
pub type LocalId = u32;

/// Program-wide interning output: the symbol table plus the module-global
/// symbols, produced sequentially before any per-function work starts.
#[derive(Debug)]
pub struct ProgramSymbols {
    pub table: SymbolTable,
    /// Module globals in declaration order.
    pub globals: Vec<SymbolId>,
}

impl ProgramSymbols {
    pub fn intern(program: &Program) -> ProgramSymbols {
        let table = SymbolTable::intern_program(program);
        let globals = program
            .modules
            .iter()
            .flat_map(|m| m.globals.iter())
            .map(|g| table.lookup(&g.name).expect("global interned"))
            .collect();
        ProgramSymbols { table, globals }
    }
}

/// The identifiers one function mentions, densely renumbered: `LocalId`s
/// index bitsets whose universe is just this function's names.
#[derive(Debug)]
pub struct FnSymbols<'p> {
    /// Local index → program-wide symbol.
    pub syms: Vec<SymbolId>,
    by_name: HashMap<&'p str, LocalId>,
}

impl<'p> FnSymbols<'p> {
    pub fn build(function: &'p Function, table: &SymbolTable) -> FnSymbols<'p> {
        let mut syms = Vec::new();
        let mut by_name: HashMap<&'p str, LocalId> = HashMap::new();
        visit::function_identifiers(function, &mut |name| {
            by_name.entry(name).or_insert_with(|| {
                let id = syms.len() as LocalId;
                syms.push(table.lookup(name).expect("identifier interned"));
                id
            });
        });
        FnSymbols { syms, by_name }
    }

    /// Universe size for this function's bitsets.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Local index of `name`, if the function mentions it.
    pub fn local(&self, name: &str) -> Option<LocalId> {
        self.by_name.get(name).copied()
    }
}

/// Everything the collectors need about one function, computed exactly
/// once.
#[derive(Debug)]
pub struct FunctionContext<'p> {
    pub function: &'p Function,
    pub cfg: Cfg<'p>,
    /// Reverse postorder over the CFG (unreachable nodes appended).
    pub rpo: Vec<NodeId>,
    /// Immediate dominator per node (`None` for the entry and for
    /// unreachable nodes).
    pub idom: Vec<Option<NodeId>>,
    pub symbols: FnSymbols<'p>,
    /// Parameter locals, in signature order.
    pub param_locals: Vec<LocalId>,
    /// Per-node definition `(local, strong)`, mirroring
    /// [`dataflow::node_def`].
    pub defs: Vec<Option<(LocalId, bool)>>,
    /// Per-node used locals in visit order, duplicates preserved
    /// (mirroring [`dataflow::node_uses`] — du-pair counts are per use
    /// occurrence).
    pub uses: Vec<Vec<LocalId>>,
    pub dataflow: DataflowStats,
    pub intervals: SymIntervalAnalysis,
    pub bounds: BoundsReport,
    pub paths: PathReport,
    /// The function contains CFG-unreachable statements (dead code smell).
    pub has_dead_code: bool,
    /// Decision-point cyclomatic complexity (AST-only; no CFG needed).
    pub decision_complexity: usize,
    /// Dead-store sites `(node, local)` under the deadstore *checker's*
    /// predicate (strong defs never read, excluding params and globals) —
    /// distinct from [`DataflowStats::dead_stores`], which counts only
    /// `let`-introduced locals. Node ids and dense locals are relative to
    /// this context's own CFG/symbols, so the list survives caching.
    pub dead_store_sites: Vec<(NodeId, u32)>,
    /// FNV digest per top-level statement's printed form (program order),
    /// feeding duplicate-code detection without re-printing the body.
    pub stmt_hashes: Vec<u64>,
}

/// The *owned* expensive analysis results for one function: everything in
/// a [`FunctionContext`] that does not borrow the AST. The fixpoints here
/// (dataflow, intervals, bounds, path exploration) dominate context
/// construction cost, and they are pure functions of the function's text,
/// the global-variable name set, and the path-exploration limits — so the
/// incremental engine caches this struct per function fingerprint and
/// re-installs it without recomputation when the text is unchanged.
#[derive(Debug, Clone)]
pub struct FnPayload {
    pub dataflow: DataflowStats,
    pub intervals: SymIntervalAnalysis,
    pub bounds: BoundsReport,
    pub paths: PathReport,
    pub has_dead_code: bool,
    pub decision_complexity: usize,
    pub dead_store_sites: Vec<(NodeId, u32)>,
    pub stmt_hashes: Vec<u64>,
}

/// The cheap, borrow-carrying half of a [`FunctionContext`]: CFG, orders,
/// dominators, dense symbols, and per-node def/use sets. Linear in the
/// function size (no fixpoints), rebuilt on every extraction — cached
/// payloads index into CFG nodes and local symbols, and both are
/// deterministic functions of the function text, so a structure rebuilt
/// from identical text lines up with a cached [`FnPayload`] exactly.
pub struct FnStructure<'p> {
    pub function: &'p Function,
    pub cfg: Cfg<'p>,
    pub rpo: Vec<NodeId>,
    pub idom: Vec<Option<NodeId>>,
    pub symbols: FnSymbols<'p>,
    pub param_locals: Vec<LocalId>,
    pub defs: Vec<Option<(LocalId, bool)>>,
    pub uses: Vec<Vec<LocalId>>,
    let_locals: BitSet,
    param_set: BitSet,
    global_set: BitSet,
}

impl<'p> FnStructure<'p> {
    /// Build the structural half: CFG, reverse postorder, dominators,
    /// dense locals, def/use sets, and the membership bitsets the
    /// dataflow statistics need.
    pub fn build(function: &'p Function, program: &ProgramSymbols) -> FnStructure<'p> {
        let cfg = Cfg::build(function);
        let rpo = cfg.reverse_postorder();
        let idom = immediate_dominators(&cfg, &rpo);
        let symbols = FnSymbols::build(function, &program.table);
        let universe = symbols.len();
        let param_locals: Vec<LocalId> = function
            .params
            .iter()
            .map(|p| symbols.local(&p.name).expect("param interned"))
            .collect();

        // Per-node def/use sets as dense locals.
        let mut defs = Vec::with_capacity(cfg.node_count());
        let mut uses = Vec::with_capacity(cfg.node_count());
        for node in &cfg.nodes {
            defs.push(
                dataflow::node_def(&node.kind)
                    .map(|(name, strong)| (symbols.local(&name).expect("def interned"), strong)),
            );
            uses.push(
                dataflow::node_uses(&node.kind)
                    .into_iter()
                    .map(|name| symbols.local(&name).expect("use interned"))
                    .collect::<Vec<_>>(),
            );
        }

        // Membership sets for the dataflow statistics.
        let mut let_locals = BitSet::new(universe);
        for node in &cfg.nodes {
            if let crate::cfg::NodeKind::Stmt(stmt) = &node.kind {
                if let minilang::ast::StmtKind::Let { name, .. } = &stmt.kind {
                    let_locals.insert(symbols.local(name).expect("let interned") as usize);
                }
            }
        }
        let mut param_set = BitSet::new(universe);
        for &p in &param_locals {
            param_set.insert(p as usize);
        }
        let mut global_set = BitSet::new(universe);
        for &g in &program.globals {
            if let Some(l) = symbols.local(program.table.name(g)) {
                global_set.insert(l as usize);
            }
        }

        FnStructure {
            function,
            cfg,
            rpo,
            idom,
            symbols,
            param_locals,
            defs,
            uses,
            let_locals,
            param_set,
            global_set,
        }
    }

    /// Run the expensive fixpoints over this structure. Everything the
    /// result depends on — the structure itself, the global names folded
    /// into `global_set`, and `path_config` — is covered by the
    /// incremental engine's fingerprint salt, which is what makes the
    /// payload safely cacheable.
    pub fn compute_payload(&self, path_config: &PathConfig) -> FnPayload {
        let (dataflow, dead_store_sites) = dataflow::dataflow_stats_sym_sites(
            &self.cfg,
            &self.rpo,
            &self.defs,
            &self.uses,
            self.symbols.len(),
            &self.let_locals,
            &self.param_set,
            &self.global_set,
        );
        let intervals =
            interval::analyze_cfg_sym(&self.cfg, self.function, &self.symbols, &self.rpo);
        let bounds =
            interval::check_bounds_sym(&self.cfg, self.function, &self.symbols, &intervals);
        let paths = paths::explore_cfg(&self.cfg, self.function, path_config);
        let has_dead_code = !self.cfg.unreachable_nodes().is_empty();
        let decision_complexity = cyclomatic::decision_complexity(self.function);
        let stmt_hashes = crate::smells::stmt_print_hashes(self.function);
        FnPayload {
            dataflow,
            intervals,
            bounds,
            paths,
            has_dead_code,
            decision_complexity,
            dead_store_sites,
            stmt_hashes,
        }
    }

    /// Join the structure with a payload (freshly computed or cached)
    /// into the full context the collectors consume.
    pub fn assemble(self, payload: FnPayload) -> FunctionContext<'p> {
        FunctionContext {
            function: self.function,
            cfg: self.cfg,
            rpo: self.rpo,
            idom: self.idom,
            symbols: self.symbols,
            param_locals: self.param_locals,
            defs: self.defs,
            uses: self.uses,
            dataflow: payload.dataflow,
            intervals: payload.intervals,
            bounds: payload.bounds,
            paths: payload.paths,
            has_dead_code: payload.has_dead_code,
            decision_complexity: payload.decision_complexity,
            dead_store_sites: payload.dead_store_sites,
            stmt_hashes: payload.stmt_hashes,
        }
    }
}

impl<'p> FunctionContext<'p> {
    /// Build one function's context. Read-only over the shared interning
    /// output, so calls for different functions can run on different
    /// threads.
    pub fn build(
        function: &'p Function,
        program: &ProgramSymbols,
        path_config: &PathConfig,
    ) -> FunctionContext<'p> {
        let structure = FnStructure::build(function, program);
        let payload = structure.compute_payload(path_config);
        structure.assemble(payload)
    }

    /// The owned expensive results, cloned out for caching.
    pub fn payload(&self) -> FnPayload {
        FnPayload {
            dataflow: self.dataflow,
            intervals: self.intervals.clone(),
            bounds: self.bounds.clone(),
            paths: self.paths,
            has_dead_code: self.has_dead_code,
            decision_complexity: self.decision_complexity,
            dead_store_sites: self.dead_store_sites.clone(),
            stmt_hashes: self.stmt_hashes.clone(),
        }
    }
}

/// The shared per-program analysis context.
#[derive(Debug)]
pub struct AnalysisContext<'p> {
    pub program: &'p Program,
    pub symbols: ProgramSymbols,
    /// One context per function, in `program.functions()` order.
    pub functions: Vec<FunctionContext<'p>>,
    /// The shared interprocedural taint result.
    pub taint: TaintReport,
    path_config: PathConfig,
}

impl<'p> AnalysisContext<'p> {
    /// Build the context sequentially.
    pub fn build(program: &'p Program) -> AnalysisContext<'p> {
        Self::build_with(program, |symbols, funcs| {
            funcs
                .iter()
                .map(|&f| FunctionContext::build(f, symbols, &standard_path_config()))
                .collect()
        })
    }

    /// Build the context with caller-provided per-function fan-out
    /// (dependency inversion: this crate cannot see the thread pool, so
    /// the caller maps `FunctionContext::build` over the function list —
    /// in program order — however it likes). Interning runs first,
    /// sequentially, so the closure only ever reads the table; the
    /// interprocedural taint pass runs after the merge.
    pub fn build_with<F>(program: &'p Program, run: F) -> AnalysisContext<'p>
    where
        F: FnOnce(&ProgramSymbols, &[&'p Function]) -> Vec<FunctionContext<'p>>,
    {
        let symbols = ProgramSymbols::intern(program);
        let funcs: Vec<&Function> = program.functions().collect();
        let functions = run(&symbols, &funcs);
        debug_assert_eq!(functions.len(), funcs.len());
        let taint = taint::analyze_contexts(program, &functions);
        AnalysisContext {
            program,
            symbols,
            functions,
            taint,
            path_config: standard_path_config(),
        }
    }

    /// Assemble a context from parts the caller built itself — the
    /// incremental engine's entry point: it constructs function contexts
    /// from cached payloads and runs the memoized taint pass, then needs
    /// the same `AnalysisContext` every collector consumes. The parts
    /// must describe `program` exactly as [`AnalysisContext::build`]
    /// would produce them (functions in `program.functions()` order,
    /// payloads computed under [`standard_path_config`]).
    pub fn assemble(
        program: &'p Program,
        symbols: ProgramSymbols,
        functions: Vec<FunctionContext<'p>>,
        taint: TaintReport,
    ) -> AnalysisContext<'p> {
        debug_assert_eq!(functions.len(), program.functions().count());
        AnalysisContext {
            program,
            symbols,
            functions,
            taint,
            path_config: standard_path_config(),
        }
    }

    /// The path-exploration limits function contexts were built with.
    pub fn path_config(&self) -> &PathConfig {
        &self.path_config
    }
}

/// The per-function path-exploration limits the standard collector set
/// uses: modest bounds so one explosive function cannot swamp extraction.
pub fn standard_path_config() -> PathConfig {
    PathConfig {
        max_states: 4_000,
        ..Default::default()
    }
}

/// Immediate dominators by the Cooper–Harvey–Kennedy iteration over the
/// reverse postorder. `idom[entry]` and unreachable nodes are `None`.
pub fn immediate_dominators(cfg: &Cfg<'_>, order: &[NodeId]) -> Vec<Option<NodeId>> {
    let n = cfg.node_count();
    let mut pos = vec![usize::MAX; n];
    for (i, &id) in order.iter().enumerate() {
        pos[id] = i;
    }
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[cfg.entry] = Some(cfg.entry);

    let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
        while a != b {
            while pos[a] > pos[b] {
                a = idom[a].expect("processed");
            }
            while pos[b] > pos[a] {
                b = idom[b].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &id in order {
            if id == cfg.entry {
                continue;
            }
            let mut new_idom: Option<NodeId> = None;
            for &p in &cfg.nodes[id].preds {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if new_idom.is_some() && idom[id] != new_idom {
                idom[id] = new_idom;
                changed = true;
            }
        }
    }
    // The entry dominates itself by convention above; report it as None so
    // callers see a proper tree root.
    idom[cfg.entry] = None;
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program(src: &str) -> Program {
        parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    #[test]
    fn context_builds_every_function_once() {
        let p = program(
            "global limit: int = 8;
             fn main_loop(n: int) -> int {
                 let acc: int = 0;
                 for i = 0; i < n; i += 1 { acc += i; }
                 return acc;
             }
             @endpoint(network)
             fn handle(req: str) { let b: str[16]; strcpy(b, req); }",
        );
        let cx = AnalysisContext::build(&p);
        assert_eq!(cx.functions.len(), 2);
        assert_eq!(cx.functions[0].function.name, "main_loop");
        assert_eq!(cx.functions[1].function.name, "handle");
        assert!(!cx.symbols.table.is_empty());
        assert_eq!(cx.symbols.globals.len(), 1);
        // The shared taint report sees the endpoint flow.
        assert_eq!(cx.taint.flows.len(), 1);
        // Dataflow stats were computed per function.
        assert!(cx.functions[0].dataflow.defs > 0);
    }

    #[test]
    fn build_with_merges_in_caller_order() {
        let p = program("fn a() { } fn b() { }");
        let cx = AnalysisContext::build_with(&p, |symbols, funcs| {
            // Build in reverse, then restore program order — what a
            // work-stealing pool's ordered merge does.
            let mut out: Vec<FunctionContext<'_>> = funcs
                .iter()
                .rev()
                .map(|&f| FunctionContext::build(f, symbols, &standard_path_config()))
                .collect();
            out.reverse();
            out
        });
        assert_eq!(cx.functions[0].function.name, "a");
        assert_eq!(cx.functions[1].function.name, "b");
    }

    #[test]
    fn dominators_on_diamond() {
        let p = program(
            "fn f(x: int) {
                 if x > 0 { x = 1; } else { x = 2; }
                 x = 3;
             }",
        );
        let cx = AnalysisContext::build(&p);
        let fcx = &cx.functions[0];
        let cfg = &fcx.cfg;
        // Entry has no idom; every other reachable node is dominated.
        assert!(fcx.idom[cfg.entry].is_none());
        for &id in &fcx.rpo {
            if id != cfg.entry {
                assert!(
                    fcx.idom[id].is_some(),
                    "reachable node {id} missing an idom"
                );
            }
        }
        // The branches' idom is the condition; the join and the following
        // statement are dominated by the condition, not by either branch.
        let cond = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.kind, crate::cfg::NodeKind::Cond(_)))
            .unwrap();
        let after: Vec<NodeId> = (0..cfg.node_count())
            .filter(|&id| fcx.idom[id] == Some(cond))
            .collect();
        assert!(after.len() >= 3, "cond should dominate both arms + join");
    }

    #[test]
    fn dominators_skip_unreachable_nodes() {
        let p = program("fn f() -> int { return 1; let x: int = 2; }");
        let cx = AnalysisContext::build(&p);
        let fcx = &cx.functions[0];
        let unreachable = fcx.cfg.unreachable_nodes();
        assert!(!unreachable.is_empty());
        for id in unreachable {
            assert!(fcx.idom[id].is_none());
        }
        assert!(fcx.has_dead_code);
    }

    #[test]
    fn fn_symbols_are_function_dense() {
        let p = program(
            "fn f(a: int) -> int { let x: int = a; return x; }
             fn g(b: int) -> int { return b; }",
        );
        let cx = AnalysisContext::build(&p);
        let f = &cx.functions[0].symbols;
        let g = &cx.functions[1].symbols;
        // Each function's locals start at 0 regardless of global numbering.
        assert_eq!(f.local("f"), Some(0));
        assert_eq!(f.local("a"), Some(1));
        assert_eq!(f.local("x"), Some(2));
        assert_eq!(g.local("g"), Some(0));
        assert_eq!(g.local("b"), Some(1));
        assert_eq!(f.local("b"), None);
        // And map back to distinct program-wide symbols.
        assert_ne!(f.syms[1], g.syms[1]);
    }
}
