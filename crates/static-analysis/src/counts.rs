//! Basic structural counts.
//!
//! Shin et al. [61] predicted 80 % of vulnerable files from "most basic
//! properties of code files such as LoC, number of functions, number of
//! declarations, lines of preprocessed code, number of branches, and number
//! of input and output arguments to a function". This module supplies those
//! counts plus the interface counts the TCB-comparison literature uses.

use minilang::ast::{Function, Module, Program, StmtKind, Type};
use minilang::visit;

/// Structural counts for a module or program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructuralCounts {
    /// Function definitions.
    pub functions: usize,
    /// Local `let` declarations plus globals.
    pub declarations: usize,
    /// Global variables.
    pub globals: usize,
    /// Branch statements (`if`, `while`, conditional `for`, `switch` arms).
    pub branches: usize,
    /// Loop statements (`while` + `for`).
    pub loops: usize,
    /// Total formal parameters across functions ("input arguments").
    pub parameters: usize,
    /// Functions returning a value ("output arguments").
    pub returning_functions: usize,
    /// Functions annotated as endpoints — the program's *interfaces*.
    pub endpoints: usize,
    /// Functions annotated `@priv(root)`.
    pub privileged_functions: usize,
    /// Buffer declarations (`T[n]` locals, params or globals).
    pub buffers: usize,
    /// Total declared buffer capacity in elements.
    pub buffer_capacity: usize,
    /// Call expressions.
    pub calls: usize,
    /// Return statements.
    pub returns: usize,
}

impl StructuralCounts {
    fn add_function(&mut self, f: &Function) {
        self.functions += 1;
        self.parameters += f.params.len();
        if f.ret != Type::Void {
            self.returning_functions += 1;
        }
        if !f.endpoint_channels().is_empty() {
            self.endpoints += 1;
        }
        if f.privilege() == minilang::ast::PrivLevel::Root {
            self.privileged_functions += 1;
        }
        for p in &f.params {
            if let Some(cap) = p.ty.buffer_capacity() {
                self.buffers += 1;
                self.buffer_capacity += cap;
            }
        }
        visit::walk_stmts(&f.body, &mut |stmt| match &stmt.kind {
            StmtKind::Let { ty, .. } => {
                self.declarations += 1;
                if let Some(cap) = ty.buffer_capacity() {
                    self.buffers += 1;
                    self.buffer_capacity += cap;
                }
            }
            StmtKind::If { .. } | StmtKind::While { .. } => {
                self.branches += 1;
                if matches!(stmt.kind, StmtKind::While { .. }) {
                    self.loops += 1;
                }
            }
            StmtKind::For { cond, .. } => {
                self.loops += 1;
                if cond.is_some() {
                    self.branches += 1;
                }
            }
            StmtKind::Switch { cases, .. } => self.branches += cases.len(),
            StmtKind::Return(_) => self.returns += 1,
            _ => {}
        });
        self.calls += visit::collect_calls(&f.body).len();
    }

    fn add_module(&mut self, m: &Module) {
        self.globals += m.globals.len();
        self.declarations += m.globals.len();
        for g in &m.globals {
            if let Some(cap) = g.ty.buffer_capacity() {
                self.buffers += 1;
                self.buffer_capacity += cap;
            }
        }
        for f in &m.functions {
            self.add_function(f);
        }
    }
}

/// Counts for one module.
pub fn module_counts(module: &Module) -> StructuralCounts {
    let mut c = StructuralCounts::default();
    c.add_module(module);
    c
}

/// Counts across a whole program.
pub fn program_counts(program: &Program) -> StructuralCounts {
    let mut c = StructuralCounts::default();
    for m in &program.modules {
        c.add_module(m);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, Dialect};

    fn counts(src: &str) -> StructuralCounts {
        module_counts(&parse_module("t.c", src, Dialect::C).unwrap())
    }

    #[test]
    fn counts_everything_once() {
        let c = counts(
            "global limit: int = 9;
             global table: int[128];
             @endpoint(network) @priv(root)
             fn handle(req: str, n: int) -> int {
                 let buf: str[64];
                 let i: int = 0;
                 while i < n {
                     if i % 2 == 0 { i += 1; } else { i += 2; }
                 }
                 for j = 0; j < 4; j += 1 { send(0, req); }
                 switch n { case 1: { } case 2: { } default: { } }
                 return i;
             }
             fn helper() { log_msg(\"hi\"); }",
        );
        assert_eq!(c.functions, 2);
        assert_eq!(c.globals, 2);
        assert_eq!(c.declarations, 4); // 2 globals + buf + i
        assert_eq!(c.parameters, 2);
        assert_eq!(c.returning_functions, 1);
        assert_eq!(c.endpoints, 1);
        assert_eq!(c.privileged_functions, 1);
        assert_eq!(c.buffers, 2); // table + buf
        assert_eq!(c.buffer_capacity, 192);
        assert_eq!(c.branches, 1 + 1 + 1 + 2); // while, if, for-cond, 2 cases
        assert_eq!(c.loops, 2);
        assert_eq!(c.calls, 2); // send, log_msg
        assert_eq!(c.returns, 1);
    }

    #[test]
    fn empty_module_is_zero() {
        assert_eq!(counts(""), StructuralCounts::default());
    }

    #[test]
    fn param_buffers_counted() {
        let c = counts("fn f(buf: int[32]) { }");
        assert_eq!(c.buffers, 1);
        assert_eq!(c.buffer_capacity, 32);
    }

    #[test]
    fn unconditional_for_is_loop_not_branch() {
        let c = counts("fn f() { for ; ; { break; } }");
        assert_eq!(c.loops, 1);
        assert_eq!(c.branches, 0);
    }

    #[test]
    fn program_counts_aggregate_modules() {
        let files = vec![
            ("a.c".to_string(), "fn a() {}".to_string()),
            (
                "b.c".to_string(),
                "global g: int; fn b(x: int) -> int { return x; }".to_string(),
            ),
        ];
        let p = minilang::parse_program("app", Dialect::C, &files).unwrap();
        let c = program_counts(&p);
        assert_eq!(c.functions, 2);
        assert_eq!(c.globals, 1);
        assert_eq!(c.parameters, 1);
        assert_eq!(c.returns, 1);
    }
}
