//! McCabe cyclomatic complexity [47].
//!
//! The paper's Figure 3 plots cyclomatic complexity against vulnerability
//! counts. Complexity is "the number of linearly independent paths through a
//! program's source code", computed here two equivalent ways:
//!
//! * graph form `M = E − N + 2P` over the real CFG, and
//! * the decision-point shortcut `M = D + 1`, where `D` counts branch
//!   conditions (`if`, `while`, conditional `for`, each `case`) plus each
//!   short-circuit `&&`/`||` inside conditions (extended complexity).
//!
//! Both are exposed; tests assert they agree on structured control flow.

use crate::cfg::Cfg;
use minilang::ast::{ExprKind, Function, Module, Program, StmtKind};
use minilang::visit;

/// Cyclomatic complexity of one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionComplexity {
    /// `E − N + 2` over the function's CFG.
    pub graph: usize,
    /// Decision points + 1 (counting `case` arms and short-circuit operators).
    pub decision: usize,
}

/// Compute complexity for a single function.
pub fn function_complexity(f: &Function) -> FunctionComplexity {
    let cfg = Cfg::build(f);
    let e = cfg.edge_count() as isize;
    let n = cfg.node_count() as isize;
    let graph = (e - n + 2).max(1) as usize;
    FunctionComplexity {
        graph,
        decision: decision_complexity(f),
    }
}

/// Decision-point complexity alone (`D + 1`). AST-only — no CFG build —
/// which is all the program-level aggregate ever used, so the fused engine
/// calls this directly.
pub fn decision_complexity(f: &Function) -> usize {
    let mut decisions = 0usize;
    visit::walk_stmts(&f.body, &mut |stmt| match &stmt.kind {
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
            decisions += 1 + short_circuits(cond);
        }
        StmtKind::For { cond: Some(c), .. } => {
            decisions += 1 + short_circuits(c);
        }
        StmtKind::Switch { cases, .. } => {
            decisions += cases.len();
        }
        _ => {}
    });
    decisions + 1
}

fn short_circuits(cond: &minilang::Expr) -> usize {
    let mut n = 0;
    visit::walk_expr(cond, &mut |e| {
        if let ExprKind::Binary { op, .. } = &e.kind {
            if op.is_logical() {
                n += 1;
            }
        }
    });
    n
}

/// Distribution of per-function complexities across a module or program.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityStats {
    /// Sum of per-function decision complexities — the figure the paper's
    /// x-axis reports ("cyclomatic complexity" of the whole application).
    pub total: usize,
    /// Largest single-function complexity.
    pub max: usize,
    /// Mean per-function complexity (0 for empty programs).
    pub mean: f64,
    /// Number of functions with complexity above the classic McCabe
    /// "restructure this" threshold of 10.
    pub over_10: usize,
    /// Number of functions measured.
    pub functions: usize,
}

impl ComplexityStats {
    pub(crate) fn from_values(values: &[usize]) -> ComplexityStats {
        let total: usize = values.iter().sum();
        ComplexityStats {
            total,
            max: values.iter().copied().max().unwrap_or(0),
            mean: if values.is_empty() {
                0.0
            } else {
                total as f64 / values.len() as f64
            },
            over_10: values.iter().filter(|&&v| v > 10).count(),
            functions: values.len(),
        }
    }
}

/// Complexity statistics for one module.
pub fn module_complexity(module: &Module) -> ComplexityStats {
    let values: Vec<usize> = module
        .functions
        .iter()
        .map(|f| function_complexity(f).decision)
        .collect();
    ComplexityStats::from_values(&values)
}

/// Complexity statistics across a whole program.
pub fn program_complexity(program: &Program) -> ComplexityStats {
    let values: Vec<usize> = program
        .functions()
        .map(|f| function_complexity(f).decision)
        .collect();
    ComplexityStats::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, Dialect};

    fn complexity(src: &str) -> FunctionComplexity {
        let m = parse_module("t.c", src, Dialect::C).unwrap();
        function_complexity(&m.functions[0])
    }

    #[test]
    fn straight_line_is_one() {
        let c = complexity("fn f() { let x: int = 1; x = 2; }");
        assert_eq!(c.graph, 1);
        assert_eq!(c.decision, 1);
    }

    #[test]
    fn single_if_is_two() {
        let c = complexity("fn f(x: int) { if x > 0 { x = 1; } }");
        assert_eq!(c.graph, 2);
        assert_eq!(c.decision, 2);
    }

    #[test]
    fn if_else_is_two() {
        let c = complexity("fn f(x: int) { if x > 0 { x = 1; } else { x = 2; } }");
        assert_eq!(c.graph, 2);
        assert_eq!(c.decision, 2);
    }

    #[test]
    fn loop_is_two() {
        let c = complexity("fn f() { let i: int = 0; while i < 5 { i += 1; } }");
        assert_eq!(c.graph, 2);
        assert_eq!(c.decision, 2);
    }

    #[test]
    fn nested_and_sequential_decisions_accumulate() {
        let c = complexity(
            "fn f(x: int) {
                if x > 0 { if x > 1 { x = 2; } }
                while x < 10 { x += 1; }
                for i = 0; i < 3; i += 1 { x += i; }
            }",
        );
        assert_eq!(c.decision, 5);
        assert_eq!(c.graph, 5);
    }

    #[test]
    fn switch_cases_count_as_decisions() {
        let c = complexity(
            "fn f(x: int) { switch x { case 1: { } case 2: { } case 3: { } default: { } } }",
        );
        assert_eq!(c.decision, 4);
        assert_eq!(c.graph, 4);
    }

    #[test]
    fn short_circuit_operators_add_extended_complexity() {
        let c = complexity("fn f(a: int, b: int) { if a > 0 && b > 0 || a < -5 { a = 1; } }");
        // 1 (if) + 2 (&&, ||) + 1 = 4 by the decision method.
        assert_eq!(c.decision, 4);
        // The CFG does not expand short-circuits into extra blocks, so the
        // graph method reports plain complexity 2 here.
        assert_eq!(c.graph, 2);
    }

    #[test]
    fn graph_and_decision_agree_without_short_circuits() {
        for src in [
            "fn f() { }",
            "fn f(x: int) -> int { if x > 1 { return 1; } return 0; }",
            "fn f(x: int) { while x > 0 { x -= 1; if x == 3 { break; } } }",
            "fn f(x: int) { for i = 0; i < x; i += 1 { if i % 2 == 0 { continue; } } }",
            "fn f(x: int) { switch x { case 1: { } case 2: { } default: { } } }",
        ] {
            let c = complexity(src);
            assert_eq!(c.graph, c.decision, "disagree on {src}");
        }
    }

    #[test]
    fn stats_aggregate() {
        let m = parse_module(
            "t.c",
            "fn a() { }
             fn b(x: int) { if x > 0 { } if x > 1 { } }
             fn c(x: int) {
                if x > 0 { } if x > 1 { } if x > 2 { } if x > 3 { } if x > 4 { }
                if x > 5 { } if x > 6 { } if x > 7 { } if x > 8 { } if x > 9 { }
             }",
            Dialect::C,
        )
        .unwrap();
        let stats = module_complexity(&m);
        assert_eq!(stats.functions, 3);
        assert_eq!(stats.total, 1 + 3 + 11);
        assert_eq!(stats.max, 11);
        assert_eq!(stats.over_10, 1);
        assert!((stats.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_program_stats_are_zero() {
        let m = parse_module("t.c", "", Dialect::C).unwrap();
        let stats = module_complexity(&m);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.functions, 0);
    }
}
