//! Classic data-flow analyses [56] over the CFG.
//!
//! §4.1 of the paper: *"data flow analysis can determine numbers of
//! expressions or functions influencing the execution of other parts of the
//! code"*. This module provides:
//!
//! * **reaching definitions** (forward, may) — which assignments can reach
//!   each program point;
//! * **liveness** (backward, may) — which variables are live out of each
//!   node, exposing dead stores;
//! * **def-use chains** — the count of definition→use influence edges, the
//!   "expressions influencing other parts" feature the paper wants.
//!
//! All three run a standard worklist fixpoint; sets are bit-vectors for
//! predictable performance on the synthesized corpus.

use crate::cfg::{Cfg, NodeId, NodeKind};
use minilang::ast::{Expr, ExprKind, Function, LValue, Stmt, StmtKind};
use minilang::visit;
use std::collections::HashMap;

pub use crate::bitset::BitSet;

/// One definition site: variable `var` defined at CFG node `node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Def {
    pub var: String,
    pub node: NodeId,
    /// Strong defs (plain assignment / let) kill earlier defs of the same
    /// variable; weak defs (`buf[i] = ..`) do not.
    pub strong: bool,
}

/// The variable a node defines, if any.
pub fn node_def(kind: &NodeKind<'_>) -> Option<(String, bool)> {
    match kind {
        NodeKind::Stmt(stmt) => match &stmt.kind {
            // A bare `let x: int;` declares storage without writing it, so it
            // is not a definition — this is what lets the analysis flag
            // reads of uninitialized locals.
            StmtKind::Let { init: None, .. } => None,
            StmtKind::Let { name, .. } => Some((name.clone(), true)),
            StmtKind::Assign { target, .. } => match target {
                LValue::Var(name, _) => Some((name.clone(), true)),
                LValue::Index { base, .. } => Some((base.clone(), false)),
            },
            _ => None,
        },
        _ => None,
    }
}

/// The variables a node reads.
pub fn node_uses(kind: &NodeKind<'_>) -> Vec<String> {
    let mut out = Vec::new();
    let mut add_expr = |e: &Expr| {
        visit::walk_expr(e, &mut |e| {
            if let ExprKind::Var(name) = &e.kind {
                out.push(name.clone());
            }
        });
    };
    match kind {
        NodeKind::Stmt(stmt) => {
            for e in visit::stmt_exprs(stmt) {
                add_expr(e);
            }
            // A compound assignment (`x += e`) also reads x; an indexed
            // write (`buf[i] = e`) reads the buffer it partially updates.
            if let StmtKind::Assign { target, op, .. } = &stmt.kind {
                if op.is_some() || matches!(target, LValue::Index { .. }) {
                    out.push(target.base_name().to_string());
                }
            }
        }
        NodeKind::Cond(cond) => add_expr(cond),
        NodeKind::Entry | NodeKind::Exit | NodeKind::Join => {}
    }
    out
}

fn collect_stmt_of<'a>(kind: &NodeKind<'a>) -> Option<&'a Stmt> {
    match kind {
        NodeKind::Stmt(s) => Some(s),
        _ => None,
    }
}

/// Result of the reaching-definitions analysis.
#[derive(Debug)]
pub struct ReachingDefs {
    /// All definition sites, indexed by def id.
    pub defs: Vec<Def>,
    /// For each node, the set of def ids reaching its entry.
    pub reach_in: Vec<BitSet>,
}

/// Run reaching definitions over the CFG.
pub fn reaching_definitions(cfg: &Cfg<'_>) -> ReachingDefs {
    // Enumerate defs.
    let mut defs: Vec<Def> = Vec::new();
    let mut defs_at: Vec<Option<usize>> = vec![None; cfg.node_count()];
    let mut defs_of_var: HashMap<String, Vec<usize>> = HashMap::new();
    for (id, node) in cfg.nodes.iter().enumerate() {
        if let Some((var, strong)) = node_def(&node.kind) {
            let def_id = defs.len();
            defs_of_var.entry(var.clone()).or_default().push(def_id);
            defs.push(Def {
                var,
                node: id,
                strong,
            });
            defs_at[id] = Some(def_id);
        }
    }

    let universe = defs.len();
    // gen/kill per node.
    let mut gen: Vec<BitSet> = Vec::with_capacity(cfg.node_count());
    let mut kill: Vec<BitSet> = Vec::with_capacity(cfg.node_count());
    for &slot in defs_at.iter().take(cfg.node_count()) {
        let mut g = BitSet::new(universe);
        let mut k = BitSet::new(universe);
        if let Some(def_id) = slot {
            g.insert(def_id);
            if defs[def_id].strong {
                for &other in &defs_of_var[&defs[def_id].var] {
                    if other != def_id {
                        k.insert(other);
                    }
                }
            }
        }
        gen.push(g);
        kill.push(k);
    }

    // Worklist fixpoint in reverse post-order.
    let order = cfg.reverse_postorder();
    let mut reach_in = vec![BitSet::new(universe); cfg.node_count()];
    let mut reach_out = vec![BitSet::new(universe); cfg.node_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for &id in &order {
            let mut inset = BitSet::new(universe);
            for &p in &cfg.nodes[id].preds {
                inset.union_with(&reach_out[p]);
            }
            let mut outset = inset.clone();
            outset.subtract(&kill[id]);
            outset.union_with(&gen[id]);
            if outset != reach_out[id] {
                reach_out[id] = outset;
                changed = true;
            }
            reach_in[id] = inset;
        }
    }
    ReachingDefs { defs, reach_in }
}

/// Result of liveness analysis.
#[derive(Debug)]
pub struct Liveness {
    /// Variable name table; sets index into it.
    pub vars: Vec<String>,
    /// Live-out variable ids per node.
    pub live_out: Vec<BitSet>,
    /// Live-in variable ids per node.
    pub live_in: Vec<BitSet>,
}

impl Liveness {
    fn var_id(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// True if `name` is live out of `node`.
    pub fn is_live_out(&self, node: NodeId, name: &str) -> bool {
        self.var_id(name)
            .is_some_and(|v| self.live_out[node].contains(v))
    }
}

/// Run liveness over the CFG (backward may-analysis).
pub fn liveness(cfg: &Cfg<'_>) -> Liveness {
    // Variable table from every def and use.
    let mut vars: Vec<String> = Vec::new();
    let mut id_of: HashMap<String, usize> = HashMap::new();
    let intern = |name: String, vars: &mut Vec<String>, id_of: &mut HashMap<String, usize>| {
        *id_of.entry(name.clone()).or_insert_with(|| {
            vars.push(name);
            vars.len() - 1
        })
    };
    let mut uses: Vec<Vec<usize>> = Vec::with_capacity(cfg.node_count());
    let mut defs: Vec<Option<(usize, bool)>> = Vec::with_capacity(cfg.node_count());
    for node in &cfg.nodes {
        let u: Vec<usize> = node_uses(&node.kind)
            .into_iter()
            .map(|n| intern(n, &mut vars, &mut id_of))
            .collect();
        let d = node_def(&node.kind).map(|(n, strong)| (intern(n, &mut vars, &mut id_of), strong));
        uses.push(u);
        defs.push(d);
    }

    let universe = vars.len();
    let mut live_in = vec![BitSet::new(universe); cfg.node_count()];
    let mut live_out = vec![BitSet::new(universe); cfg.node_count()];
    // Backward: iterate post-order (reverse of RPO).
    let mut order = cfg.reverse_postorder();
    order.reverse();
    let mut changed = true;
    while changed {
        changed = false;
        for &id in &order {
            let mut out = BitSet::new(universe);
            for &s in &cfg.nodes[id].succs {
                out.union_with(&live_in[s]);
            }
            let mut inset = out.clone();
            if let Some((d, strong)) = defs[id] {
                if strong {
                    inset.remove(d);
                }
            }
            for &u in &uses[id] {
                inset.insert(u);
            }
            if inset != live_in[id] {
                live_in[id] = inset;
                changed = true;
            }
            live_out[id] = out;
        }
    }
    Liveness {
        vars,
        live_out,
        live_in,
    }
}

/// Aggregate data-flow statistics used as features.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DataflowStats {
    /// Number of definition sites.
    pub defs: usize,
    /// Number of def→use chain edges (a def reaches a node that uses its
    /// variable).
    pub du_pairs: usize,
    /// Definitions whose value is never used (dead stores).
    pub dead_stores: usize,
    /// Uses with no reaching definition in the function (reads of
    /// parameters/globals are excluded by construction of the def table, so
    /// this counts genuinely uninitialized locals).
    pub possibly_uninitialized_uses: usize,
}

/// Compute def-use statistics for one function's CFG. Parameter names are
/// read straight off the function so callers iterating a whole program
/// don't clone a `Vec<String>` per function.
pub fn dataflow_stats(cfg: &Cfg<'_>, function: &Function, globals: &[String]) -> DataflowStats {
    let rd = reaching_definitions(cfg);
    let lv = liveness(cfg);

    // Local variables declared by `let`.
    let mut locals: Vec<String> = Vec::new();
    for node in &cfg.nodes {
        if let Some(stmt) = collect_stmt_of(&node.kind) {
            if let StmtKind::Let { name, .. } = &stmt.kind {
                if !locals.contains(name) {
                    locals.push(name.clone());
                }
            }
        }
    }

    let mut stats = DataflowStats {
        defs: rd.defs.len(),
        ..Default::default()
    };

    // du pairs + uninitialized uses.
    for (id, node) in cfg.nodes.iter().enumerate() {
        for used in node_uses(&node.kind) {
            let reaching: Vec<usize> = rd.reach_in[id]
                .iter()
                .filter(|&d| rd.defs[d].var == used)
                .collect();
            stats.du_pairs += reaching.len();
            let is_param = function.params.iter().any(|p| p.name == used);
            let is_tracked_local = locals.contains(&used) && !is_param && !globals.contains(&used);
            if reaching.is_empty() && is_tracked_local {
                stats.possibly_uninitialized_uses += 1;
            }
        }
    }

    // Dead stores: a strong def of a local whose variable is not live out of
    // the defining node. (Bare `let` declarations never appear in the def
    // table, so every def here is a real store.)
    for def in &rd.defs {
        if !def.strong || !locals.contains(&def.var) {
            continue;
        }
        if !lv.is_live_out(def.node, &def.var) {
            stats.dead_stores += 1;
        }
    }
    stats
}

/// Symbol-indexed variant of [`dataflow_stats`], used by the fused engine:
/// the caller (a [`crate::context::FunctionContext`]) has already built the
/// CFG, its reverse postorder and the per-node def/use sets as dense
/// function-local symbol indices, so this runs both fixpoints without
/// allocating a single string. Results are identical to the legacy path —
/// du-pairs are still counted per use *occurrence* and the same
/// local/param/global classification applies.
#[allow(clippy::too_many_arguments)]
pub fn dataflow_stats_sym(
    cfg: &Cfg<'_>,
    order: &[NodeId],
    node_defs: &[Option<(u32, bool)>],
    node_uses: &[Vec<u32>],
    universe: usize,
    let_locals: &BitSet,
    params: &BitSet,
    globals: &BitSet,
) -> DataflowStats {
    dataflow_stats_sym_sites(
        cfg, order, node_defs, node_uses, universe, let_locals, params, globals,
    )
    .0
}

/// [`dataflow_stats_sym`] plus the dead-store *sites* the `deadstore`
/// bug checker reports: `(defining node, local)` for every strong def of
/// a non-parameter, non-global variable that is not live out of its node
/// (the checker's slightly wider predicate — the `dead_stores` statistic
/// keeps counting `let`-declared locals only, exactly as before). Sites
/// are structure-relative (node ids and dense locals, no spans), so they
/// cache safely in a [`crate::context::FnPayload`] and the checker can
/// re-anchor them against any identical-text rebuild of the CFG.
#[allow(clippy::too_many_arguments)]
pub fn dataflow_stats_sym_sites(
    cfg: &Cfg<'_>,
    order: &[NodeId],
    node_defs: &[Option<(u32, bool)>],
    node_uses: &[Vec<u32>],
    universe: usize,
    let_locals: &BitSet,
    params: &BitSet,
    globals: &BitSet,
) -> (DataflowStats, Vec<(NodeId, u32)>) {
    // Enumerate def sites in node order (same ids the legacy path assigns).
    struct SymDef {
        var: u32,
        node: NodeId,
        strong: bool,
    }
    let mut defs: Vec<SymDef> = Vec::new();
    let mut defs_at: Vec<Option<usize>> = vec![None; cfg.node_count()];
    let mut defs_of_var: Vec<Vec<usize>> = vec![Vec::new(); universe];
    for (id, slot) in node_defs.iter().enumerate() {
        if let Some((var, strong)) = *slot {
            let def_id = defs.len();
            defs_of_var[var as usize].push(def_id);
            defs.push(SymDef {
                var,
                node: id,
                strong,
            });
            defs_at[id] = Some(def_id);
        }
    }

    // Reaching definitions: forward may-analysis over def ids.
    let def_universe = defs.len();
    let mut reach_in = vec![BitSet::new(def_universe); cfg.node_count()];
    let mut reach_out = vec![BitSet::new(def_universe); cfg.node_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for &id in order {
            let mut inset = BitSet::new(def_universe);
            for &p in &cfg.nodes[id].preds {
                inset.union_with(&reach_out[p]);
            }
            let mut outset = inset.clone();
            if let Some(def_id) = defs_at[id] {
                if defs[def_id].strong {
                    for &other in &defs_of_var[defs[def_id].var as usize] {
                        if other != def_id {
                            outset.remove(other);
                        }
                    }
                }
                outset.insert(def_id);
            }
            if outset != reach_out[id] {
                reach_out[id] = outset;
                changed = true;
            }
            reach_in[id] = inset;
        }
    }

    // Liveness: backward may-analysis over the local-symbol universe.
    let mut live_in = vec![BitSet::new(universe); cfg.node_count()];
    let mut live_out = vec![BitSet::new(universe); cfg.node_count()];
    changed = true;
    while changed {
        changed = false;
        for &id in order.iter().rev() {
            let mut out = BitSet::new(universe);
            for &s in &cfg.nodes[id].succs {
                out.union_with(&live_in[s]);
            }
            let mut inset = out.clone();
            if let Some((d, strong)) = node_defs[id] {
                if strong {
                    inset.remove(d as usize);
                }
            }
            for &u in &node_uses[id] {
                inset.insert(u as usize);
            }
            if inset != live_in[id] {
                live_in[id] = inset;
                changed = true;
            }
            live_out[id] = out;
        }
    }

    let mut stats = DataflowStats {
        defs: defs.len(),
        ..Default::default()
    };

    // du pairs + uninitialized uses (per use occurrence, like the legacy
    // path).
    for (id, uses) in node_uses.iter().enumerate() {
        for &used in uses {
            let reaching = defs_of_var[used as usize]
                .iter()
                .filter(|&&d| reach_in[id].contains(d))
                .count();
            stats.du_pairs += reaching;
            let is_tracked_local = let_locals.contains(used as usize)
                && !params.contains(used as usize)
                && !globals.contains(used as usize);
            if reaching == 0 && is_tracked_local {
                stats.possibly_uninitialized_uses += 1;
            }
        }
    }

    // Dead stores: strong def of a `let`-declared local not live out of its
    // node. Sites use the deadstore checker's predicate (any non-param,
    // non-global variable) so its diagnostics can be replayed from cache.
    let mut sites = Vec::new();
    for def in &defs {
        if !def.strong || live_out[def.node].contains(def.var as usize) {
            continue;
        }
        if let_locals.contains(def.var as usize) {
            stats.dead_stores += 1;
        }
        if !params.contains(def.var as usize) && !globals.contains(def.var as usize) {
            sites.push((def.node, def.var));
        }
    }
    (stats, sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, Dialect};

    fn with_cfg<R>(src: &str, f: impl FnOnce(&Cfg<'_>, &minilang::Function) -> R) -> R {
        let m = parse_module("t.c", src, Dialect::C).unwrap();
        let func = &m.functions[0];
        let cfg = Cfg::build(func);
        f(&cfg, func)
    }

    fn stats(src: &str) -> DataflowStats {
        with_cfg(src, |cfg, func| dataflow_stats(cfg, func, &[]))
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(129));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn bitset_union_and_subtract() {
        let mut a = BitSet::new(10);
        a.insert(1);
        let mut b = BitSet::new(10);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn straight_line_reaching_defs() {
        with_cfg("fn f() { let x: int = 1; let y: int = x; }", |cfg, _| {
            let rd = reaching_definitions(cfg);
            assert_eq!(rd.defs.len(), 2);
            // At the second let, the def of x reaches.
            let y_node = rd.defs.iter().find(|d| d.var == "y").unwrap().node;
            let reaching: Vec<&str> = rd.reach_in[y_node]
                .iter()
                .map(|d| rd.defs[d].var.as_str())
                .collect();
            assert_eq!(reaching, vec!["x"]);
        });
    }

    #[test]
    fn strong_def_kills_previous() {
        with_cfg(
            "fn f() { let x: int = 1; x = 2; let y: int = x; }",
            |cfg, _| {
                let rd = reaching_definitions(cfg);
                let y_node = rd.defs.iter().find(|d| d.var == "y").unwrap().node;
                let reaching: Vec<usize> = rd.reach_in[y_node]
                    .iter()
                    .filter(|&d| rd.defs[d].var == "x")
                    .collect();
                // Only the second def of x reaches.
                assert_eq!(reaching.len(), 1);
                assert!(
                    rd.defs[reaching[0]].node > rd.defs.iter().find(|d| d.var == "x").unwrap().node
                );
            },
        );
    }

    #[test]
    fn weak_def_does_not_kill() {
        with_cfg(
            "fn f(i: int) { let b: int[8]; b[0] = 1; b[i] = 2; let y: int = b[0]; }",
            |cfg, _| {
                let rd = reaching_definitions(cfg);
                let y_node = rd.defs.iter().find(|d| d.var == "y").unwrap().node;
                let reaching_b = rd.reach_in[y_node]
                    .iter()
                    .filter(|&d| rd.defs[d].var == "b")
                    .count();
                // b[0]= and b[i]= both reach (weak defs never kill); the
                // bare `let b` declaration is not a def.
                assert_eq!(reaching_b, 2);
            },
        );
    }

    #[test]
    fn branch_merges_defs() {
        with_cfg(
            "fn f(c: int) { let x: int = 0; if c > 0 { x = 1; } else { x = 2; } let y: int = x; }",
            |cfg, _| {
                let rd = reaching_definitions(cfg);
                let y_node = rd.defs.iter().find(|d| d.var == "y").unwrap().node;
                let reaching_x = rd.reach_in[y_node]
                    .iter()
                    .filter(|&d| rd.defs[d].var == "x")
                    .count();
                // Both branch defs reach the join; the initial def is killed
                // on both paths.
                assert_eq!(reaching_x, 2);
            },
        );
    }

    #[test]
    fn loop_defs_reach_around_back_edge() {
        with_cfg(
            "fn f(n: int) { let i: int = 0; while i < n { i = i + 1; } let z: int = i; }",
            |cfg, _| {
                let rd = reaching_definitions(cfg);
                let z_node = rd.defs.iter().find(|d| d.var == "z").unwrap().node;
                let reaching_i = rd.reach_in[z_node]
                    .iter()
                    .filter(|&d| rd.defs[d].var == "i")
                    .count();
                // Initial def and loop-body def both reach after the loop.
                assert_eq!(reaching_i, 2);
            },
        );
    }

    #[test]
    fn liveness_detects_dead_store() {
        let s = stats("fn f() { let x: int = 1; x = 2; log_msg(\"k\"); }");
        // Both stores to x are dead (x never read).
        assert_eq!(s.dead_stores, 2);
    }

    #[test]
    fn live_store_is_not_dead() {
        let s = stats("fn f() -> int { let x: int = 1; return x; }");
        assert_eq!(s.dead_stores, 0);
    }

    #[test]
    fn loop_carried_variable_is_live() {
        let s =
            stats("fn f(n: int) -> int { let i: int = 0; while i < n { i = i + 1; } return i; }");
        assert_eq!(s.dead_stores, 0);
        assert!(s.du_pairs >= 4);
    }

    #[test]
    fn uninitialized_use_detected() {
        let s = stats("fn f() -> int { let x: int; return x + 1; }");
        assert_eq!(s.possibly_uninitialized_uses, 1);
    }

    #[test]
    fn params_are_not_uninitialized() {
        let s = stats("fn f(x: int) -> int { return x + 1; }");
        assert_eq!(s.possibly_uninitialized_uses, 0);
    }

    #[test]
    fn compound_assign_reads_its_target() {
        let s = stats("fn f() -> int { let x: int = 1; x += 2; return x; }");
        // x += 2 both uses and defines x; neither store is dead.
        assert_eq!(s.dead_stores, 0);
    }

    #[test]
    fn du_pairs_count_influence_edges() {
        let s = stats("fn f() -> int { let a: int = 1; let b: int = a + a; return b; }");
        // a: def reaches the `b` node which uses it (2 textual uses but the
        // pair is counted per use occurrence) → 2; b: def reaches return → 1.
        assert_eq!(s.du_pairs, 3);
    }
}
