//! Named feature vectors.
//!
//! The paper's testbed (Figure 4) feeds a flat vector of numeric code
//! properties into the machine-learning stage. [`FeatureVector`] is that
//! vector: an ordered map from feature name to value. Collectors append to
//! it; the `secml` dataset builder aligns vectors by name across
//! applications.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered collection of named numeric features.
///
/// Insertion overwrites: the last writer of a name wins (collectors are
/// expected to use distinct, namespaced names such as `loc.code` or
/// `taint.flows`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureVector {
    values: BTreeMap<String, f64>,
}

impl FeatureVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set feature `name` to `value`. Non-finite values are clamped to 0 so
    /// a degenerate analysis result cannot poison the training matrix.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.values.insert(name.into(), v);
    }

    /// Fetch a feature by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Fetch a feature, defaulting to 0.0 — convenient for optional
    /// collector families.
    pub fn get_or_zero(&self, name: &str) -> f64 {
        self.get(name).unwrap_or(0.0)
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no features have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(name, value)` in name order (stable across runs — feature
    /// matrices must align column-wise between training and prediction).
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The feature names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.values.keys().map(|k| k.as_str()).collect()
    }

    /// Merge `other` into `self` (other's values win on collision).
    pub fn merge(&mut self, other: &FeatureVector) {
        for (k, v) in other.iter() {
            self.values.insert(k.to_string(), v);
        }
    }

    /// Restrict to features whose name starts with `prefix` — used by the
    /// single-family ablation experiment (EXP-UNIFIED).
    pub fn with_prefix(&self, prefix: &str) -> FeatureVector {
        FeatureVector {
            values: self
                .values
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k} = {v:.4}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, f64)> for FeatureVector {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        let mut fv = FeatureVector::new();
        for (k, v) in iter {
            fv.set(k, v);
        }
        fv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_default() {
        let mut fv = FeatureVector::new();
        assert!(fv.is_empty());
        fv.set("loc.code", 120.0);
        assert_eq!(fv.get("loc.code"), Some(120.0));
        assert_eq!(fv.get("missing"), None);
        assert_eq!(fv.get_or_zero("missing"), 0.0);
        assert_eq!(fv.len(), 1);
    }

    #[test]
    fn non_finite_values_are_clamped() {
        let mut fv = FeatureVector::new();
        fv.set("a", f64::NAN);
        fv.set("b", f64::INFINITY);
        assert_eq!(fv.get("a"), Some(0.0));
        assert_eq!(fv.get("b"), Some(0.0));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut fv = FeatureVector::new();
        fv.set("z", 1.0);
        fv.set("a", 2.0);
        fv.set("m", 3.0);
        let names: Vec<&str> = fv.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn merge_overwrites() {
        let mut a = FeatureVector::new();
        a.set("x", 1.0);
        a.set("y", 2.0);
        let mut b = FeatureVector::new();
        b.set("y", 9.0);
        b.set("z", 3.0);
        a.merge(&b);
        assert_eq!(a.get("y"), Some(9.0));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn prefix_filter() {
        let fv: FeatureVector = [
            ("loc.code".to_string(), 1.0),
            ("loc.comment".to_string(), 2.0),
            ("taint.flows".to_string(), 3.0),
        ]
        .into_iter()
        .collect();
        let loc = fv.with_prefix("loc.");
        assert_eq!(loc.len(), 2);
        assert!(loc.get("taint.flows").is_none());
    }

    #[test]
    fn display_formats_lines() {
        let mut fv = FeatureVector::new();
        fv.set("a", 1.5);
        fv.set("b", 2.0);
        assert_eq!(fv.to_string(), "a = 1.5000\nb = 2.0000");
    }
}
