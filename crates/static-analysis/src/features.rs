//! Named feature vectors.
//!
//! The paper's testbed (Figure 4) feeds a flat vector of numeric code
//! properties into the machine-learning stage. [`FeatureVector`] is that
//! vector: an ordered map from feature name to value. Collectors append to
//! it; the `secml` dataset builder aligns vectors by name across
//! applications.

use std::fmt;

/// An ordered collection of named numeric features.
///
/// Insertion overwrites: the last writer of a name wins (collectors are
/// expected to use distinct, namespaced names such as `loc.code` or
/// `taint.flows`).
///
/// Internally a name-sorted `Vec` rather than a tree: lookups are binary
/// searches, in-order insertion (how collectors and the wire protocol
/// mostly build vectors) is an append, and the batch-scoring dense fill
/// is a cache-friendly linear merge over a contiguous slice.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureVector {
    /// `(name, value)` pairs, sorted by name, names unique.
    values: Vec<(String, f64)>,
}

impl FeatureVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set feature `name` to `value`. Non-finite values are clamped to 0 so
    /// a degenerate analysis result cannot poison the training matrix.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        let name = name.into();
        // In-order appends (the common build pattern) skip the search.
        if self.values.last().is_none_or(|(last, _)| *last < name) {
            self.values.push((name, v));
            return;
        }
        match self.values.binary_search_by(|(k, _)| k.as_str().cmp(&name)) {
            Ok(i) => self.values[i].1 = v,
            Err(i) => self.values.insert(i, (name, v)),
        }
    }

    /// Fetch a feature by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.values[i].1)
    }

    /// Fetch a feature, defaulting to 0.0 — convenient for optional
    /// collector families.
    pub fn get_or_zero(&self, name: &str) -> f64 {
        self.get(name).unwrap_or(0.0)
    }

    /// Fill `out` with the value of every name in `names` in order (0.0
    /// for absent names) — equivalent to one [`get_or_zero`] per name.
    /// When `names` is sorted (model schemas are: they come from these
    /// same name-ordered maps), this is a single linear merge over the
    /// underlying sorted map instead of a tree lookup per name; unsorted
    /// runs just restart the merge cursor, so the result is identical
    /// either way. The batch-scoring row-preparation hot path lives on
    /// this.
    ///
    /// [`get_or_zero`]: FeatureVector::get_or_zero
    pub fn fill_dense(&self, names: &[String], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(names.len());
        let values = &self.values;
        let mut i = 0;
        let mut prev: Option<&str> = None;
        for name in names {
            if prev.is_some_and(|p| p > name.as_str()) {
                i = 0;
            }
            prev = Some(name.as_str());
            while i < values.len() && values[i].0.as_str() < name.as_str() {
                i += 1;
            }
            match values.get(i) {
                Some((k, v)) if k.as_str() == name.as_str() => out.push(*v),
                _ => out.push(0.0),
            }
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no features have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(name, value)` in name order (stable across runs — feature
    /// matrices must align column-wise between training and prediction).
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The feature names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.values.iter().map(|(k, _)| k.as_str()).collect()
    }

    /// Merge `other` into `self` (other's values win on collision).
    pub fn merge(&mut self, other: &FeatureVector) {
        for (k, v) in other.iter() {
            self.set(k, v);
        }
    }

    /// Restrict to features whose name starts with `prefix` — used by the
    /// single-family ablation experiment (EXP-UNIFIED).
    pub fn with_prefix(&self, prefix: &str) -> FeatureVector {
        FeatureVector {
            // Filtering a sorted vector keeps it sorted.
            values: self
                .values
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k} = {v:.4}")?;
        }
        Ok(())
    }
}

impl FromIterator<(String, f64)> for FeatureVector {
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        let mut fv = FeatureVector::new();
        for (k, v) in iter {
            fv.set(k, v);
        }
        fv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_default() {
        let mut fv = FeatureVector::new();
        assert!(fv.is_empty());
        fv.set("loc.code", 120.0);
        assert_eq!(fv.get("loc.code"), Some(120.0));
        assert_eq!(fv.get("missing"), None);
        assert_eq!(fv.get_or_zero("missing"), 0.0);
        assert_eq!(fv.len(), 1);
    }

    #[test]
    fn non_finite_values_are_clamped() {
        let mut fv = FeatureVector::new();
        fv.set("a", f64::NAN);
        fv.set("b", f64::INFINITY);
        assert_eq!(fv.get("a"), Some(0.0));
        assert_eq!(fv.get("b"), Some(0.0));
    }

    #[test]
    fn fill_dense_matches_per_name_lookup() {
        let mut fv = FeatureVector::new();
        for (k, v) in [("a", 1.0), ("c", 3.0), ("m", 13.0), ("z", 26.0)] {
            fv.set(k, v);
        }
        // Sorted schema (the fast merge), with gaps and a missing tail.
        let sorted: Vec<String> = ["a", "b", "c", "c", "n", "z", "zz"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // Unsorted schema (cursor restarts) must agree too.
        let unsorted: Vec<String> = ["z", "a", "m", "a", "q"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for names in [sorted, unsorted] {
            let mut dense = Vec::new();
            fv.fill_dense(&names, &mut dense);
            let expected: Vec<f64> = names.iter().map(|n| fv.get_or_zero(n)).collect();
            assert_eq!(dense, expected, "names = {names:?}");
        }
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut fv = FeatureVector::new();
        fv.set("z", 1.0);
        fv.set("a", 2.0);
        fv.set("m", 3.0);
        let names: Vec<&str> = fv.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn merge_overwrites() {
        let mut a = FeatureVector::new();
        a.set("x", 1.0);
        a.set("y", 2.0);
        let mut b = FeatureVector::new();
        b.set("y", 9.0);
        b.set("z", 3.0);
        a.merge(&b);
        assert_eq!(a.get("y"), Some(9.0));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn prefix_filter() {
        let fv: FeatureVector = [
            ("loc.code".to_string(), 1.0),
            ("loc.comment".to_string(), 2.0),
            ("taint.flows".to_string(), 3.0),
        ]
        .into_iter()
        .collect();
        let loc = fv.with_prefix("loc.");
        assert_eq!(loc.len(), 2);
        assert!(loc.get("taint.flows").is_none());
    }

    #[test]
    fn display_formats_lines() {
        let mut fv = FeatureVector::new();
        fv.set("a", 1.5);
        fv.set("b", 2.0);
        assert_eq!(fv.to_string(), "a = 1.5000\nb = 2.0000");
    }
}
