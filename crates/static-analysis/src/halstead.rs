//! Halstead software-science measures [37].
//!
//! Halstead's "elements of software science" derive effort estimates from
//! operator/operand counts:
//!
//! * `n1` distinct operators, `n2` distinct operands,
//! * `N1` total operators, `N2` total operands,
//! * vocabulary `n = n1 + n2`, length `N = N1 + N2`,
//! * volume `V = N · log2(n)`,
//! * difficulty `D = (n1 / 2) · (N2 / n2)`,
//! * effort `E = D · V`, time `T = E / 18` seconds,
//! * delivered bugs `B = V / 3000` — the metric's own vulnerability prior.
//!
//! Operators here are: binary/unary operators, assignment forms, control
//! keywords (`if`, `while`, `for`, `switch`, `case`, `return`, `break`,
//! `continue`, `let`), indexing, and each called function name. Operands
//! are: literals and variable references.

use minilang::ast::{ExprKind, Function, LValue, Module, Program, StmtKind};
use minilang::visit;
use std::collections::HashMap;

/// Raw counts plus derived Halstead measures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HalsteadMeasures {
    pub distinct_operators: usize,
    pub distinct_operands: usize,
    pub total_operators: usize,
    pub total_operands: usize,
}

impl HalsteadMeasures {
    /// Vocabulary `n`.
    pub fn vocabulary(&self) -> usize {
        self.distinct_operators + self.distinct_operands
    }

    /// Length `N`.
    pub fn length(&self) -> usize {
        self.total_operators + self.total_operands
    }

    /// Volume `V = N log2 n` (0 for empty vocabularies).
    pub fn volume(&self) -> f64 {
        let n = self.vocabulary();
        if n == 0 {
            0.0
        } else {
            self.length() as f64 * (n as f64).log2()
        }
    }

    /// Difficulty `D = n1/2 · N2/n2` (0 when there are no operands).
    pub fn difficulty(&self) -> f64 {
        if self.distinct_operands == 0 {
            0.0
        } else {
            (self.distinct_operators as f64 / 2.0)
                * (self.total_operands as f64 / self.distinct_operands as f64)
        }
    }

    /// Effort `E = D · V`.
    pub fn effort(&self) -> f64 {
        self.difficulty() * self.volume()
    }

    /// Estimated implementation time in seconds (`E / 18`).
    pub fn time_seconds(&self) -> f64 {
        self.effort() / 18.0
    }

    /// Halstead's delivered-bug estimate `B = V / 3000`.
    pub fn estimated_bugs(&self) -> f64 {
        self.volume() / 3000.0
    }

    fn merge(&mut self, other: &Tally) {
        self.distinct_operators = other.operators.len();
        self.distinct_operands = other.operands.len();
        self.total_operators = other.operators.values().sum();
        self.total_operands = other.operands.values().sum();
    }
}

#[derive(Default)]
struct Tally {
    operators: HashMap<String, usize>,
    operands: HashMap<String, usize>,
}

impl Tally {
    fn operator(&mut self, name: &str) {
        *self.operators.entry(name.to_string()).or_insert(0) += 1;
    }

    fn operand(&mut self, name: String) {
        *self.operands.entry(name).or_insert(0) += 1;
    }

    fn expr(&mut self, e: &minilang::Expr) {
        visit::walk_expr(e, &mut |e| match &e.kind {
            ExprKind::Int(v) => self.operand(format!("int:{v}")),
            ExprKind::Float(v) => self.operand(format!("float:{v}")),
            ExprKind::Str(s) => self.operand(format!("str:{s}")),
            ExprKind::Bool(b) => self.operand(format!("bool:{b}")),
            ExprKind::Var(name) => self.operand(format!("var:{name}")),
            ExprKind::Index { .. } => self.operator("[]"),
            ExprKind::Unary { op, .. } => self.operator(op.symbol()),
            ExprKind::Binary { op, .. } => self.operator(op.symbol()),
            ExprKind::Call { callee, .. } => self.operator(&format!("call:{callee}")),
        });
    }

    fn function(&mut self, f: &Function) {
        for p in &f.params {
            self.operand(format!("var:{}", p.name));
        }
        visit::walk_stmts(&f.body, &mut |stmt| {
            match &stmt.kind {
                StmtKind::Let { name, .. } => {
                    self.operator("let");
                    self.operand(format!("var:{name}"));
                }
                StmtKind::Assign { target, op, .. } => {
                    match op {
                        None => self.operator("="),
                        Some(o) => self.operator(&format!("{}=", o.symbol())),
                    }
                    self.operand(format!("var:{}", target.base_name()));
                    if matches!(target, LValue::Index { .. }) {
                        self.operator("[]");
                    }
                }
                StmtKind::If { .. } => self.operator("if"),
                StmtKind::While { .. } => self.operator("while"),
                StmtKind::For { .. } => self.operator("for"),
                StmtKind::Switch { cases, .. } => {
                    self.operator("switch");
                    for _ in cases {
                        self.operator("case");
                    }
                }
                StmtKind::Break => self.operator("break"),
                StmtKind::Continue => self.operator("continue"),
                StmtKind::Return(_) => self.operator("return"),
                StmtKind::Expr(_) | StmtKind::Block(_) => {}
            }
            for e in visit::stmt_exprs(stmt) {
                self.expr(e);
            }
        });
    }
}

/// Halstead measures for a single function.
pub fn function_halstead(f: &Function) -> HalsteadMeasures {
    let mut tally = Tally::default();
    tally.function(f);
    let mut m = HalsteadMeasures::default();
    m.merge(&tally);
    m
}

/// Halstead measures across a module (shared operator/operand vocabulary).
pub fn module_halstead(module: &Module) -> HalsteadMeasures {
    let mut tally = Tally::default();
    for f in &module.functions {
        tally.function(f);
    }
    let mut m = HalsteadMeasures::default();
    m.merge(&tally);
    m
}

/// Halstead measures across an entire program.
pub fn program_halstead(program: &Program) -> HalsteadMeasures {
    let mut tally = Tally::default();
    for f in program.functions() {
        tally.function(f);
    }
    let mut m = HalsteadMeasures::default();
    m.merge(&tally);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, Dialect};

    fn measures(src: &str) -> HalsteadMeasures {
        let m = parse_module("t.c", src, Dialect::C).unwrap();
        function_halstead(&m.functions[0])
    }

    #[test]
    fn empty_function_is_zero() {
        let m = measures("fn f() { }");
        assert_eq!(m.length(), 0);
        assert_eq!(m.volume(), 0.0);
        assert_eq!(m.difficulty(), 0.0);
        assert_eq!(m.estimated_bugs(), 0.0);
    }

    #[test]
    fn counts_classic_example() {
        // let x: int = a + a;  →  operators: let, =? (no: let-init has no
        // explicit = operator; we count `let` only), +.
        let m = measures("fn f(a: int) { let x: int = a + a; }");
        // operators: let, + → n1 = 2, N1 = 2
        assert_eq!(m.distinct_operators, 2);
        assert_eq!(m.total_operators, 2);
        // operands: a (param decl + 2 reads), x → n2 = 2, N2 = 4
        assert_eq!(m.distinct_operands, 2);
        assert_eq!(m.total_operands, 4);
        assert_eq!(m.vocabulary(), 4);
        assert_eq!(m.length(), 6);
        assert!((m.volume() - 6.0 * 4f64.log2()).abs() < 1e-9);
        // D = (2/2) * (4/2) = 2
        assert!((m.difficulty() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_vs_total_operands() {
        let m = measures("fn f() { let x: int = 1 + 1 + 1; }");
        // operand "int:1" used 3 times but distinct once; x once.
        assert_eq!(m.distinct_operands, 2);
        assert_eq!(m.total_operands, 4);
    }

    #[test]
    fn calls_count_as_operators() {
        let m = measures("fn f() { printf(\"%d\", strlen(\"ab\")); printf(\"x\"); }");
        // operators: call:printf (x2), call:strlen (x1)
        assert_eq!(m.distinct_operators, 2);
        assert_eq!(m.total_operators, 3);
    }

    #[test]
    fn effort_and_derived_are_monotone_in_code_size() {
        let small = measures("fn f(a: int) { let x: int = a + 1; }");
        let big = measures(
            "fn f(a: int, b: int) {
                let x: int = a + 1;
                let y: int = b * 2 - a;
                if x > y { printf(\"%d\", x); } else { printf(\"%d\", y); }
                while x < 100 { x = x + y; }
            }",
        );
        assert!(big.volume() > small.volume());
        assert!(big.effort() > small.effort());
        assert!(big.estimated_bugs() > small.estimated_bugs());
        assert!(big.time_seconds() > small.time_seconds());
    }

    #[test]
    fn compound_assign_and_index_operators() {
        let m = measures("fn f() { let b: int[4]; b[0] = 1; b[1] += 2; }");
        // operators: let, =, +=, [] → n1 = 4; [] appears twice → N1 = 5.
        assert_eq!(m.distinct_operators, 4);
        assert_eq!(m.total_operators, 5);
        // operands: b (decl + 2 writes), int:0, int:1 (both literal-1 uses
        // collapse), int:2 → n2 = 4, N2 = 7.
        assert_eq!(m.distinct_operands, 4);
        assert_eq!(m.total_operands, 7);
    }

    #[test]
    fn module_aggregates_share_vocabulary() {
        let m = parse_module(
            "t.c",
            "fn a() { let x: int = 1; } fn b() { let y: int = 1; }",
            Dialect::C,
        )
        .unwrap();
        let agg = module_halstead(&m);
        // `let` is distinct once across both functions; literal 1 likewise.
        assert_eq!(agg.distinct_operators, 1);
        assert_eq!(agg.total_operators, 2);
        assert_eq!(agg.distinct_operands, 3); // x, y, int:1
        assert_eq!(agg.total_operands, 4);
    }

    #[test]
    fn switch_cases_counted() {
        let m = measures("fn f(x: int) { switch x { case 1: { } case 2: { } default: { } } }");
        // operators: switch, case, case → n1=2 (switch, case), N1=3
        assert_eq!(m.distinct_operators, 2);
        assert_eq!(m.total_operators, 3);
    }
}
