//! Interval abstract interpretation (Cousot & Cousot [27]).
//!
//! A classic numeric abstract domain over the integer variables of a
//! function: every variable maps to an interval `[lo, hi]` with ±∞ bounds.
//! The analysis runs a forward fixpoint with widening at loop heads, and
//! refines intervals along branch edges (`x < n` tightens `x` on the true
//! edge). Two consumers:
//!
//! * the buffer-bounds check — a `buf[i]` access is *provably safe* when the
//!   interval of `i` sits inside `[0, capacity)`;
//! * the path explorer's feasibility pruning ([`crate::paths`]).

use crate::cfg::{Cfg, NodeId, NodeKind};
use minilang::ast::{BinaryOp, Expr, ExprKind, Function, LValue, StmtKind, Type, UnaryOp};
use minilang::visit;
use std::collections::BTreeMap;
use std::fmt;

/// An integer interval with infinite bounds; `lo > hi` is ⊥ (empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound; `i64::MIN` encodes −∞.
    pub lo: i64,
    /// Upper bound; `i64::MAX` encodes +∞.
    pub hi: i64,
}

impl Interval {
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };
    pub const BOTTOM: Interval = Interval { lo: 1, hi: 0 };

    /// The interval `[v, v]`.
    pub fn constant(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]` (⊥ if inverted).
    pub fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    pub fn is_top(&self) -> bool {
        self.lo == i64::MIN && self.hi == i64::MAX
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_bottom() {
            return *other;
        }
        if other.is_bottom() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Standard widening: unstable bounds jump to ±∞.
    pub fn widen(&self, newer: &Interval) -> Interval {
        if self.is_bottom() {
            return *newer;
        }
        if newer.is_bottom() {
            return *self;
        }
        Interval {
            lo: if newer.lo < self.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if newer.hi > self.hi {
                i64::MAX
            } else {
                self.hi
            },
        }
    }

    fn sat(v: i128) -> i64 {
        v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Abstract addition (saturating at the representation edge).
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        let lo = if self.lo == i64::MIN || other.lo == i64::MIN {
            i64::MIN
        } else {
            Self::sat(self.lo as i128 + other.lo as i128)
        };
        let hi = if self.hi == i64::MAX || other.hi == i64::MAX {
            i64::MAX
        } else {
            Self::sat(self.hi as i128 + other.hi as i128)
        };
        Interval { lo, hi }
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        let lo = if self.lo == i64::MIN || other.hi == i64::MAX {
            i64::MIN
        } else {
            Self::sat(self.lo as i128 - other.hi as i128)
        };
        let hi = if self.hi == i64::MAX || other.lo == i64::MIN {
            i64::MAX
        } else {
            Self::sat(self.hi as i128 - other.lo as i128)
        };
        Interval { lo, hi }
    }

    /// Abstract multiplication.
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        if self.is_top() || other.is_top() {
            return Interval::TOP;
        }
        let corners = [
            self.lo as i128 * other.lo as i128,
            self.lo as i128 * other.hi as i128,
            self.hi as i128 * other.lo as i128,
            self.hi as i128 * other.hi as i128,
        ];
        let lo = corners.iter().copied().min().expect("non-empty");
        let hi = corners.iter().copied().max().expect("non-empty");
        Interval {
            lo: Self::sat(lo),
            hi: Self::sat(hi),
        }
    }

    /// Abstract remainder `self % other` for positive divisors: result in
    /// `[0, d_max - 1]` when both operands are non-negative, else Top-ish.
    pub fn rem(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        if other.lo > 0 && self.lo >= 0 && other.hi < i64::MAX {
            Interval {
                lo: 0,
                hi: (other.hi - 1).min(self.hi),
            }
        } else {
            Interval::TOP
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            return write!(f, "⊥");
        }
        match (self.lo, self.hi) {
            (i64::MIN, i64::MAX) => write!(f, "[-∞, +∞]"),
            (i64::MIN, h) => write!(f, "[-∞, {h}]"),
            (l, i64::MAX) => write!(f, "[{l}, +∞]"),
            (l, h) => write!(f, "[{l}, {h}]"),
        }
    }
}

/// Abstract environment: integer variables to intervals. Missing = Top.
pub type Env = BTreeMap<String, Interval>;

/// Evaluate an integer expression to an interval under `env`.
pub fn eval(expr: &Expr, env: &Env) -> Interval {
    match &expr.kind {
        ExprKind::Int(v) => Interval::constant(*v),
        ExprKind::Bool(b) => Interval::constant(*b as i64),
        ExprKind::Var(name) => env.get(name).copied().unwrap_or(Interval::TOP),
        ExprKind::Unary {
            op: UnaryOp::Neg,
            operand,
        } => Interval::constant(0).sub(&eval(operand, env)),
        ExprKind::Unary {
            op: UnaryOp::Not,
            operand,
        } => {
            let v = eval(operand, env);
            if v == Interval::constant(0) {
                Interval::constant(1)
            } else if !v.contains(0) {
                Interval::constant(0)
            } else {
                Interval::new(0, 1)
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (eval(lhs, env), eval(rhs, env));
            match op {
                BinaryOp::Add => a.add(&b),
                BinaryOp::Sub => a.sub(&b),
                BinaryOp::Mul => a.mul(&b),
                BinaryOp::Rem => a.rem(&b),
                BinaryOp::Div => Interval::TOP,
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => match compare(*op, &a, &b) {
                    Some(true) => Interval::constant(1),
                    Some(false) => Interval::constant(0),
                    None => Interval::new(0, 1),
                },
                BinaryOp::And | BinaryOp::Or => Interval::new(0, 1),
                BinaryOp::BitAnd | BinaryOp::BitOr | BinaryOp::BitXor => Interval::TOP,
                BinaryOp::Shl | BinaryOp::Shr => Interval::TOP,
            }
        }
        // Calls, strings, floats, indexing: unknown.
        _ => Interval::TOP,
    }
}

/// Decide a comparison when the intervals are conclusive.
fn compare(op: BinaryOp, a: &Interval, b: &Interval) -> Option<bool> {
    if a.is_bottom() || b.is_bottom() {
        return None;
    }
    match op {
        BinaryOp::Lt => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        BinaryOp::Le => {
            if a.hi <= b.lo {
                Some(true)
            } else if a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        BinaryOp::Gt => compare(BinaryOp::Le, a, b).map(|r| !r),
        BinaryOp::Ge => compare(BinaryOp::Lt, a, b).map(|r| !r),
        BinaryOp::Eq => {
            if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                Some(true)
            } else if a.meet(b).is_bottom() {
                Some(false)
            } else {
                None
            }
        }
        BinaryOp::Ne => compare(BinaryOp::Eq, a, b).map(|r| !r),
        _ => None,
    }
}

/// Refine `env` assuming `cond` evaluates to `truth`. Only simple
/// `var ⋈ expr` / `expr ⋈ var` shapes (and `&&` on the true side /
/// `||` on the false side) refine; anything else returns `env` unchanged.
/// Returns `None` when the assumption is contradictory (⊥ branch).
pub fn assume(cond: &Expr, truth: bool, env: &Env) -> Option<Env> {
    match &cond.kind {
        ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
            let op = if truth { *op } else { negate(*op) };
            let mut out = env.clone();
            // var ⋈ e
            if let ExprKind::Var(name) = &lhs.kind {
                let bound = eval(rhs, env);
                let cur = env.get(name).copied().unwrap_or(Interval::TOP);
                let refined = refine_left(op, cur, bound);
                if refined.is_bottom() {
                    return None;
                }
                out.insert(name.clone(), refined);
            }
            // e ⋈ var  (mirror the operator)
            if let ExprKind::Var(name) = &rhs.kind {
                let bound = eval(lhs, env);
                let cur = out.get(name).copied().unwrap_or(Interval::TOP);
                let refined = refine_left(mirror(op), cur, bound);
                if refined.is_bottom() {
                    return None;
                }
                out.insert(name.clone(), refined);
            }
            // Contradiction between two constants.
            let (a, b) = (eval(lhs, env), eval(rhs, env));
            if compare(op, &a, &b) == Some(false) {
                return None;
            }
            Some(out)
        }
        ExprKind::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } if truth => {
            let e1 = assume(lhs, true, env)?;
            assume(rhs, true, &e1)
        }
        ExprKind::Binary {
            op: BinaryOp::Or,
            lhs,
            rhs,
        } if !truth => {
            let e1 = assume(lhs, false, env)?;
            assume(rhs, false, &e1)
        }
        ExprKind::Unary {
            op: UnaryOp::Not,
            operand,
        } => assume(operand, !truth, env),
        ExprKind::Bool(b) => {
            if *b == truth {
                Some(env.clone())
            } else {
                None
            }
        }
        _ => Some(env.clone()),
    }
}

fn negate(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Ge,
        BinaryOp::Le => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Le,
        BinaryOp::Ge => BinaryOp::Lt,
        BinaryOp::Eq => BinaryOp::Ne,
        BinaryOp::Ne => BinaryOp::Eq,
        other => other,
    }
}

fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// Tighten `cur` for a variable known to satisfy `var op bound`.
fn refine_left(op: BinaryOp, cur: Interval, bound: Interval) -> Interval {
    match op {
        BinaryOp::Lt => cur.meet(&Interval::new(i64::MIN, bound.hi.saturating_sub(1))),
        BinaryOp::Le => cur.meet(&Interval::new(i64::MIN, bound.hi)),
        BinaryOp::Gt => cur.meet(&Interval::new(bound.lo.saturating_add(1), i64::MAX)),
        BinaryOp::Ge => cur.meet(&Interval::new(bound.lo, i64::MAX)),
        BinaryOp::Eq => cur.meet(&bound),
        BinaryOp::Ne => {
            // Only refine when the excluded value is a boundary constant.
            if bound.lo == bound.hi {
                if cur.lo == bound.lo {
                    Interval::new(cur.lo.saturating_add(1), cur.hi)
                } else if cur.hi == bound.lo {
                    Interval::new(cur.lo, cur.hi.saturating_sub(1))
                } else {
                    cur
                }
            } else {
                cur
            }
        }
        _ => cur,
    }
}

/// Per-node abstract environments (at node entry) for one function.
#[derive(Debug)]
pub struct IntervalAnalysis {
    pub envs: Vec<Env>,
}

/// Number of fixpoint sweeps before widening kicks in.
const WIDEN_AFTER: usize = 3;

/// Run the forward interval fixpoint over a function.
pub fn analyze_function(f: &Function) -> IntervalAnalysis {
    let cfg = Cfg::build(f);
    analyze_cfg(&cfg, f)
}

/// Run over an existing CFG (callers that already built one).
pub fn analyze_cfg(cfg: &Cfg<'_>, f: &Function) -> IntervalAnalysis {
    let order = cfg.reverse_postorder();
    // Widening points: targets of back edges (loop heads). Widening anywhere
    // else would wipe out branch refinements computed after the loop.
    let mut pos = vec![0usize; cfg.node_count()];
    for (i, &n) in order.iter().enumerate() {
        pos[n] = i;
    }
    let mut widen_at = vec![false; cfg.node_count()];
    for (from, node) in cfg.nodes.iter().enumerate() {
        for &to in &node.succs {
            if pos[from] >= pos[to] {
                widen_at[to] = true;
            }
        }
    }
    let mut envs: Vec<Option<Env>> = vec![None; cfg.node_count()];
    // Parameters: ints start Top; nothing else tracked.
    let mut entry_env = Env::new();
    for p in &f.params {
        if p.ty == Type::Int {
            entry_env.insert(p.name.clone(), Interval::TOP);
        }
    }
    envs[cfg.entry] = Some(entry_env);

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let mut changed = false;
        for &id in &order {
            if id == cfg.entry {
                continue;
            }
            // Join over incoming edge-refined environments.
            let mut joined: Option<Env> = None;
            for &p in &cfg.nodes[id].preds {
                let Some(pred_env) = envs[p].as_ref() else {
                    continue;
                };
                let contributed = edge_env(cfg, p, id, pred_env);
                let Some(contributed) = contributed else {
                    continue;
                };
                joined = Some(match joined {
                    None => contributed,
                    Some(j) => join_env(&j, &contributed),
                });
            }
            let Some(inset) = joined else { continue };
            let outset = apply_node(&cfg.nodes[id].kind, inset);
            let new = match (&envs[id], sweeps > WIDEN_AFTER && widen_at[id]) {
                (Some(old), true) => widen_env(old, &outset),
                _ => outset,
            };
            if envs[id].as_ref() != Some(&new) {
                envs[id] = Some(new);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Hard safety valve: widening guarantees convergence, but cap sweeps
        // anyway so a domain bug cannot hang the testbed.
        if sweeps > 200 {
            break;
        }
    }
    IntervalAnalysis {
        envs: envs.into_iter().map(|e| e.unwrap_or_default()).collect(),
    }
}

/// Environment flowing along edge `from → to` (branch refinement applied).
///
/// When both the `True` and `False` edges of a condition lead to `to`
/// (an empty branch), the refinements of the parallel edges are joined.
fn edge_env(cfg: &Cfg<'_>, from: NodeId, to: NodeId, env: &Env) -> Option<Env> {
    if let NodeKind::Cond(cond) = &cfg.nodes[from].kind {
        let mut joined: Option<Env> = None;
        for label in cfg.edge_labels(from, to) {
            let refined = match label {
                crate::cfg::EdgeLabel::True => assume(cond, true, env),
                crate::cfg::EdgeLabel::False => assume(cond, false, env),
                // Switch arms and jumps: no refinement.
                _ => Some(env.clone()),
            };
            if let Some(r) = refined {
                joined = Some(match joined {
                    None => r,
                    Some(j) => join_env(&j, &r),
                });
            }
        }
        return joined;
    }
    Some(env.clone())
}

/// Public adapter for [`apply_node`], used by the path explorer.
pub fn apply_node_public(kind: &NodeKind<'_>, env: Env) -> Env {
    apply_node(kind, env)
}

/// Apply a node's state change to the environment *after* the node.
fn apply_node(kind: &NodeKind<'_>, mut env: Env) -> Env {
    if let NodeKind::Stmt(stmt) = kind {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } if *ty == Type::Int => {
                let v = init
                    .as_ref()
                    .map(|e| eval(e, &env))
                    .unwrap_or(Interval::TOP);
                env.insert(name.clone(), v);
            }
            // Assignments track every scalar variable, including
            // `for`-loop counters that were never declared with `let`.
            // Non-integer values evaluate to Top, which is sound.
            StmtKind::Assign {
                target: LValue::Var(name, _),
                op,
                value,
            } => {
                let rhs = eval(value, &env);
                let new = match op {
                    None => rhs,
                    Some(o) => {
                        let cur = env.get(name).copied().unwrap_or(Interval::TOP);
                        match o {
                            BinaryOp::Add => cur.add(&rhs),
                            BinaryOp::Sub => cur.sub(&rhs),
                            BinaryOp::Mul => cur.mul(&rhs),
                            _ => Interval::TOP,
                        }
                    }
                };
                env.insert(name.clone(), new);
            }
            _ => {}
        }
    }
    env
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    // A variable absent from one side is Top there; Top join x = Top, so
    // only variables present in both sides stay bounded.
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            out.insert(k.clone(), va.join(vb));
        }
    }
    out
}

fn widen_env(old: &Env, new: &Env) -> Env {
    let mut out = Env::new();
    for (k, vn) in new {
        match old.get(k) {
            Some(vo) => out.insert(k.clone(), vo.widen(vn)),
            None => out.insert(k.clone(), *vn),
        };
    }
    out
}

/// Verdict for one buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsVerdict {
    /// Index interval provably inside `[0, capacity)`.
    Safe,
    /// Index interval provably outside the bounds (definite bug).
    OutOfBounds,
    /// Analysis cannot decide.
    Unknown,
}

/// Results of checking every `buf[i]` access in a function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoundsReport {
    pub safe: usize,
    pub out_of_bounds: usize,
    pub unknown: usize,
}

/// Check all indexed accesses of locally-declared buffers in `f`.
pub fn check_bounds(f: &Function) -> BoundsReport {
    let cfg = Cfg::build(f);
    let analysis = analyze_cfg(&cfg, f);

    // Buffer capacities from declarations (locals + params + none for
    // unknown).
    let mut caps: BTreeMap<&str, usize> = BTreeMap::new();
    for p in &f.params {
        if let Some(c) = p.ty.buffer_capacity() {
            caps.insert(p.name.as_str(), c);
        }
    }
    visit::walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Let { name, ty, .. } = &s.kind {
            if let Some(c) = ty.buffer_capacity() {
                caps.insert(name.as_str(), c);
            }
        }
    });

    let mut report = BoundsReport::default();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let env = &analysis.envs[id];
        let mut check = |base: &str, index: &Expr| {
            let Some(&cap) = caps.get(base) else {
                report.unknown += 1;
                return;
            };
            let idx = eval(index, env);
            if idx.is_bottom() {
                // Unreachable access.
                report.safe += 1;
            } else if idx.lo >= 0 && idx.hi < cap as i64 {
                report.safe += 1;
            } else if idx.hi < 0 || idx.lo >= cap as i64 {
                report.out_of_bounds += 1;
            } else {
                report.unknown += 1;
            }
        };
        let exprs: Vec<&Expr> = match &node.kind {
            NodeKind::Stmt(stmt) => {
                if let StmtKind::Assign {
                    target: LValue::Index { base, index, .. },
                    ..
                } = &stmt.kind
                {
                    check(base, index);
                }
                visit::stmt_exprs(stmt)
            }
            NodeKind::Cond(c) => vec![c],
            _ => vec![],
        };
        for root in exprs {
            visit::walk_expr(root, &mut |e| {
                if let ExprKind::Index { base, index } = &e.kind {
                    if let ExprKind::Var(name) = &base.kind {
                        check(name, index);
                    }
                }
            });
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Symbol-indexed environments — the fused engine's dense lattice.
//
// The legacy fixpoint keys environments by variable-name `String` in a
// `BTreeMap`. The fused path replaces that with a bitset of present
// function-local symbols plus a flat `Vec<Interval>`, with the invariant
// that absent slots always hold `TOP`. Since no interval transfer function
// ever *removes* a variable (joins intersect key sets, widening keeps the
// new env's keys), the derived `PartialEq` on the flat representation is
// exactly `BTreeMap` equality, so the fixpoint converges after the same
// sweeps and every env matches the legacy one bit for bit.
// ---------------------------------------------------------------------------

use crate::bitset::BitSet;
use crate::context::FnSymbols;

/// Dense abstract environment over one function's local symbols.
/// Absent locals read as [`Interval::TOP`]; the `vals` slot of an absent
/// local also *holds* `TOP` so derived equality mirrors map equality.
#[derive(Debug, Clone, PartialEq)]
pub struct SymEnv {
    present: BitSet,
    vals: Vec<Interval>,
}

impl SymEnv {
    /// The empty environment (every local absent ⇒ Top).
    pub fn new(universe: usize) -> SymEnv {
        SymEnv {
            present: BitSet::new(universe),
            vals: vec![Interval::TOP; universe],
        }
    }

    pub fn get(&self, local: u32) -> Interval {
        self.vals[local as usize]
    }

    pub fn contains(&self, local: u32) -> bool {
        self.present.contains(local as usize)
    }

    pub fn insert(&mut self, local: u32, v: Interval) {
        self.present.insert(local as usize);
        self.vals[local as usize] = v;
    }
}

/// Evaluate an integer expression under a symbol-indexed environment.
/// Mirrors [`eval`]; unresolvable names read as Top.
pub fn eval_sym(expr: &Expr, env: &SymEnv, syms: &FnSymbols<'_>) -> Interval {
    match &expr.kind {
        ExprKind::Int(v) => Interval::constant(*v),
        ExprKind::Bool(b) => Interval::constant(*b as i64),
        ExprKind::Var(name) => syms
            .local(name)
            .map(|l| env.get(l))
            .unwrap_or(Interval::TOP),
        ExprKind::Unary {
            op: UnaryOp::Neg,
            operand,
        } => Interval::constant(0).sub(&eval_sym(operand, env, syms)),
        ExprKind::Unary {
            op: UnaryOp::Not,
            operand,
        } => {
            let v = eval_sym(operand, env, syms);
            if v == Interval::constant(0) {
                Interval::constant(1)
            } else if !v.contains(0) {
                Interval::constant(0)
            } else {
                Interval::new(0, 1)
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (eval_sym(lhs, env, syms), eval_sym(rhs, env, syms));
            match op {
                BinaryOp::Add => a.add(&b),
                BinaryOp::Sub => a.sub(&b),
                BinaryOp::Mul => a.mul(&b),
                BinaryOp::Rem => a.rem(&b),
                BinaryOp::Div => Interval::TOP,
                BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => match compare(*op, &a, &b) {
                    Some(true) => Interval::constant(1),
                    Some(false) => Interval::constant(0),
                    None => Interval::new(0, 1),
                },
                BinaryOp::And | BinaryOp::Or => Interval::new(0, 1),
                BinaryOp::BitAnd | BinaryOp::BitOr | BinaryOp::BitXor => Interval::TOP,
                BinaryOp::Shl | BinaryOp::Shr => Interval::TOP,
            }
        }
        _ => Interval::TOP,
    }
}

/// Branch refinement under a symbol-indexed environment; mirrors
/// [`assume`], including its quirk that the right-hand refinement reads the
/// partially-refined environment while bounds still evaluate under the
/// original.
pub fn assume_sym(cond: &Expr, truth: bool, env: &SymEnv, syms: &FnSymbols<'_>) -> Option<SymEnv> {
    match &cond.kind {
        ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
            let op = if truth { *op } else { negate(*op) };
            let mut out = env.clone();
            if let ExprKind::Var(name) = &lhs.kind {
                let local = syms.local(name).expect("var interned");
                let bound = eval_sym(rhs, env, syms);
                let cur = if env.contains(local) {
                    env.get(local)
                } else {
                    Interval::TOP
                };
                let refined = refine_left(op, cur, bound);
                if refined.is_bottom() {
                    return None;
                }
                out.insert(local, refined);
            }
            if let ExprKind::Var(name) = &rhs.kind {
                let local = syms.local(name).expect("var interned");
                let bound = eval_sym(lhs, env, syms);
                let cur = if out.contains(local) {
                    out.get(local)
                } else {
                    Interval::TOP
                };
                let refined = refine_left(mirror(op), cur, bound);
                if refined.is_bottom() {
                    return None;
                }
                out.insert(local, refined);
            }
            let (a, b) = (eval_sym(lhs, env, syms), eval_sym(rhs, env, syms));
            if compare(op, &a, &b) == Some(false) {
                return None;
            }
            Some(out)
        }
        ExprKind::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } if truth => {
            let e1 = assume_sym(lhs, true, env, syms)?;
            assume_sym(rhs, true, &e1, syms)
        }
        ExprKind::Binary {
            op: BinaryOp::Or,
            lhs,
            rhs,
        } if !truth => {
            let e1 = assume_sym(lhs, false, env, syms)?;
            assume_sym(rhs, false, &e1, syms)
        }
        ExprKind::Unary {
            op: UnaryOp::Not,
            operand,
        } => assume_sym(operand, !truth, env, syms),
        ExprKind::Bool(b) => {
            if *b == truth {
                Some(env.clone())
            } else {
                None
            }
        }
        _ => Some(env.clone()),
    }
}

/// Apply a node's transfer function; mirrors [`apply_node_public`].
pub fn apply_node_sym(kind: &NodeKind<'_>, mut env: SymEnv, syms: &FnSymbols<'_>) -> SymEnv {
    if let NodeKind::Stmt(stmt) = kind {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } if *ty == Type::Int => {
                let v = init
                    .as_ref()
                    .map(|e| eval_sym(e, &env, syms))
                    .unwrap_or(Interval::TOP);
                env.insert(syms.local(name).expect("let interned"), v);
            }
            StmtKind::Assign {
                target: LValue::Var(name, _),
                op,
                value,
            } => {
                let local = syms.local(name).expect("assign interned");
                let rhs = eval_sym(value, &env, syms);
                let new = match op {
                    None => rhs,
                    Some(o) => {
                        let cur = if env.contains(local) {
                            env.get(local)
                        } else {
                            Interval::TOP
                        };
                        match o {
                            BinaryOp::Add => cur.add(&rhs),
                            BinaryOp::Sub => cur.sub(&rhs),
                            BinaryOp::Mul => cur.mul(&rhs),
                            _ => Interval::TOP,
                        }
                    }
                };
                env.insert(local, new);
            }
            _ => {}
        }
    }
    env
}

fn join_env_sym(a: &SymEnv, b: &SymEnv) -> SymEnv {
    let mut out = SymEnv::new(a.vals.len());
    let mut present = a.present.clone();
    present.intersect_with(&b.present);
    for i in present.iter_ones() {
        out.vals[i] = a.vals[i].join(&b.vals[i]);
    }
    out.present = present;
    out
}

fn widen_env_sym(old: &SymEnv, new: &SymEnv) -> SymEnv {
    let mut out = SymEnv::new(new.vals.len());
    for i in new.present.iter_ones() {
        let v = if old.present.contains(i) {
            old.vals[i].widen(&new.vals[i])
        } else {
            new.vals[i]
        };
        out.insert(i as u32, v);
    }
    out
}

fn edge_env_sym(
    cfg: &Cfg<'_>,
    from: NodeId,
    to: NodeId,
    env: &SymEnv,
    syms: &FnSymbols<'_>,
) -> Option<SymEnv> {
    if let NodeKind::Cond(cond) = &cfg.nodes[from].kind {
        let mut joined: Option<SymEnv> = None;
        for label in cfg.edge_labels(from, to) {
            let refined = match label {
                crate::cfg::EdgeLabel::True => assume_sym(cond, true, env, syms),
                crate::cfg::EdgeLabel::False => assume_sym(cond, false, env, syms),
                _ => Some(env.clone()),
            };
            if let Some(r) = refined {
                joined = Some(match joined {
                    None => r,
                    Some(j) => join_env_sym(&j, &r),
                });
            }
        }
        return joined;
    }
    Some(env.clone())
}

/// Per-node symbol-indexed environments (at node entry) for one function.
/// `Clone` so the incremental engine can cache one function's stabilized
/// envs and re-install them on a fingerprint hit.
#[derive(Debug, Clone)]
pub struct SymIntervalAnalysis {
    pub envs: Vec<SymEnv>,
}

/// The fused engine's interval fixpoint: same sweeps, same widening points,
/// same convergence test as [`analyze_cfg`], over dense environments.
pub fn analyze_cfg_sym(
    cfg: &Cfg<'_>,
    f: &Function,
    syms: &FnSymbols<'_>,
    order: &[NodeId],
) -> SymIntervalAnalysis {
    let universe = syms.len();
    let mut pos = vec![0usize; cfg.node_count()];
    for (i, &n) in order.iter().enumerate() {
        pos[n] = i;
    }
    let mut widen_at = vec![false; cfg.node_count()];
    for (from, node) in cfg.nodes.iter().enumerate() {
        for &to in &node.succs {
            if pos[from] >= pos[to] {
                widen_at[to] = true;
            }
        }
    }
    let mut envs: Vec<Option<SymEnv>> = vec![None; cfg.node_count()];
    let mut entry_env = SymEnv::new(universe);
    for p in &f.params {
        if p.ty == Type::Int {
            entry_env.insert(syms.local(&p.name).expect("param interned"), Interval::TOP);
        }
    }
    envs[cfg.entry] = Some(entry_env);

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let mut changed = false;
        for &id in order {
            if id == cfg.entry {
                continue;
            }
            let mut joined: Option<SymEnv> = None;
            for &p in &cfg.nodes[id].preds {
                let Some(pred_env) = envs[p].as_ref() else {
                    continue;
                };
                let Some(contributed) = edge_env_sym(cfg, p, id, pred_env, syms) else {
                    continue;
                };
                joined = Some(match joined {
                    None => contributed,
                    Some(j) => join_env_sym(&j, &contributed),
                });
            }
            let Some(inset) = joined else { continue };
            let outset = apply_node_sym(&cfg.nodes[id].kind, inset, syms);
            let new = match (&envs[id], sweeps > WIDEN_AFTER && widen_at[id]) {
                (Some(old), true) => widen_env_sym(old, &outset),
                _ => outset,
            };
            if envs[id].as_ref() != Some(&new) {
                envs[id] = Some(new);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if sweeps > 200 {
            break;
        }
    }
    SymIntervalAnalysis {
        envs: envs
            .into_iter()
            .map(|e| e.unwrap_or_else(|| SymEnv::new(universe)))
            .collect(),
    }
}

/// Bounds check over precomputed symbol-indexed environments; verdicts are
/// identical to [`check_bounds`].
pub fn check_bounds_sym(
    cfg: &Cfg<'_>,
    f: &Function,
    syms: &FnSymbols<'_>,
    analysis: &SymIntervalAnalysis,
) -> BoundsReport {
    let mut caps: BTreeMap<&str, usize> = BTreeMap::new();
    for p in &f.params {
        if let Some(c) = p.ty.buffer_capacity() {
            caps.insert(p.name.as_str(), c);
        }
    }
    visit::walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Let { name, ty, .. } = &s.kind {
            if let Some(c) = ty.buffer_capacity() {
                caps.insert(name.as_str(), c);
            }
        }
    });

    let mut report = BoundsReport::default();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let env = &analysis.envs[id];
        let mut check = |base: &str, index: &Expr| {
            let Some(&cap) = caps.get(base) else {
                report.unknown += 1;
                return;
            };
            let idx = eval_sym(index, env, syms);
            if idx.is_bottom() || (idx.lo >= 0 && idx.hi < cap as i64) {
                report.safe += 1;
            } else if idx.hi < 0 || idx.lo >= cap as i64 {
                report.out_of_bounds += 1;
            } else {
                report.unknown += 1;
            }
        };
        let exprs: Vec<&Expr> = match &node.kind {
            NodeKind::Stmt(stmt) => {
                if let StmtKind::Assign {
                    target: LValue::Index { base, index, .. },
                    ..
                } = &stmt.kind
                {
                    check(base, index);
                }
                visit::stmt_exprs(stmt)
            }
            NodeKind::Cond(c) => vec![c],
            _ => vec![],
        };
        for root in exprs {
            visit::walk_expr(root, &mut |e| {
                if let ExprKind::Index { base, index } = &e.kind {
                    if let ExprKind::Var(name) = &base.kind {
                        check(name, index);
                    }
                }
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, Dialect};

    #[test]
    fn interval_lattice_ops() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.join(&b), Interval::new(0, 20));
        assert_eq!(a.meet(&b), Interval::new(5, 10));
        assert!(Interval::new(3, 2).is_bottom());
        assert!(Interval::TOP.is_top());
        assert_eq!(Interval::BOTTOM.join(&a), a);
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(1, 3);
        let b = Interval::new(-2, 2);
        assert_eq!(a.add(&b), Interval::new(-1, 5));
        assert_eq!(a.sub(&b), Interval::new(-1, 5));
        assert_eq!(a.mul(&b), Interval::new(-6, 6));
        assert_eq!(
            Interval::new(0, 100).rem(&Interval::constant(8)),
            Interval::new(0, 7)
        );
    }

    #[test]
    fn arithmetic_with_infinities_saturates() {
        let top = Interval::TOP;
        let c = Interval::constant(5);
        assert_eq!(top.add(&c), Interval::TOP);
        assert!(!Interval::new(0, i64::MAX).add(&c).is_bottom());
    }

    #[test]
    fn widen_jumps_to_infinity() {
        let old = Interval::new(0, 10);
        let grown = Interval::new(0, 11);
        assert_eq!(old.widen(&grown), Interval::new(0, i64::MAX));
        let shrunk = Interval::new(2, 9);
        assert_eq!(old.widen(&shrunk), old);
    }

    fn func(src: &str) -> minilang::Module {
        parse_module("t.c", src, Dialect::C).unwrap()
    }

    #[test]
    fn constant_propagation_through_straight_line() {
        let m = func("fn f() { let x: int = 3; let y: int = x + 4; let z: int = y * 2; }");
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let a = analyze_cfg(&cfg, f);
        // The exit env is at the Exit node.
        let exit_env = &a.envs[cfg.exit];
        assert_eq!(exit_env.get("z"), Some(&Interval::constant(14)));
    }

    #[test]
    fn branch_refinement() {
        let m = func(
            "fn f(n: int) {
                if n < 10 {
                    if n >= 0 {
                        let inside: int = n;
                    }
                }
            }",
        );
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let a = analyze_cfg(&cfg, f);
        // Find the `let inside` node and check n's interval there.
        let node = cfg
            .nodes
            .iter()
            .position(|nd| {
                matches!(nd.kind, NodeKind::Stmt(s)
                    if matches!(&s.kind, StmtKind::Let { name, .. } if name == "inside"))
            })
            .unwrap();
        assert_eq!(a.envs[node].get("n"), Some(&Interval::new(0, 9)));
    }

    #[test]
    fn loop_with_widening_finds_lower_bound() {
        let m = func(
            "fn f(n: int) {
                let i: int = 0;
                while i < n { i = i + 1; }
                let after: int = i;
            }",
        );
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let a = analyze_cfg(&cfg, f);
        let node = cfg
            .nodes
            .iter()
            .position(|nd| {
                matches!(nd.kind, NodeKind::Stmt(s)
                    if matches!(&s.kind, StmtKind::Let { name, .. } if name == "after"))
            })
            .unwrap();
        let i = a.envs[node].get("i").copied().unwrap();
        // Widening loses the upper bound but i ≥ 0 must survive.
        assert!(i.lo >= 0, "lower bound lost: {i}");
    }

    #[test]
    fn assume_conjunction_refines_both() {
        let env = Env::new();
        let m = func("fn f(a: int) { if a > 2 && a < 7 { let x: int = a; } }");
        let f = &m.functions[0];
        let cfg = Cfg::build(f);
        let a = analyze_cfg(&cfg, f);
        let node = cfg
            .nodes
            .iter()
            .position(|nd| {
                matches!(nd.kind, NodeKind::Stmt(s) if matches!(&s.kind, StmtKind::Let { .. }))
            })
            .unwrap();
        assert_eq!(a.envs[node].get("a"), Some(&Interval::new(3, 6)));
        drop(env);
    }

    #[test]
    fn contradictory_assumption_is_none() {
        let mut env = Env::new();
        env.insert("x".into(), Interval::new(5, 5));
        let m = func("fn f(x: int) { if x < 3 { } }");
        let StmtKind::If { cond, .. } = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(assume(cond, true, &env).is_none());
        assert!(assume(cond, false, &env).is_some());
    }

    #[test]
    fn bounds_check_constant_safe_and_unsafe() {
        let m = func(
            "fn f() {
                let buf: int[8];
                buf[0] = 1;
                buf[7] = 2;
                buf[8] = 3;
            }",
        );
        let r = check_bounds(&m.functions[0]);
        assert_eq!(
            r,
            BoundsReport {
                safe: 2,
                out_of_bounds: 1,
                unknown: 0
            }
        );
    }

    #[test]
    fn bounds_check_guarded_loop_is_safe() {
        let m = func(
            "fn f(n: int) {
                let buf: int[16];
                for i = 0; i < 16; i += 1 { buf[i] = i; }
            }",
        );
        let r = check_bounds(&m.functions[0]);
        assert_eq!(r.out_of_bounds, 0);
        assert_eq!(r.safe, 1);
    }

    #[test]
    fn bounds_check_unguarded_parameter_is_unknown() {
        let m = func("fn f(i: int) { let buf: int[8]; buf[i] = 1; }");
        let r = check_bounds(&m.functions[0]);
        assert_eq!(r.unknown, 1);
    }

    #[test]
    fn bounds_check_off_by_one_loop_detected_as_unknown_or_oob() {
        // `i <= 16` overruns a 16-element buffer on the last iteration: the
        // refined interval on the true edge is [0, 16], not inside [0, 15].
        let m = func(
            "fn f() {
                let buf: int[16];
                for i = 0; i <= 16; i += 1 { buf[i] = i; }
            }",
        );
        let r = check_bounds(&m.functions[0]);
        assert_eq!(r.safe, 0);
        assert_eq!(r.out_of_bounds + r.unknown, 1);
    }

    #[test]
    fn sym_analysis_matches_legacy_envs_and_bounds() {
        let sources = [
            "fn f() { let buf: int[8]; buf[0] = 1; buf[7] = 2; buf[8] = 3; }",
            "fn f(n: int) { let buf: int[16]; for i = 0; i < 16; i += 1 { buf[i] = i; } }",
            "fn f(i: int) { let buf: int[8]; buf[i] = 1; }",
            "fn f(a: int) { if a > 2 && a < 7 { let x: int = a; let b: int[4]; b[x - 3] = 0; } }",
            "fn f(n: int) { let i: int = 0; while i < n { i = i + 1; } let after: int = i; }",
        ];
        for src in sources {
            let m = func(src);
            let f = &m.functions[0];
            let cfg = Cfg::build(f);
            let order = cfg.reverse_postorder();
            let mut table = crate::symbols::SymbolTable::new();
            table.intern_function(f);
            let syms = FnSymbols::build(f, &table);

            let legacy = analyze_cfg(&cfg, f);
            let sym = analyze_cfg_sym(&cfg, f, &syms, &order);
            // Every env agrees: same present variables, same intervals.
            for (id, env) in legacy.envs.iter().enumerate() {
                for (name, iv) in env {
                    let local = syms.local(name).unwrap();
                    assert!(sym.envs[id].contains(local), "{src}: {name} missing");
                    assert_eq!(sym.envs[id].get(local), *iv, "{src}: {name} differs");
                }
                let present = sym.envs[id].present.count();
                assert_eq!(present, env.len(), "{src}: node {id} domain differs");
            }
            assert_eq!(
                check_bounds_sym(&cfg, f, &syms, &sym),
                check_bounds(f),
                "{src}: bounds verdicts differ"
            );
        }
    }

    #[test]
    fn eval_comparison_decides() {
        let mut env = Env::new();
        env.insert("x".into(), Interval::new(0, 5));
        let m = func("fn f(x: int) -> bool { return x < 10; }");
        let StmtKind::Return(Some(e)) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(eval(e, &env), Interval::constant(1));
    }
}
