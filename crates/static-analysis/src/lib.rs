//! Static analyses — the Clairvoyant "testbed" building blocks.
//!
//! §5.1 of the paper calls for "an automated framework to collect all the
//! code properties from the sample applications", citing `cloc`, CCCC and
//! Metrix++ for the basic measures and a body of research analyses for the
//! richer ones (§4.1). This crate implements each of them over MiniLang:
//!
//! | paper citation | module |
//! |---|---|
//! | `cloc` line counting | [`loc`] |
//! | McCabe cyclomatic complexity \[47\] | [`cyclomatic`] |
//! | Halstead software science \[37\] | [`halstead`] |
//! | control-flow analysis (Allen \[15\]) | [`cfg`], [`callgraph`] |
//! | precise data-flow analysis \[56\] | [`dataflow`] |
//! | taint / exposure of inputs | [`taint`] |
//! | abstract interpretation \[27\] | [`interval`] |
//! | symbolic execution path counts (KLEE \[22\]) | [`paths`] |
//! | "code smell" research \[45–68\] | [`smells`] |
//! | basic counts (functions, declarations, branches, args) | [`counts`] |
//! | extensible collector registry (Metrix++ role) | [`registry`], [`features`] |
//!
//! Every analysis exposes a plain function from AST to a result struct, plus
//! a [`registry::MetricCollector`] adapter that flattens the result into
//! named [`features::FeatureVector`] entries for the ML stage.
//!
//! Collectors share one [`context::AnalysisContext`]: identifiers are
//! interned into a [`symbols::SymbolTable`], each function's CFG,
//! reverse-postorder, dominator tree and def/use sets are built exactly
//! once, and the dataflow/taint/interval fixpoints run on dense
//! [`bitset::BitSet`] lattices keyed by [`symbols::SymbolId`].

pub mod bitset;
pub mod callgraph;
pub mod cfg;
pub mod context;
pub mod counts;
pub mod cyclomatic;
pub mod dataflow;
pub mod features;
pub mod halstead;
pub mod interval;
pub mod loc;
pub mod paths;
pub mod registry;
pub mod smells;
pub mod symbols;
pub mod taint;

pub use bitset::BitSet;
pub use context::{AnalysisContext, FunctionContext};
pub use features::FeatureVector;
pub use registry::{
    legacy_standard_vector, standard_registry, MetricCollector, ProgramCollectorAdapter,
    ProgramMetricCollector, Registry,
};
pub use symbols::{SymbolId, SymbolTable};
