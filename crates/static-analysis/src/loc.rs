//! cloc-equivalent line classification.
//!
//! The paper's Figure 2 measures application size with `cloc` [29]: every
//! source line is classified as *code*, *comment*, or *blank*. This module
//! reimplements that classification for MiniLang's dialects, including the
//! awkward cases cloc handles — block comments spanning lines, code and
//! comment on the same line (counted as code), and comment markers inside
//! string literals (not comments).

use minilang::{Dialect, Module, Program};

/// Per-file or aggregated line counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocCounts {
    /// Lines containing at least one token of code.
    pub code: usize,
    /// Lines containing only comment text (and optional whitespace).
    pub comment: usize,
    /// Lines that are empty or whitespace-only.
    pub blank: usize,
}

impl LocCounts {
    /// Total physical lines.
    pub fn total(&self) -> usize {
        self.code + self.comment + self.blank
    }

    /// Code lines in thousands — the x-axis unit of the paper's Figure 2.
    pub fn kloc(&self) -> f64 {
        self.code as f64 / 1000.0
    }

    /// Comment-to-code ratio (0 when there is no code), one of the classic
    /// "code smell" inputs.
    pub fn comment_ratio(&self) -> f64 {
        if self.code == 0 {
            0.0
        } else {
            self.comment as f64 / self.code as f64
        }
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: LocCounts) {
        self.code += other.code;
        self.comment += other.comment;
        self.blank += other.blank;
    }
}

/// Classify every line of `source` under the given dialect's comment syntax.
pub fn count_source(source: &str, dialect: Dialect) -> LocCounts {
    let line_intro = dialect.line_comment();
    let (block_open, block_close) = dialect.block_comment();
    let mut counts = LocCounts::default();
    // Carried across lines: are we inside a block comment?
    let mut in_block = false;

    for line in source.lines() {
        let mut has_code = false;
        let mut has_comment = in_block && !line.trim().is_empty();
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_string = false;

        while i < bytes.len() {
            if in_block {
                has_comment = true;
                if line[i..].starts_with(block_close) {
                    in_block = false;
                    i += block_close.len();
                } else {
                    i += utf8_step(line, i);
                }
                continue;
            }
            if in_string {
                has_code = true;
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    i += 2;
                } else {
                    if bytes[i] == b'"' {
                        in_string = false;
                    }
                    i += 1;
                }
                continue;
            }
            // Outside both string and block comment.
            if line[i..].starts_with(line_intro) {
                has_comment = true;
                break; // rest of the line is comment
            }
            if line[i..].starts_with(block_open) {
                has_comment = true;
                in_block = true;
                i += block_open.len();
                continue;
            }
            let b = bytes[i];
            if b == b'"' {
                // NOTE: in the Python dialect the block-open `"""` is matched
                // above before this single-quote case fires.
                in_string = true;
                has_code = true;
                i += 1;
                continue;
            }
            if !b.is_ascii_whitespace() {
                has_code = true;
            }
            i += utf8_step(line, i);
        }

        if has_code {
            counts.code += 1;
        } else if has_comment {
            counts.comment += 1;
        } else {
            counts.blank += 1;
        }
    }
    counts
}

/// Byte width of the character starting at `i` (1 for ASCII).
fn utf8_step(s: &str, i: usize) -> usize {
    s[i..]
        .chars()
        .next()
        .map(|c| c.len_utf8())
        .max(Some(1))
        .unwrap_or(1)
}

/// Count one module using its own dialect.
pub fn count_module(module: &Module) -> LocCounts {
    count_source(&module.source, module.dialect)
}

/// Aggregate counts across a whole program.
pub fn count_program(program: &Program) -> LocCounts {
    let mut total = LocCounts::default();
    for m in &program.modules {
        total.add(count_module(m));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_code_comment_blank() {
        let src = "let x: int = 1;\n// only comment\n\n   \nx = 2; // trailing\n";
        let c = count_source(src, Dialect::C);
        assert_eq!(
            c,
            LocCounts {
                code: 2,
                comment: 1,
                blank: 2
            }
        );
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn block_comment_spanning_lines() {
        let src = "a;\n/* one\n two\n three */\nb;\n";
        let c = count_source(src, Dialect::C);
        assert_eq!(
            c,
            LocCounts {
                code: 2,
                comment: 3,
                blank: 0
            }
        );
    }

    #[test]
    fn code_before_block_comment_counts_as_code() {
        let src = "a; /* comment\nstill comment */ b;\n";
        let c = count_source(src, Dialect::C);
        // Line 1 has code then comment → code; line 2 has comment then code → code.
        assert_eq!(
            c,
            LocCounts {
                code: 2,
                comment: 0,
                blank: 0
            }
        );
    }

    #[test]
    fn comment_marker_inside_string_is_code() {
        let src = "printf(\"// not a comment /* nope */\");\n";
        let c = count_source(src, Dialect::C);
        assert_eq!(
            c,
            LocCounts {
                code: 1,
                comment: 0,
                blank: 0
            }
        );
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = "printf(\"a\\\"// still string\");\n";
        let c = count_source(src, Dialect::C);
        assert_eq!(c.code, 1);
        assert_eq!(c.comment, 0);
    }

    #[test]
    fn python_dialect_hash_comments() {
        let src = "x = 1\n# comment\n\"\"\" block\nstill \"\"\"\ny = 2\n";
        let c = count_source(src, Dialect::Python);
        assert_eq!(
            c,
            LocCounts {
                code: 2,
                comment: 3,
                blank: 0
            }
        );
    }

    #[test]
    fn hash_is_not_comment_in_c() {
        let c = count_source("# not a c comment\n", Dialect::C);
        assert_eq!(c.code, 1);
    }

    #[test]
    fn blank_lines_inside_block_comment_are_comment_free() {
        // cloc counts whitespace-only lines inside block comments as blank?
        // cloc actually counts them as comment; we count truly-empty lines
        // inside a block comment as blank only when they contain nothing.
        let src = "/*\n\nx\n*/\n";
        let c = count_source(src, Dialect::C);
        assert_eq!(c.code, 0);
        assert_eq!(c.comment + c.blank, 4);
        assert_eq!(c.blank, 1);
    }

    #[test]
    fn totals_and_ratios() {
        let c = LocCounts {
            code: 200,
            comment: 50,
            blank: 10,
        };
        assert_eq!(c.total(), 260);
        assert!((c.kloc() - 0.2).abs() < 1e-12);
        assert!((c.comment_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(LocCounts::default().comment_ratio(), 0.0);
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let src = "a;\n/* unterminated\nmore\n";
        let c = count_source(src, Dialect::C);
        assert_eq!(
            c,
            LocCounts {
                code: 1,
                comment: 2,
                blank: 0
            }
        );
    }

    #[test]
    fn empty_source() {
        assert_eq!(count_source("", Dialect::C), LocCounts::default());
    }

    #[test]
    fn crlf_and_no_trailing_newline() {
        let c = count_source("a;\r\nb;", Dialect::C);
        assert_eq!(c.code, 2);
    }
}
