//! Bounded symbolic path exploration (KLEE-lite [22]).
//!
//! §4.1: *"using symbolic execution or abstract interpretation, we can
//! calculate the number of different execution paths in a program that can
//! be triggered by specific ranges of inputs."* This module enumerates
//! entry→exit paths through a function's CFG with:
//!
//! * a per-path loop bound (each back edge taken at most `loop_bound` times
//!   on one path), standing in for KLEE's loop unrolling;
//! * feasibility pruning using the interval domain — a path whose branch
//!   assumptions are contradictory (e.g. `x < 0` after `x = 5`) is pruned,
//!   which is the "specific ranges of inputs" part;
//! * a global work cap so pathological functions cannot blow up the testbed.

use crate::cfg::{Cfg, EdgeLabel, NodeId, NodeKind};
use crate::interval::{assume, Env, Interval};
use minilang::ast::{Function, Type};

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct PathConfig {
    /// Maximum times one path may traverse the same back edge.
    pub loop_bound: usize,
    /// Stop after visiting this many path states.
    pub max_states: usize,
    /// Count only feasible paths (interval-pruned) when true.
    pub prune_infeasible: bool,
    /// Initial ranges for integer parameters (the "specific ranges of
    /// inputs"); `None` means unconstrained.
    pub input_range: Option<(i64, i64)>,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            loop_bound: 2,
            max_states: 20_000,
            prune_infeasible: true,
            input_range: None,
        }
    }
}

/// Exploration result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathReport {
    /// Complete entry→exit paths found within bounds.
    pub paths: usize,
    /// Paths pruned as infeasible by the interval check.
    pub infeasible: usize,
    /// Paths abandoned because a back edge exceeded the loop bound.
    pub loop_bounded: usize,
    /// True when `max_states` stopped the search early (counts are lower
    /// bounds in that case).
    pub capped: bool,
    /// States visited.
    pub states: usize,
}

/// Explore the paths of one function.
pub fn explore(f: &Function, config: &PathConfig) -> PathReport {
    let cfg = Cfg::build(f);
    explore_cfg(&cfg, f, config)
}

/// Explore over an existing CFG — the fused engine's entry point (the CFG
/// comes from the shared [`crate::context::FunctionContext`]).
pub fn explore_cfg(cfg: &Cfg<'_>, f: &Function, config: &PathConfig) -> PathReport {
    let mut env = Env::new();
    for p in &f.params {
        if p.ty == Type::Int {
            let iv = match config.input_range {
                Some((lo, hi)) => Interval::new(lo, hi),
                None => Interval::TOP,
            };
            env.insert(p.name.clone(), iv);
        }
    }

    let mut report = PathReport {
        paths: 0,
        infeasible: 0,
        loop_bounded: 0,
        capped: false,
        states: 0,
    };
    // Depth-first over (node, env, per-edge traversal counts). Edge counts
    // are path-local, so they ride along on the stack.
    let mut stack: Vec<State> = vec![State {
        node: cfg.entry,
        env,
        edge_counts: Vec::new(),
    }];
    while let Some(state) = stack.pop() {
        report.states += 1;
        if report.states >= config.max_states {
            report.capped = true;
            break;
        }
        if state.node == cfg.exit {
            report.paths += 1;
            continue;
        }
        let node = &cfg.nodes[state.node];
        if node.succs.is_empty() {
            // Dangling node (break with no target etc.) — treat as path end.
            report.paths += 1;
            continue;
        }
        for (i, &succ) in node.succs.iter().enumerate() {
            let label = node.labels[i];
            // Loop bound on repeated edges.
            let key = (state.node, succ, label_key(label));
            let taken = state
                .edge_counts
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            if taken >= config.loop_bound {
                report.loop_bounded += 1;
                continue;
            }
            // Feasibility via branch refinement.
            let new_env = if config.prune_infeasible {
                match (&node.kind, label) {
                    (NodeKind::Cond(cond), EdgeLabel::True) => assume(cond, true, &state.env),
                    (NodeKind::Cond(cond), EdgeLabel::False) => assume(cond, false, &state.env),
                    _ => Some(state.env.clone()),
                }
            } else {
                Some(state.env.clone())
            };
            let Some(mut env) = new_env else {
                report.infeasible += 1;
                continue;
            };
            // Apply the *successor's* state change so its out-edges see it.
            env = crate::interval::apply_node_public(&cfg.nodes[succ].kind, env);
            let mut edge_counts = state.edge_counts.clone();
            match edge_counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => edge_counts.push((key, 1)),
            }
            stack.push(State {
                node: succ,
                env,
                edge_counts,
            });
        }
    }
    report
}

fn label_key(label: EdgeLabel) -> u64 {
    match label {
        EdgeLabel::Jump => 0,
        EdgeLabel::True => 1,
        EdgeLabel::False => 2,
        EdgeLabel::Arm(i) => 3 + i as u64,
    }
}

struct State {
    node: NodeId,
    env: Env,
    edge_counts: Vec<((NodeId, NodeId, u64), usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, Dialect};

    fn paths(src: &str, config: &PathConfig) -> PathReport {
        let m = parse_module("t.c", src, Dialect::C).unwrap();
        explore(&m.functions[0], config)
    }

    #[test]
    fn straight_line_has_one_path() {
        let r = paths("fn f() { let x: int = 1; x = 2; }", &PathConfig::default());
        assert_eq!(r.paths, 1);
        assert_eq!(r.infeasible, 0);
        assert!(!r.capped);
    }

    #[test]
    fn independent_ifs_multiply() {
        let r = paths(
            "fn f(a: int, b: int) {
                if a > 0 { a = 1; }
                if b > 0 { b = 1; }
            }",
            &PathConfig::default(),
        );
        assert_eq!(r.paths, 4);
    }

    #[test]
    fn infeasible_combination_pruned() {
        // x = 5 then `x < 3` cannot be true.
        let r = paths(
            "fn f() {
                let x: int = 5;
                if x < 3 { log_msg(\"dead\"); }
            }",
            &PathConfig::default(),
        );
        assert_eq!(r.paths, 1);
        assert_eq!(r.infeasible, 1);
    }

    #[test]
    fn correlated_branches_pruned() {
        // The same predicate twice: TT and FF are the only feasible paths.
        let r = paths(
            "fn f(x: int) {
                if x > 0 { log_msg(\"a\"); }
                if x > 0 { log_msg(\"b\"); }
            }",
            &PathConfig::default(),
        );
        assert_eq!(r.paths, 2);
        assert_eq!(r.infeasible, 2);
    }

    #[test]
    fn without_pruning_all_paths_counted() {
        let cfg = PathConfig {
            prune_infeasible: false,
            ..Default::default()
        };
        let r = paths(
            "fn f(x: int) {
                if x > 0 { log_msg(\"a\"); }
                if x > 0 { log_msg(\"b\"); }
            }",
            &cfg,
        );
        assert_eq!(r.paths, 4);
        assert_eq!(r.infeasible, 0);
    }

    #[test]
    fn loop_paths_bounded() {
        let cfg = PathConfig {
            loop_bound: 2,
            ..Default::default()
        };
        let r = paths(
            "fn f(n: int) { let i: int = 0; while i < n { i += 1; } }",
            &cfg,
        );
        // 0, 1 or 2 iterations complete; deeper unrollings are bounded away.
        assert_eq!(r.paths, 3);
        assert!(r.loop_bounded > 0);
    }

    #[test]
    fn input_range_limits_loop_paths() {
        // With n ∈ [0, 1] only 0- and 1-iteration paths are feasible.
        let cfg = PathConfig {
            loop_bound: 5,
            input_range: Some((0, 1)),
            ..Default::default()
        };
        let r = paths(
            "fn f(n: int) { let i: int = 0; while i < n { i += 1; } }",
            &cfg,
        );
        assert_eq!(r.paths, 2);
    }

    #[test]
    fn constant_false_loop_has_single_path() {
        let r = paths(
            "fn f() { let i: int = 10; while i < 3 { i += 1; } }",
            &PathConfig::default(),
        );
        assert_eq!(r.paths, 1);
        assert_eq!(r.infeasible, 1);
    }

    #[test]
    fn switch_arms_fan_out() {
        let r = paths(
            "fn f(x: int) { switch x { case 1: { } case 2: { } default: { } } }",
            &PathConfig::default(),
        );
        assert_eq!(r.paths, 3);
    }

    #[test]
    fn state_cap_reported() {
        let cfg = PathConfig {
            max_states: 10,
            ..Default::default()
        };
        let r = paths(
            "fn f(a: int, b: int, c: int, d: int) {
                if a > 0 { } if b > 0 { } if c > 0 { } if d > 0 { }
            }",
            &cfg,
        );
        assert!(r.capped);
    }

    #[test]
    fn return_in_branch_shortens_paths() {
        let r = paths(
            "fn f(x: int) -> int {
                if x > 0 { return 1; }
                if x < -5 { return 2; }
                return 0;
            }",
            &PathConfig::default(),
        );
        // Paths: x>0; x<=0 ∧ x<-5; x<=0 ∧ x>=-5 → 3.
        assert_eq!(r.paths, 3);
    }
}
