//! The extensible metric-collector registry (the Metrix++ role).
//!
//! §5.1: *"Metrix++ is extensible to collect other code properties"* — the
//! testbed needs a uniform way to run every analysis over an application and
//! flatten the results into one [`FeatureVector`]. A [`MetricCollector`] is
//! one analysis adapter; the [`Registry`] runs them all.
//! [`standard_registry`] wires up every collector in this crate.

use crate::features::FeatureVector;
use crate::paths::PathConfig;
use crate::{
    callgraph, counts, cyclomatic, dataflow, halstead, interval, loc, paths, smells, taint,
};
use minilang::ast::Program;

/// One analysis that contributes features for a program.
pub trait MetricCollector {
    /// Stable collector name (also the feature-name prefix by convention).
    fn name(&self) -> &'static str;
    /// Run the analysis and append features.
    fn collect(&self, program: &Program, out: &mut FeatureVector);
}

/// An ordered set of collectors.
#[derive(Default)]
pub struct Registry {
    collectors: Vec<Box<dyn MetricCollector + Send + Sync>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a collector (builder style).
    pub fn with(mut self, c: Box<dyn MetricCollector + Send + Sync>) -> Self {
        self.collectors.push(c);
        self
    }

    /// Registered collector names, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.collectors.iter().map(|c| c.name()).collect()
    }

    /// Run every collector over `program`.
    pub fn run(&self, program: &Program) -> FeatureVector {
        let mut fv = FeatureVector::new();
        for c in &self.collectors {
            c.collect(program, &mut fv);
        }
        fv
    }
}

/// The full standard collector set used by the Clairvoyant testbed.
pub fn standard_registry() -> Registry {
    Registry::new()
        .with(Box::new(LocCollector))
        .with(Box::new(CyclomaticCollector))
        .with(Box::new(HalsteadCollector))
        .with(Box::new(CountsCollector))
        .with(Box::new(CallGraphCollector))
        .with(Box::new(DataflowCollector))
        .with(Box::new(TaintCollector))
        .with(Box::new(IntervalCollector))
        .with(Box::new(PathCollector))
        .with(Box::new(SmellCollector))
        .with(Box::new(LanguageCollector))
}

/// `loc.*` — cloc-equivalent line counts.
pub struct LocCollector;

impl MetricCollector for LocCollector {
    fn name(&self) -> &'static str {
        "loc"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let c = loc::count_program(program);
        out.set("loc.code", c.code as f64);
        out.set("loc.comment", c.comment as f64);
        out.set("loc.blank", c.blank as f64);
        out.set("loc.total", c.total() as f64);
        out.set("loc.kloc", c.kloc());
        out.set("loc.comment_ratio", c.comment_ratio());
        out.set("loc.log10_kloc", (c.kloc().max(1e-3)).log10());
        out.set("loc.files", program.modules.len() as f64);
    }
}

/// `cyclomatic.*` — McCabe complexity distribution.
pub struct CyclomaticCollector;

impl MetricCollector for CyclomaticCollector {
    fn name(&self) -> &'static str {
        "cyclomatic"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let s = cyclomatic::program_complexity(program);
        out.set("cyclomatic.total", s.total as f64);
        out.set("cyclomatic.max", s.max as f64);
        out.set("cyclomatic.mean", s.mean);
        out.set("cyclomatic.over_10", s.over_10 as f64);
        out.set("cyclomatic.log10_total", (s.total.max(1) as f64).log10());
    }
}

/// `halstead.*` — software-science measures.
pub struct HalsteadCollector;

impl MetricCollector for HalsteadCollector {
    fn name(&self) -> &'static str {
        "halstead"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let h = halstead::program_halstead(program);
        out.set("halstead.vocabulary", h.vocabulary() as f64);
        out.set("halstead.length", h.length() as f64);
        out.set("halstead.volume", h.volume());
        out.set("halstead.difficulty", h.difficulty());
        out.set("halstead.effort", h.effort());
        out.set("halstead.estimated_bugs", h.estimated_bugs());
    }
}

/// `counts.*` — basic structural counts (the Shin et al. feature family).
pub struct CountsCollector;

impl MetricCollector for CountsCollector {
    fn name(&self) -> &'static str {
        "counts"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let c = counts::program_counts(program);
        out.set("counts.functions", c.functions as f64);
        out.set("counts.declarations", c.declarations as f64);
        out.set("counts.globals", c.globals as f64);
        out.set("counts.branches", c.branches as f64);
        out.set("counts.loops", c.loops as f64);
        out.set("counts.parameters", c.parameters as f64);
        out.set("counts.returning_functions", c.returning_functions as f64);
        out.set("counts.endpoints", c.endpoints as f64);
        out.set("counts.privileged_functions", c.privileged_functions as f64);
        out.set("counts.buffers", c.buffers as f64);
        out.set("counts.buffer_capacity", c.buffer_capacity as f64);
        out.set("counts.calls", c.calls as f64);
        out.set("counts.returns", c.returns as f64);
        let mean_params = if c.functions == 0 {
            0.0
        } else {
            c.parameters as f64 / c.functions as f64
        };
        out.set("counts.mean_parameters", mean_params);
    }
}

/// `callgraph.*` — calling/returning target counts (Allen-style).
pub struct CallGraphCollector;

impl MetricCollector for CallGraphCollector {
    fn name(&self) -> &'static str {
        "callgraph"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let s = callgraph::CallGraph::build(program).stats();
        out.set("callgraph.call_edges", s.call_edges as f64);
        out.set("callgraph.intrinsic_edges", s.intrinsic_edges as f64);
        out.set("callgraph.unresolved_edges", s.unresolved_edges as f64);
        out.set("callgraph.max_out_degree", s.max_out_degree as f64);
        out.set("callgraph.max_in_degree", s.max_in_degree as f64);
        out.set("callgraph.leaf_functions", s.leaf_functions as f64);
        out.set("callgraph.root_functions", s.root_functions as f64);
        out.set(
            "callgraph.recursive_functions",
            s.recursive_functions as f64,
        );
    }
}

/// `dataflow.*` — def-use statistics summed over functions.
pub struct DataflowCollector;

impl MetricCollector for DataflowCollector {
    fn name(&self) -> &'static str {
        "dataflow"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let mut total = dataflow::DataflowStats::default();
        let globals: Vec<String> = program
            .modules
            .iter()
            .flat_map(|m| m.globals.iter().map(|g| g.name.clone()))
            .collect();
        for f in program.functions() {
            let cfg = crate::cfg::Cfg::build(f);
            let s = dataflow::dataflow_stats(&cfg, f, &globals);
            total.defs += s.defs;
            total.du_pairs += s.du_pairs;
            total.dead_stores += s.dead_stores;
            total.possibly_uninitialized_uses += s.possibly_uninitialized_uses;
        }
        out.set("dataflow.defs", total.defs as f64);
        out.set("dataflow.du_pairs", total.du_pairs as f64);
        out.set("dataflow.dead_stores", total.dead_stores as f64);
        out.set(
            "dataflow.uninitialized_uses",
            total.possibly_uninitialized_uses as f64,
        );
    }
}

/// `taint.*` — source→sink flow counts.
pub struct TaintCollector;

impl MetricCollector for TaintCollector {
    fn name(&self) -> &'static str {
        "taint"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let r = taint::analyze(program);
        out.set("taint.flows", r.flows.len() as f64);
        out.set("taint.exposed_flows", r.exposed_flows() as f64);
        out.set("taint.source_calls", r.source_calls as f64);
        out.set("taint.sink_calls", r.sink_calls as f64);
        out.set(
            "taint.tainted_entry_functions",
            r.tainted_entry_functions.len() as f64,
        );
    }
}

/// `bounds.*` — interval-proved buffer access safety.
pub struct IntervalCollector;

impl MetricCollector for IntervalCollector {
    fn name(&self) -> &'static str {
        "bounds"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let mut total = interval::BoundsReport::default();
        for f in program.functions() {
            let r = interval::check_bounds(f);
            total.safe += r.safe;
            total.out_of_bounds += r.out_of_bounds;
            total.unknown += r.unknown;
        }
        out.set("bounds.safe", total.safe as f64);
        out.set("bounds.out_of_bounds", total.out_of_bounds as f64);
        out.set("bounds.unknown", total.unknown as f64);
        let checked = total.safe + total.out_of_bounds + total.unknown;
        let unproved_ratio = if checked == 0 {
            0.0
        } else {
            (total.out_of_bounds + total.unknown) as f64 / checked as f64
        };
        out.set("bounds.unproved_ratio", unproved_ratio);
    }
}

/// `paths.*` — bounded symbolic path counts.
pub struct PathCollector;

impl MetricCollector for PathCollector {
    fn name(&self) -> &'static str {
        "paths"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        // Per-function exploration with modest bounds; sum of log-counts so
        // one explosive function doesn't swamp the feature.
        let config = PathConfig {
            max_states: 4_000,
            ..Default::default()
        };
        let mut feasible = 0f64;
        let mut infeasible = 0usize;
        let mut log_sum = 0f64;
        let mut capped = 0usize;
        for f in program.functions() {
            let r = paths::explore(f, &config);
            feasible += r.paths as f64;
            infeasible += r.infeasible;
            log_sum += ((r.paths + 1) as f64).log2();
            capped += r.capped as usize;
        }
        out.set("paths.feasible", feasible);
        out.set("paths.infeasible", infeasible as f64);
        out.set("paths.log2_sum", log_sum);
        out.set("paths.capped_functions", capped as f64);
    }
}

/// `smells.*` — per-kind smell counts.
pub struct SmellCollector;

impl MetricCollector for SmellCollector {
    fn name(&self) -> &'static str {
        "smells"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        let found = smells::detect(program, &smells::Thresholds::default());
        let by_kind = smells::counts_by_kind(&found);
        use smells::SmellKind::*;
        let all = [
            (LongMethod, "smells.long_method"),
            (LongParameterList, "smells.long_parameter_list"),
            (DeepNesting, "smells.deep_nesting"),
            (GodFunction, "smells.god_function"),
            (SparseComments, "smells.sparse_comments"),
            (DuplicateCode, "smells.duplicate_code"),
            (DeprecatedCall, "smells.deprecated_call"),
            (DeadCode, "smells.dead_code"),
        ];
        for (kind, name) in all {
            out.set(name, by_kind.get(&kind).copied().unwrap_or(0) as f64);
        }
        out.set("smells.total", found.len() as f64);
    }
}

/// `lang.*` — one-hot primary-language indicators (the Figure 2 legend).
pub struct LanguageCollector;

impl MetricCollector for LanguageCollector {
    fn name(&self) -> &'static str {
        "lang"
    }

    fn collect(&self, program: &Program, out: &mut FeatureVector) {
        for d in minilang::Dialect::ALL {
            let name = format!("lang.is_{}", d.extension());
            out.set(name, (program.dialect == d) as u8 as f64);
        }
        out.set(
            "lang.memory_unsafe",
            program.dialect.is_memory_unsafe() as u8 as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program() -> Program {
        parse_program(
            "app",
            Dialect::C,
            &[(
                "m.c".into(),
                "@endpoint(network)
                 fn handle(req: str) {
                     let buf: str[64];
                     strcpy(buf, req);
                 }
                 fn util(n: int) -> int {
                     let acc: int = 0;
                     for i = 0; i < n; i += 1 { acc += i; }
                     return acc;
                 }"
                .into(),
            )],
        )
        .unwrap()
    }

    #[test]
    fn standard_registry_produces_rich_vector() {
        let fv = standard_registry().run(&program());
        // Every collector family must contribute.
        for prefix in [
            "loc.",
            "cyclomatic.",
            "halstead.",
            "counts.",
            "callgraph.",
            "dataflow.",
            "taint.",
            "bounds.",
            "paths.",
            "smells.",
            "lang.",
        ] {
            assert!(
                !fv.with_prefix(prefix).is_empty(),
                "no features with prefix {prefix}"
            );
        }
        assert!(fv.len() >= 50, "expected a wide vector, got {}", fv.len());
    }

    #[test]
    fn features_reflect_program_facts() {
        let fv = standard_registry().run(&program());
        assert_eq!(fv.get("counts.functions"), Some(2.0));
        assert_eq!(fv.get("counts.endpoints"), Some(1.0));
        assert_eq!(fv.get("taint.flows"), Some(1.0));
        assert_eq!(fv.get("lang.is_c"), Some(1.0));
        assert_eq!(fv.get("lang.is_py"), Some(0.0));
        assert_eq!(fv.get("lang.memory_unsafe"), Some(1.0));
        assert!(fv.get("loc.code").unwrap() > 0.0);
    }

    #[test]
    fn registry_names_listed_in_order() {
        let names = standard_registry().names();
        assert_eq!(names.first(), Some(&"loc"));
        assert!(names.contains(&"taint"));
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn empty_registry_empty_vector() {
        let fv = Registry::new().run(&program());
        assert!(fv.is_empty());
    }

    #[test]
    fn custom_collector_extensibility() {
        struct Custom;
        impl MetricCollector for Custom {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn collect(&self, program: &Program, out: &mut FeatureVector) {
                out.set("custom.modules", program.modules.len() as f64);
            }
        }
        let fv = Registry::new().with(Box::new(Custom)).run(&program());
        assert_eq!(fv.get("custom.modules"), Some(1.0));
    }
}
