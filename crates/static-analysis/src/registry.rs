//! The extensible metric-collector registry (the Metrix++ role).
//!
//! §5.1: *"Metrix++ is extensible to collect other code properties"* — the
//! testbed needs a uniform way to run every analysis over an application and
//! flatten the results into one [`FeatureVector`]. A [`MetricCollector`] is
//! one analysis adapter; the [`Registry`] runs them all.
//! [`standard_registry`] wires up every collector in this crate.
//!
//! Collectors consume a shared [`AnalysisContext`]: CFGs, symbol tables,
//! dataflow/taint/interval/path results are computed once per program and
//! every collector reads the precomputed slice it needs. Collectors written
//! against the older per-program interface keep working through
//! [`ProgramCollectorAdapter`]. The pre-fusion extraction path is retained
//! verbatim as [`legacy_standard_vector`] — the reference implementation
//! benches race against and tests assert bit-identical vectors with.

use crate::context::AnalysisContext;
use crate::features::FeatureVector;
use crate::paths::PathConfig;
use crate::{
    callgraph, counts, cyclomatic, dataflow, halstead, interval, loc, paths, smells, taint,
};
use minilang::ast::Program;
use std::time::Instant;

/// One analysis that contributes features for a program, reading shared
/// precomputed structure from the [`AnalysisContext`].
pub trait MetricCollector {
    /// Stable collector name (also the feature-name prefix by convention).
    fn name(&self) -> &'static str;
    /// Append features computed from the shared context.
    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector);
}

/// The pre-context collector interface: an analysis that only needs the
/// program AST. Wrap implementations in [`ProgramCollectorAdapter`] to
/// register them alongside context-aware collectors.
pub trait ProgramMetricCollector {
    fn name(&self) -> &'static str;
    fn collect(&self, program: &Program, out: &mut FeatureVector);
}

/// Compatibility adapter: lifts a [`ProgramMetricCollector`] into the
/// context-driven [`MetricCollector`] interface.
pub struct ProgramCollectorAdapter<C>(pub C);

impl<C: ProgramMetricCollector> MetricCollector for ProgramCollectorAdapter<C> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        self.0.collect(cx.program, out)
    }
}

/// An ordered set of collectors.
#[derive(Default)]
pub struct Registry {
    collectors: Vec<Box<dyn MetricCollector + Send + Sync>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a collector (builder style).
    pub fn with(mut self, c: Box<dyn MetricCollector + Send + Sync>) -> Self {
        self.collectors.push(c);
        self
    }

    /// Registered collector names, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.collectors.iter().map(|c| c.name()).collect()
    }

    /// Build the shared context and run every collector over `program`.
    pub fn run(&self, program: &Program) -> FeatureVector {
        let cx = AnalysisContext::build(program);
        self.run_with(&cx)
    }

    /// Run every collector over a prebuilt context.
    pub fn run_with(&self, cx: &AnalysisContext<'_>) -> FeatureVector {
        let mut fv = FeatureVector::new();
        for c in &self.collectors {
            c.collect(cx, &mut fv);
        }
        fv
    }

    /// Run every collector, recording per-collector wall time in
    /// microseconds (run order preserved).
    pub fn run_with_timings(
        &self,
        cx: &AnalysisContext<'_>,
    ) -> (FeatureVector, Vec<(String, u64)>) {
        let mut fv = FeatureVector::new();
        let mut timings = Vec::with_capacity(self.collectors.len());
        for c in &self.collectors {
            let start = Instant::now();
            c.collect(cx, &mut fv);
            timings.push((c.name().to_string(), start.elapsed().as_micros() as u64));
        }
        (fv, timings)
    }
}

/// The full standard collector set used by the Clairvoyant testbed.
pub fn standard_registry() -> Registry {
    Registry::new()
        .with(Box::new(LocCollector))
        .with(Box::new(CyclomaticCollector))
        .with(Box::new(HalsteadCollector))
        .with(Box::new(CountsCollector))
        .with(Box::new(CallGraphCollector))
        .with(Box::new(DataflowCollector))
        .with(Box::new(TaintCollector))
        .with(Box::new(IntervalCollector))
        .with(Box::new(PathCollector))
        .with(Box::new(SmellCollector))
        .with(Box::new(LanguageCollector))
}

fn set_loc(program: &Program, out: &mut FeatureVector) {
    let c = loc::count_program(program);
    out.set("loc.code", c.code as f64);
    out.set("loc.comment", c.comment as f64);
    out.set("loc.blank", c.blank as f64);
    out.set("loc.total", c.total() as f64);
    out.set("loc.kloc", c.kloc());
    out.set("loc.comment_ratio", c.comment_ratio());
    out.set("loc.log10_kloc", (c.kloc().max(1e-3)).log10());
    out.set("loc.files", program.modules.len() as f64);
}

fn set_cyclomatic(s: &cyclomatic::ComplexityStats, out: &mut FeatureVector) {
    out.set("cyclomatic.total", s.total as f64);
    out.set("cyclomatic.max", s.max as f64);
    out.set("cyclomatic.mean", s.mean);
    out.set("cyclomatic.over_10", s.over_10 as f64);
    out.set("cyclomatic.log10_total", (s.total.max(1) as f64).log10());
}

fn set_halstead(program: &Program, out: &mut FeatureVector) {
    let h = halstead::program_halstead(program);
    out.set("halstead.vocabulary", h.vocabulary() as f64);
    out.set("halstead.length", h.length() as f64);
    out.set("halstead.volume", h.volume());
    out.set("halstead.difficulty", h.difficulty());
    out.set("halstead.effort", h.effort());
    out.set("halstead.estimated_bugs", h.estimated_bugs());
}

fn set_counts(program: &Program, out: &mut FeatureVector) {
    let c = counts::program_counts(program);
    out.set("counts.functions", c.functions as f64);
    out.set("counts.declarations", c.declarations as f64);
    out.set("counts.globals", c.globals as f64);
    out.set("counts.branches", c.branches as f64);
    out.set("counts.loops", c.loops as f64);
    out.set("counts.parameters", c.parameters as f64);
    out.set("counts.returning_functions", c.returning_functions as f64);
    out.set("counts.endpoints", c.endpoints as f64);
    out.set("counts.privileged_functions", c.privileged_functions as f64);
    out.set("counts.buffers", c.buffers as f64);
    out.set("counts.buffer_capacity", c.buffer_capacity as f64);
    out.set("counts.calls", c.calls as f64);
    out.set("counts.returns", c.returns as f64);
    let mean_params = if c.functions == 0 {
        0.0
    } else {
        c.parameters as f64 / c.functions as f64
    };
    out.set("counts.mean_parameters", mean_params);
}

fn set_callgraph(program: &Program, out: &mut FeatureVector) {
    let s = callgraph::CallGraph::build(program).stats();
    out.set("callgraph.call_edges", s.call_edges as f64);
    out.set("callgraph.intrinsic_edges", s.intrinsic_edges as f64);
    out.set("callgraph.unresolved_edges", s.unresolved_edges as f64);
    out.set("callgraph.max_out_degree", s.max_out_degree as f64);
    out.set("callgraph.max_in_degree", s.max_in_degree as f64);
    out.set("callgraph.leaf_functions", s.leaf_functions as f64);
    out.set("callgraph.root_functions", s.root_functions as f64);
    out.set(
        "callgraph.recursive_functions",
        s.recursive_functions as f64,
    );
}

fn set_dataflow(total: &dataflow::DataflowStats, out: &mut FeatureVector) {
    out.set("dataflow.defs", total.defs as f64);
    out.set("dataflow.du_pairs", total.du_pairs as f64);
    out.set("dataflow.dead_stores", total.dead_stores as f64);
    out.set(
        "dataflow.uninitialized_uses",
        total.possibly_uninitialized_uses as f64,
    );
}

fn set_taint(r: &taint::TaintReport, out: &mut FeatureVector) {
    out.set("taint.flows", r.flows.len() as f64);
    out.set("taint.exposed_flows", r.exposed_flows() as f64);
    out.set("taint.source_calls", r.source_calls as f64);
    out.set("taint.sink_calls", r.sink_calls as f64);
    out.set(
        "taint.tainted_entry_functions",
        r.tainted_entry_functions.len() as f64,
    );
}

fn set_bounds(total: &interval::BoundsReport, out: &mut FeatureVector) {
    out.set("bounds.safe", total.safe as f64);
    out.set("bounds.out_of_bounds", total.out_of_bounds as f64);
    out.set("bounds.unknown", total.unknown as f64);
    let checked = total.safe + total.out_of_bounds + total.unknown;
    let unproved_ratio = if checked == 0 {
        0.0
    } else {
        (total.out_of_bounds + total.unknown) as f64 / checked as f64
    };
    out.set("bounds.unproved_ratio", unproved_ratio);
}

fn set_smells(found: &[smells::Smell], out: &mut FeatureVector) {
    let by_kind = smells::counts_by_kind(found);
    use smells::SmellKind::*;
    let all = [
        (LongMethod, "smells.long_method"),
        (LongParameterList, "smells.long_parameter_list"),
        (DeepNesting, "smells.deep_nesting"),
        (GodFunction, "smells.god_function"),
        (SparseComments, "smells.sparse_comments"),
        (DuplicateCode, "smells.duplicate_code"),
        (DeprecatedCall, "smells.deprecated_call"),
        (DeadCode, "smells.dead_code"),
    ];
    for (kind, name) in all {
        out.set(name, by_kind.get(&kind).copied().unwrap_or(0) as f64);
    }
    out.set("smells.total", found.len() as f64);
}

fn set_language(program: &Program, out: &mut FeatureVector) {
    for d in minilang::Dialect::ALL {
        let name = format!("lang.is_{}", d.extension());
        out.set(name, (program.dialect == d) as u8 as f64);
    }
    out.set(
        "lang.memory_unsafe",
        program.dialect.is_memory_unsafe() as u8 as f64,
    );
}

/// `loc.*` — cloc-equivalent line counts.
pub struct LocCollector;

impl MetricCollector for LocCollector {
    fn name(&self) -> &'static str {
        "loc"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        set_loc(cx.program, out);
    }
}

/// `cyclomatic.*` — McCabe complexity distribution, from per-function
/// decision complexities precomputed in the context.
pub struct CyclomaticCollector;

impl MetricCollector for CyclomaticCollector {
    fn name(&self) -> &'static str {
        "cyclomatic"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        let values: Vec<usize> = cx.functions.iter().map(|f| f.decision_complexity).collect();
        let s = cyclomatic::ComplexityStats::from_values(&values);
        set_cyclomatic(&s, out);
    }
}

/// `halstead.*` — software-science measures.
pub struct HalsteadCollector;

impl MetricCollector for HalsteadCollector {
    fn name(&self) -> &'static str {
        "halstead"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        set_halstead(cx.program, out);
    }
}

/// `counts.*` — basic structural counts (the Shin et al. feature family).
pub struct CountsCollector;

impl MetricCollector for CountsCollector {
    fn name(&self) -> &'static str {
        "counts"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        set_counts(cx.program, out);
    }
}

/// `callgraph.*` — calling/returning target counts (Allen-style).
pub struct CallGraphCollector;

impl MetricCollector for CallGraphCollector {
    fn name(&self) -> &'static str {
        "callgraph"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        set_callgraph(cx.program, out);
    }
}

/// `dataflow.*` — def-use statistics summed over the precomputed
/// per-function results.
pub struct DataflowCollector;

impl MetricCollector for DataflowCollector {
    fn name(&self) -> &'static str {
        "dataflow"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        let mut total = dataflow::DataflowStats::default();
        for fcx in &cx.functions {
            total.defs += fcx.dataflow.defs;
            total.du_pairs += fcx.dataflow.du_pairs;
            total.dead_stores += fcx.dataflow.dead_stores;
            total.possibly_uninitialized_uses += fcx.dataflow.possibly_uninitialized_uses;
        }
        set_dataflow(&total, out);
    }
}

/// `taint.*` — source→sink flow counts from the shared interprocedural
/// report (computed once per program, not once per consumer).
pub struct TaintCollector;

impl MetricCollector for TaintCollector {
    fn name(&self) -> &'static str {
        "taint"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        set_taint(&cx.taint, out);
    }
}

/// `bounds.*` — interval-proved buffer access safety.
pub struct IntervalCollector;

impl MetricCollector for IntervalCollector {
    fn name(&self) -> &'static str {
        "bounds"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        let mut total = interval::BoundsReport::default();
        for fcx in &cx.functions {
            total.safe += fcx.bounds.safe;
            total.out_of_bounds += fcx.bounds.out_of_bounds;
            total.unknown += fcx.bounds.unknown;
        }
        set_bounds(&total, out);
    }
}

/// `paths.*` — bounded symbolic path counts. Floating-point sums accumulate
/// in `program.functions()` order (the order contexts are stored in), so the
/// result is bit-identical to the legacy sequential sweep.
pub struct PathCollector;

impl MetricCollector for PathCollector {
    fn name(&self) -> &'static str {
        "paths"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        let mut feasible = 0f64;
        let mut infeasible = 0usize;
        let mut log_sum = 0f64;
        let mut capped = 0usize;
        for fcx in &cx.functions {
            let r = &fcx.paths;
            feasible += r.paths as f64;
            infeasible += r.infeasible;
            log_sum += ((r.paths + 1) as f64).log2();
            capped += r.capped as usize;
        }
        out.set("paths.feasible", feasible);
        out.set("paths.infeasible", infeasible as f64);
        out.set("paths.log2_sum", log_sum);
        out.set("paths.capped_functions", capped as f64);
    }
}

/// `smells.*` — per-kind smell counts; dead-code verdicts come from the
/// context instead of fresh CFG builds.
pub struct SmellCollector;

impl MetricCollector for SmellCollector {
    fn name(&self) -> &'static str {
        "smells"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        let dead: Vec<bool> = cx.functions.iter().map(|f| f.has_dead_code).collect();
        let hashes: Vec<&[u64]> = cx
            .functions
            .iter()
            .map(|f| f.stmt_hashes.as_slice())
            .collect();
        let found =
            smells::detect_precomputed(cx.program, &smells::Thresholds::default(), &dead, &hashes);
        set_smells(&found, out);
    }
}

/// `lang.*` — one-hot primary-language indicators (the Figure 2 legend).
pub struct LanguageCollector;

impl MetricCollector for LanguageCollector {
    fn name(&self) -> &'static str {
        "lang"
    }

    fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
        set_language(cx.program, out);
    }
}

/// The pre-fusion extraction path, preserved in full: every collector redoes
/// its own structural work — per-collector CFG builds, a fresh
/// `taint::analyze`, string-keyed fixpoints — exactly as the standard
/// registry did before [`AnalysisContext`] existed. This is the reference
/// implementation the `analysis_throughput` bench races the fused engine
/// against, and what tests use to assert the fused path is bit-identical.
pub fn legacy_standard_vector(program: &Program) -> FeatureVector {
    let mut out = FeatureVector::new();
    set_loc(program, &mut out);
    set_cyclomatic(&cyclomatic::program_complexity(program), &mut out);
    set_halstead(program, &mut out);
    set_counts(program, &mut out);
    set_callgraph(program, &mut out);
    {
        let mut total = dataflow::DataflowStats::default();
        let globals: Vec<String> = program
            .modules
            .iter()
            .flat_map(|m| m.globals.iter().map(|g| g.name.clone()))
            .collect();
        for f in program.functions() {
            let cfg = crate::cfg::Cfg::build(f);
            let s = dataflow::dataflow_stats(&cfg, f, &globals);
            total.defs += s.defs;
            total.du_pairs += s.du_pairs;
            total.dead_stores += s.dead_stores;
            total.possibly_uninitialized_uses += s.possibly_uninitialized_uses;
        }
        set_dataflow(&total, &mut out);
    }
    set_taint(&taint::analyze(program), &mut out);
    {
        let mut total = interval::BoundsReport::default();
        for f in program.functions() {
            let r = interval::check_bounds(f);
            total.safe += r.safe;
            total.out_of_bounds += r.out_of_bounds;
            total.unknown += r.unknown;
        }
        set_bounds(&total, &mut out);
    }
    {
        let config = PathConfig {
            max_states: 4_000,
            ..Default::default()
        };
        let mut feasible = 0f64;
        let mut infeasible = 0usize;
        let mut log_sum = 0f64;
        let mut capped = 0usize;
        for f in program.functions() {
            let r = paths::explore(f, &config);
            feasible += r.paths as f64;
            infeasible += r.infeasible;
            log_sum += ((r.paths + 1) as f64).log2();
            capped += r.capped as usize;
        }
        out.set("paths.feasible", feasible);
        out.set("paths.infeasible", infeasible as f64);
        out.set("paths.log2_sum", log_sum);
        out.set("paths.capped_functions", capped as f64);
    }
    set_smells(
        &smells::detect(program, &smells::Thresholds::default()),
        &mut out,
    );
    set_language(program, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program() -> Program {
        parse_program(
            "app",
            Dialect::C,
            &[(
                "m.c".into(),
                "@endpoint(network)
                 fn handle(req: str) {
                     let buf: str[64];
                     strcpy(buf, req);
                 }
                 fn util(n: int) -> int {
                     let acc: int = 0;
                     for i = 0; i < n; i += 1 { acc += i; }
                     return acc;
                 }"
                .into(),
            )],
        )
        .unwrap()
    }

    #[test]
    fn standard_registry_produces_rich_vector() {
        let fv = standard_registry().run(&program());
        // Every collector family must contribute.
        for prefix in [
            "loc.",
            "cyclomatic.",
            "halstead.",
            "counts.",
            "callgraph.",
            "dataflow.",
            "taint.",
            "bounds.",
            "paths.",
            "smells.",
            "lang.",
        ] {
            assert!(
                !fv.with_prefix(prefix).is_empty(),
                "no features with prefix {prefix}"
            );
        }
        assert!(fv.len() >= 50, "expected a wide vector, got {}", fv.len());
    }

    #[test]
    fn features_reflect_program_facts() {
        let fv = standard_registry().run(&program());
        assert_eq!(fv.get("counts.functions"), Some(2.0));
        assert_eq!(fv.get("counts.endpoints"), Some(1.0));
        assert_eq!(fv.get("taint.flows"), Some(1.0));
        assert_eq!(fv.get("lang.is_c"), Some(1.0));
        assert_eq!(fv.get("lang.is_py"), Some(0.0));
        assert_eq!(fv.get("lang.memory_unsafe"), Some(1.0));
        assert!(fv.get("loc.code").unwrap() > 0.0);
    }

    #[test]
    fn registry_names_listed_in_order() {
        let names = standard_registry().names();
        assert_eq!(names.first(), Some(&"loc"));
        assert!(names.contains(&"taint"));
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn empty_registry_empty_vector() {
        let fv = Registry::new().run(&program());
        assert!(fv.is_empty());
    }

    #[test]
    fn fused_vector_is_bit_identical_to_legacy() {
        let p = program();
        let fused = standard_registry().run(&p);
        let legacy = legacy_standard_vector(&p);
        assert_eq!(fused, legacy);
    }

    #[test]
    fn run_with_timings_covers_every_collector() {
        let p = program();
        let cx = AnalysisContext::build(&p);
        let reg = standard_registry();
        let (fv, timings) = reg.run_with_timings(&cx);
        assert_eq!(fv, reg.run_with(&cx));
        let names: Vec<&str> = timings.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, reg.names());
    }

    #[test]
    fn custom_collector_extensibility() {
        // Context-aware collectors implement MetricCollector directly…
        struct Custom;
        impl MetricCollector for Custom {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn collect(&self, cx: &AnalysisContext<'_>, out: &mut FeatureVector) {
                out.set("custom.modules", cx.program.modules.len() as f64);
                out.set("custom.functions", cx.functions.len() as f64);
            }
        }
        // …and program-level ones ride through the compat adapter.
        struct OldStyle;
        impl ProgramMetricCollector for OldStyle {
            fn name(&self) -> &'static str {
                "old"
            }
            fn collect(&self, program: &Program, out: &mut FeatureVector) {
                out.set("old.modules", program.modules.len() as f64);
            }
        }
        let fv = Registry::new()
            .with(Box::new(Custom))
            .with(Box::new(ProgramCollectorAdapter(OldStyle)))
            .run(&program());
        assert_eq!(fv.get("custom.modules"), Some(1.0));
        assert_eq!(fv.get("custom.functions"), Some(2.0));
        assert_eq!(fv.get("old.modules"), Some(1.0));
    }
}
