//! Code-smell detection [45, 46, 49, 55, 58, 64, 65, 68].
//!
//! §3 of the paper: *"there is a long line of research using code properties
//! to indicate 'code smell' — symptoms or patterns of bad coding practice,
//! such as lines of comments or numbers of long methods."* Each detector
//! reports instances; their counts become testbed features.

use crate::cfg::Cfg;
use crate::loc;
use minilang::ast::{Annotation, Function, Program};
use minilang::{visit, Span};
use std::collections::HashMap;

/// Kinds of smells the detector recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmellKind {
    /// Function body spans more than [`Thresholds::long_method_lines`] lines.
    LongMethod,
    /// Function takes more than [`Thresholds::long_parameter_list`] params.
    LongParameterList,
    /// Statement nesting deeper than [`Thresholds::deep_nesting`].
    DeepNesting,
    /// A function that calls more than [`Thresholds::god_function_calls`]
    /// distinct callees ("god function").
    GodFunction,
    /// Module comment-to-code ratio below
    /// [`Thresholds::min_comment_ratio`] (undocumented code).
    SparseComments,
    /// Two functions share a duplicated statement sequence (token-identical
    /// printed bodies of length ≥ [`Thresholds::duplicate_window`] stmts).
    DuplicateCode,
    /// Function marked `@deprecated` but still called.
    DeprecatedCall,
    /// Function contains unreachable statements.
    DeadCode,
}

/// One smell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Smell {
    pub kind: SmellKind,
    /// Function name (or module path for module-level smells).
    pub site: String,
    pub span: Span,
}

/// Detection thresholds, tuned to the classic literature defaults.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    pub long_method_lines: usize,
    pub long_parameter_list: usize,
    pub deep_nesting: usize,
    pub god_function_calls: usize,
    pub min_comment_ratio: f64,
    pub duplicate_window: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            long_method_lines: 60,
            long_parameter_list: 5,
            deep_nesting: 4,
            god_function_calls: 10,
            min_comment_ratio: 0.05,
            duplicate_window: 4,
        }
    }
}

/// Detect smells across a program.
pub fn detect(program: &Program, thresholds: &Thresholds) -> Vec<Smell> {
    detect_inner(
        program,
        thresholds,
        &mut |f| !Cfg::build(f).unreachable_nodes().is_empty(),
        &mut stmt_print_hashes,
    )
}

/// Detect smells with per-function verdicts precomputed by the fused
/// engine (`dead[i]` / `stmt_hashes[i]` correspond to the i-th function in
/// `program.functions()` order), so the detector never rebuilds a CFG or
/// touches the pretty-printer.
pub fn detect_precomputed(
    program: &Program,
    thresholds: &Thresholds,
    dead: &[bool],
    stmt_hashes: &[&[u64]],
) -> Vec<Smell> {
    let mut i = 0usize;
    let mut j = 0usize;
    detect_inner(
        program,
        thresholds,
        &mut |_| {
            let d = dead[i];
            i += 1;
            d
        },
        &mut |_| {
            let h = stmt_hashes[j].to_vec();
            j += 1;
            h
        },
    )
}

/// FNV digest of each *top-level* statement's printed form, in order —
/// the per-function raw material of duplicate-code detection. A pure
/// function of the statement list, so the fused engine caches it in the
/// function payload and repeat detections skip the pretty-printer (which
/// dominates this detector's cost) entirely.
pub fn stmt_print_hashes(function: &Function) -> Vec<u64> {
    function
        .body
        .stmts
        .iter()
        .map(|s| {
            let one = minilang::ast::Function {
                name: "x".into(),
                params: vec![],
                ret: minilang::ast::Type::Void,
                body: minilang::ast::Block::new(vec![s.clone()], Span::dummy()),
                annotations: vec![],
                span: Span::dummy(),
            };
            fnv(minilang::printer::print_function(&one).as_bytes())
        })
        .collect()
}

fn detect_inner(
    program: &Program,
    thresholds: &Thresholds,
    dead_code: &mut dyn FnMut(&Function) -> bool,
    body_hashes: &mut dyn FnMut(&Function) -> Vec<u64>,
) -> Vec<Smell> {
    let mut smells = Vec::new();
    let mut deprecated: Vec<&str> = Vec::new();
    for m in &program.modules {
        for f in &m.functions {
            if f.annotations.contains(&Annotation::Deprecated) {
                deprecated.push(&f.name);
            }
        }
    }

    // Program-order body list (name collisions keep the last definition,
    // matching symbol-table semantics). Order matters: which function
    // "claims" a duplicated window decides who gets flagged, so iterating
    // a randomly-seeded HashMap here made the DuplicateCode *count* vary
    // between two detections of the same program in one process.
    let mut bodies: Vec<(String, Vec<u64>)> = Vec::new();
    let mut body_index: HashMap<String, usize> = HashMap::new();
    for m in &program.modules {
        // Module-level: comment ratio.
        let counts = loc::count_module(m);
        if counts.code > 50 && counts.comment_ratio() < thresholds.min_comment_ratio {
            smells.push(Smell {
                kind: SmellKind::SparseComments,
                site: m.path.clone(),
                span: Span::dummy(),
            });
        }
        for f in &m.functions {
            detect_function(f, thresholds, &deprecated, dead_code, &mut smells);
            // Collect printed-statement digests for duplicate detection.
            let printed = body_hashes(f);
            match body_index.get(&f.name) {
                Some(&i) => bodies[i].1 = printed,
                None => {
                    body_index.insert(f.name.clone(), bodies.len());
                    bodies.push((f.name.clone(), printed));
                }
            }
        }
    }

    // Duplicate code: sliding windows of printed-statement digests shared
    // between two different functions.
    let window = thresholds.duplicate_window;
    let mut windows: HashMap<u64, &String> = HashMap::new();
    let mut flagged: Vec<&String> = Vec::new();
    for (name, stmts) in &bodies {
        if stmts.len() < window {
            continue;
        }
        for w in stmts.windows(window) {
            let mut bytes = Vec::with_capacity(window * 8);
            for h in w {
                bytes.extend_from_slice(&h.to_le_bytes());
            }
            let hash = fnv(&bytes);
            match windows.get(&hash) {
                Some(other) if *other != name => {
                    if !flagged.contains(&name) {
                        flagged.push(name);
                    }
                }
                _ => {
                    windows.insert(hash, name);
                }
            }
        }
    }
    for name in flagged {
        smells.push(Smell {
            kind: SmellKind::DuplicateCode,
            site: name.clone(),
            span: Span::dummy(),
        });
    }
    smells
}

fn detect_function(
    f: &Function,
    thresholds: &Thresholds,
    deprecated: &[&str],
    dead_code: &mut dyn FnMut(&Function) -> bool,
    smells: &mut Vec<Smell>,
) {
    let mut push = |kind| {
        smells.push(Smell {
            kind,
            site: f.name.clone(),
            span: f.span,
        })
    };

    // Long method: measured in source lines spanned by the body.
    let body_lines = count_stmts(f);
    if body_lines > thresholds.long_method_lines {
        push(SmellKind::LongMethod);
    }
    if f.params.len() > thresholds.long_parameter_list {
        push(SmellKind::LongParameterList);
    }
    if visit::max_nesting_depth(&f.body) > thresholds.deep_nesting {
        push(SmellKind::DeepNesting);
    }
    let mut callees: Vec<&str> = visit::collect_calls(&f.body);
    callees.sort_unstable();
    callees.dedup();
    if callees.len() > thresholds.god_function_calls {
        push(SmellKind::GodFunction);
    }
    if callees.iter().any(|c| deprecated.contains(c)) {
        push(SmellKind::DeprecatedCall);
    }
    if dead_code(f) {
        push(SmellKind::DeadCode);
    }
}

/// Statement count as a proxy for body length (the synthesized corpus emits
/// roughly one statement per line).
fn count_stmts(f: &Function) -> usize {
    let mut n = 0;
    visit::walk_stmts(&f.body, &mut |_| n += 1);
    n
}

/// Tiny FNV-1a for window hashing (no external dependency).
fn fnv(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Count smells per kind — the feature representation.
pub fn counts_by_kind(smells: &[Smell]) -> HashMap<SmellKind, usize> {
    let mut out = HashMap::new();
    for s in smells {
        *out.entry(s.kind).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn smells_in(src: &str) -> Vec<Smell> {
        let p = parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap();
        detect(&p, &Thresholds::default())
    }

    fn has(smells: &[Smell], kind: SmellKind) -> bool {
        smells.iter().any(|s| s.kind == kind)
    }

    #[test]
    fn long_parameter_list() {
        let s = smells_in("fn f(a: int, b: int, c: int, d: int, e: int, g: int) { }");
        assert!(has(&s, SmellKind::LongParameterList));
    }

    #[test]
    fn five_params_is_fine() {
        let s = smells_in("fn f(a: int, b: int, c: int, d: int, e: int) { }");
        assert!(!has(&s, SmellKind::LongParameterList));
    }

    #[test]
    fn deep_nesting() {
        let s = smells_in(
            "fn f(x: int) {
                if x > 0 { if x > 1 { if x > 2 { if x > 3 { if x > 4 { x = 9; } } } } }
            }",
        );
        assert!(has(&s, SmellKind::DeepNesting));
    }

    #[test]
    fn god_function() {
        let calls: Vec<String> = (0..11).map(|i| format!("callee_{i}();")).collect();
        let defs: Vec<String> = (0..11).map(|i| format!("fn callee_{i}() {{ }}")).collect();
        let src = format!("fn god() {{ {} }}\n{}", calls.join(" "), defs.join("\n"));
        let s = smells_in(&src);
        assert!(has(&s, SmellKind::GodFunction));
    }

    #[test]
    fn long_method_by_statement_count() {
        let stmts: Vec<String> = (0..61).map(|i| format!("let v{i}: int = {i};")).collect();
        let src = format!("fn f() {{ {} }}", stmts.join(" "));
        let s = smells_in(&src);
        assert!(has(&s, SmellKind::LongMethod));
    }

    #[test]
    fn deprecated_call_detected() {
        let s = smells_in(
            "@deprecated fn old_api() { }
             fn user() { old_api(); }",
        );
        assert!(has(&s, SmellKind::DeprecatedCall));
    }

    #[test]
    fn dead_code_detected() {
        let s = smells_in("fn f() -> int { return 1; let x: int = 2; }");
        assert!(has(&s, SmellKind::DeadCode));
    }

    #[test]
    fn duplicate_code_across_functions() {
        let body = "let a: int = 1; let b: int = a + 2; let c: int = b * 3; \
                    let d: int = c - 4; printf(\"%d\", d);";
        let src = format!("fn f() {{ {body} }} fn g() {{ {body} }}");
        let s = smells_in(&src);
        assert!(has(&s, SmellKind::DuplicateCode));
    }

    #[test]
    fn duplicate_flagging_is_deterministic_in_program_order() {
        // `a` and `c` each share one window with `b` but not with each
        // other. In program order `a` claims its window, `b` is flagged
        // against it and claims the tail window, and `c` is flagged
        // against `b` — every detection must agree on exactly that
        // (iterating a randomly-seeded map here used to make the count
        // itself vary between calls).
        let src = "fn a(x: int) { x = 1; x = 2; x = 3; x = 4; }
fn b(x: int) { x = 1; x = 2; x = 3; x = 4; x = 9; x = 5; x = 6; x = 7; x = 8; }
fn c(x: int) { x = 5; x = 6; x = 7; x = 8; }";
        let reference: Vec<String> = smells_in(src)
            .into_iter()
            .filter(|s| s.kind == SmellKind::DuplicateCode)
            .map(|s| s.site)
            .collect();
        assert_eq!(reference, vec!["b".to_string(), "c".to_string()]);
        for _ in 0..32 {
            let again: Vec<String> = smells_in(src)
                .into_iter()
                .filter(|s| s.kind == SmellKind::DuplicateCode)
                .map(|s| s.site)
                .collect();
            assert_eq!(again, reference);
        }
    }

    #[test]
    fn distinct_bodies_are_not_duplicates() {
        let s = smells_in(
            "fn f() { let a: int = 1; let b: int = 2; let c: int = 3; let d: int = 4; }
             fn g() { let a: int = 9; let b: int = 8; let c: int = 7; let d: int = 6; }",
        );
        assert!(!has(&s, SmellKind::DuplicateCode));
    }

    #[test]
    fn sparse_comments_on_large_uncommented_module() {
        let stmts: Vec<String> = (0..60).map(|i| format!("let v{i}: int = {i};")).collect();
        let src = format!("fn f() {{\n{}\n}}", stmts.join("\n"));
        let s = smells_in(&src);
        assert!(has(&s, SmellKind::SparseComments));
    }

    #[test]
    fn commented_module_is_clean() {
        let stmts: Vec<String> = (0..60)
            .map(|i| format!("// step {i}\nlet v{i}: int = {i};"))
            .collect();
        let src = format!("fn f() {{\n{}\n}}", stmts.join("\n"));
        let s = smells_in(&src);
        assert!(!has(&s, SmellKind::SparseComments));
    }

    #[test]
    fn counts_by_kind_tallies() {
        let s = smells_in(
            "fn f() -> int { return 1; let x: int = 2; }
             fn g() -> int { return 1; let x: int = 2; }",
        );
        let counts = counts_by_kind(&s);
        assert_eq!(counts.get(&SmellKind::DeadCode), Some(&2));
    }
}
