//! Identifier interning: every name a program mentions becomes a dense
//! [`SymbolId`], assigned once in a deterministic sequential pass so the
//! bitset lattices in the dataflow/taint/interval fixpoints can index by
//! symbol instead of hashing strings.
//!
//! Numbering order is fixed — module globals in declaration order, then
//! each function's identifiers in [`minilang::visit::function_identifiers`]
//! pre-order — which makes every downstream analysis independent of how
//! many worker threads later consume the table.

use minilang::ast::{Function, Program};
use minilang::visit;
use std::collections::HashMap;

/// Dense identifier handle; index into [`SymbolTable::name`].
pub type SymbolId = u32;

/// Interned identifier table for one program.
#[derive(Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: HashMap<String, SymbolId>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern every identifier in the program: globals first (module
    /// order), then per-function names in visit pre-order.
    pub fn intern_program(program: &Program) -> Self {
        let mut table = SymbolTable::new();
        for module in &program.modules {
            for g in &module.globals {
                table.intern(&g.name);
            }
        }
        for f in program.functions() {
            table.intern_function(f);
        }
        table
    }

    /// Intern one function's identifiers (name, params, body pre-order).
    pub fn intern_function(&mut self, function: &Function) {
        visit::function_identifiers(function, &mut |name| {
            self.intern(name);
        });
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as SymbolId;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Id of an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.ids.get(name).copied()
    }

    /// The interned spelling of `id`.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct symbols (the bitset universe size).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    #[test]
    fn interning_is_deterministic_and_dedups() {
        let program = parse_program(
            "p",
            Dialect::C,
            &[(
                "m.c".into(),
                "global limit: int = 10;
                 fn f(a: int) -> int { let x: int = a + limit; return x; }"
                    .into(),
            )],
        )
        .unwrap();
        let table = SymbolTable::intern_program(&program);
        // Globals first, then function pre-order; duplicates collapse.
        assert_eq!(table.lookup("limit"), Some(0));
        assert_eq!(table.lookup("f"), Some(1));
        assert_eq!(table.lookup("a"), Some(2));
        assert_eq!(table.lookup("x"), Some(3));
        assert_eq!(table.len(), 4);
        assert_eq!(table.name(3), "x");
        assert_eq!(table.lookup("missing"), None);

        let again = SymbolTable::intern_program(&program);
        assert_eq!(again.len(), table.len());
        for id in 0..table.len() as SymbolId {
            assert_eq!(table.name(id), again.name(id));
        }
    }
}
