//! Interprocedural taint analysis.
//!
//! Tracks attacker-controlled data from *sources* (`read_input`, `recv`,
//! `getenv`, `read_file`, parameters of `@untrusted`/`@endpoint` functions)
//! to *dangerous sinks* (`strcpy`, `sprintf`, `exec`, `system`, `printf`,
//! `strcat`, `memcpy`). A source-to-sink flow is the code shape behind most
//! of the CWE classes the paper's hypotheses target (121 stack overflow, 134
//! format string, 78 command injection), so flow counts are among the
//! strongest features the testbed collects.
//!
//! The analysis is a two-phase interprocedural fixpoint:
//!
//! 1. **Summaries** — for every function, compute (a) whether it can return
//!    source-derived data unconditionally and (b) whether tainted parameters
//!    can flow to its return value, iterating until the summary set is
//!    stable (handles recursion).
//! 2. **Entry propagation** — parameters are tainted for annotated entry
//!    points, then call sites with tainted arguments taint their callee's
//!    parameters, to fixpoint; a final intraprocedural pass per function
//!    records every sink call receiving tainted data.

use crate::cfg::{Cfg, NodeKind};
use minilang::ast::{Expr, ExprKind, Function, LValue, Program, StmtKind};
use minilang::{visit, Intrinsic, Span};
use std::collections::{BTreeMap, BTreeSet};

/// How a function may produce tainted output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaintSummary {
    /// Returns data derived from a taint source even with clean parameters.
    pub returns_taint_always: bool,
    /// Returns data derived from its parameters (so tainted args taint the
    /// return value).
    pub returns_taint_if_param: bool,
    /// With tainted parameters, some dangerous sink inside the function (or
    /// its callees) receives tainted data.
    pub param_reaches_sink: bool,
}

/// One detected source→sink flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFlow {
    /// Function containing the sink call.
    pub function: String,
    /// The dangerous intrinsic receiving tainted data.
    pub sink: Intrinsic,
    /// Location of the sink call.
    pub span: Span,
    /// True when the taint entered through the function's own parameters
    /// (an *exposed* flow — reachable from an interface); false when it was
    /// produced by a source call inside the function body.
    pub via_parameters: bool,
}

/// Whole-program taint results.
#[derive(Debug, Clone, Default)]
pub struct TaintReport {
    pub flows: Vec<TaintFlow>,
    /// Functions whose parameters may carry attacker data (annotated entry
    /// points plus functions reached by tainted arguments).
    pub tainted_entry_functions: BTreeSet<String>,
    /// Total taint-source call sites in the program.
    pub source_calls: usize,
    /// Total dangerous-sink call sites in the program.
    pub sink_calls: usize,
    /// Per-function summaries (kept for the attack-graph exploit templates).
    pub summaries: BTreeMap<String, TaintSummary>,
}

impl TaintReport {
    /// Flows reachable from an interface — the ones an attacker can drive.
    pub fn exposed_flows(&self) -> usize {
        self.flows.iter().filter(|f| f.via_parameters).count()
    }
}

/// Run the analysis over a program.
pub fn analyze(program: &Program) -> TaintReport {
    let functions: BTreeMap<&str, &Function> =
        program.functions().map(|f| (f.name.as_str(), f)).collect();

    // Phase 1: summaries to fixpoint.
    let mut summaries: BTreeMap<String, TaintSummary> = functions
        .keys()
        .map(|&n| (n.to_string(), TaintSummary::default()))
        .collect();
    loop {
        let mut changed = false;
        for (&name, &f) in &functions {
            // (a) clean parameters.
            let clean = intra(f, false, &summaries);
            // (b) all parameters tainted.
            let dirty = intra(f, true, &summaries);
            let new = TaintSummary {
                returns_taint_always: clean.returns_taint,
                // Only attribute to params what clean analysis cannot explain.
                returns_taint_if_param: dirty.returns_taint,
                param_reaches_sink: dirty.hit_sink,
            };
            let entry = summaries.get_mut(name).expect("summary exists");
            if *entry != new {
                *entry = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: which functions run with tainted parameters?
    let mut tainted_entry: BTreeSet<String> = program
        .functions()
        .filter(|f| f.is_untrusted() || !f.endpoint_channels().is_empty())
        .map(|f| f.name.clone())
        .collect();
    loop {
        let mut changed = false;
        for (&name, &f) in &functions {
            let params_tainted = tainted_entry.contains(name);
            let result = intra(f, params_tainted, &summaries);
            for callee in result.tainted_arg_callees {
                if functions.contains_key(callee.as_str()) && tainted_entry.insert(callee) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect flows and counts.
    let mut report = TaintReport {
        tainted_entry_functions: tainted_entry.clone(),
        summaries: summaries.clone(),
        ..Default::default()
    };
    for (&name, &f) in &functions {
        let params_tainted = tainted_entry.contains(name);
        let result = intra(f, params_tainted, &summaries);
        for (sink, span, needed_params) in result.sink_hits {
            report.flows.push(TaintFlow {
                function: name.to_string(),
                sink,
                span,
                via_parameters: needed_params && params_tainted,
            });
        }
        visit::walk_exprs(&f.body, &mut |e| {
            if let ExprKind::Call { callee, .. } = &e.kind {
                if let Some(i) = Intrinsic::from_name(callee) {
                    if i.is_taint_source() {
                        report.source_calls += 1;
                    }
                    if i.is_dangerous_sink() {
                        report.sink_calls += 1;
                    }
                }
            }
        });
    }
    report
}

/// Result of one intraprocedural pass. Public (with public fields) so the
/// incremental engine can memoize it across extractions: the result is a
/// pure function of the function's text, `params_tainted`, and the
/// restriction of the summary map to the function's callee names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntraResult {
    pub returns_taint: bool,
    pub hit_sink: bool,
    /// Sink call sites receiving tainted data: (sink, span, and whether the
    /// taint disappears when parameters are clean).
    pub sink_hits: Vec<(Intrinsic, Span, bool)>,
    /// User callees that received a tainted argument.
    pub tainted_arg_callees: Vec<String>,
}

/// Forward taint fixpoint over one function's CFG.
fn intra(
    f: &Function,
    params_tainted: bool,
    summaries: &BTreeMap<String, TaintSummary>,
) -> IntraResult {
    let cfg = Cfg::build(f);
    let order = cfg.reverse_postorder();
    let entry_set: BTreeSet<String> = if params_tainted {
        f.params.iter().map(|p| p.name.clone()).collect()
    } else {
        BTreeSet::new()
    };

    let mut in_sets: Vec<BTreeSet<String>> = vec![BTreeSet::new(); cfg.node_count()];
    let mut out_sets: Vec<BTreeSet<String>> = vec![BTreeSet::new(); cfg.node_count()];
    in_sets[cfg.entry] = entry_set.clone();
    out_sets[cfg.entry] = entry_set;

    let mut changed = true;
    while changed {
        changed = false;
        for &id in &order {
            if id == cfg.entry {
                continue;
            }
            let mut inset: BTreeSet<String> = BTreeSet::new();
            for &p in &cfg.nodes[id].preds {
                inset.extend(out_sets[p].iter().cloned());
            }
            let outset = transfer(&cfg.nodes[id].kind, &inset, summaries);
            if outset != out_sets[id] {
                out_sets[id] = outset;
                changed = true;
            }
            in_sets[id] = inset;
        }
    }

    // Collect results with the stabilized sets, comparing against a
    // clean-parameter baseline to attribute parameter-dependence.
    let mut result = IntraResult {
        returns_taint: false,
        hit_sink: false,
        sink_hits: Vec::new(),
        tainted_arg_callees: Vec::new(),
    };
    for (id, node) in cfg.nodes.iter().enumerate() {
        let tainted = &in_sets[id];
        let exprs: Vec<&Expr> = match &node.kind {
            NodeKind::Stmt(stmt) => {
                if let StmtKind::Return(Some(v)) = &stmt.kind {
                    if expr_tainted(v, tainted, summaries) {
                        result.returns_taint = true;
                    }
                }
                visit::stmt_exprs(stmt)
            }
            NodeKind::Cond(c) => vec![c],
            _ => vec![],
        };
        for root in exprs {
            visit::walk_expr(root, &mut |e| {
                if let ExprKind::Call { callee, args } = &e.kind {
                    let any_arg_tainted = args.iter().any(|a| expr_tainted(a, tainted, summaries));
                    if let Some(i) = Intrinsic::from_name(callee) {
                        if i.is_dangerous_sink() && any_arg_tainted {
                            result.hit_sink = true;
                            // Parameter dependence: would this argument still
                            // be tainted with no tainted vars at all? If the
                            // arg contains a direct source call it would.
                            let from_source_only = args
                                .iter()
                                .any(|a| expr_tainted(a, &BTreeSet::new(), summaries));
                            result.sink_hits.push((i, e.span, !from_source_only));
                        }
                    } else if any_arg_tainted {
                        result.tainted_arg_callees.push(callee.clone());
                        // Callee-side sinks count as a hit for the summary.
                        if summaries.get(callee).is_some_and(|s| s.param_reaches_sink) {
                            result.hit_sink = true;
                        }
                    }
                }
            });
        }
    }
    result
}

/// Transfer function: the tainted-variable set after executing `kind`.
fn transfer(
    kind: &NodeKind<'_>,
    inset: &BTreeSet<String>,
    summaries: &BTreeMap<String, TaintSummary>,
) -> BTreeSet<String> {
    let mut out = inset.clone();
    if let NodeKind::Stmt(stmt) = kind {
        match &stmt.kind {
            StmtKind::Let { name, init, .. } => {
                let t = init
                    .as_ref()
                    .is_some_and(|e| expr_tainted(e, inset, summaries));
                if t {
                    out.insert(name.clone());
                } else {
                    out.remove(name);
                }
            }
            StmtKind::Assign { target, op, value } => {
                let rhs_tainted = expr_tainted(value, inset, summaries);
                match target {
                    LValue::Var(name, _) => {
                        let keeps = op.is_some() && inset.contains(name);
                        if rhs_tainted || keeps {
                            out.insert(name.clone());
                        } else {
                            out.remove(name);
                        }
                    }
                    // Weak update: a tainted element taints the buffer and a
                    // clean write never cleanses it.
                    LValue::Index { base, .. } => {
                        if rhs_tainted {
                            out.insert(base.clone());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Is the value of `e` attacker-controlled under `tainted`?
fn expr_tainted(
    e: &Expr,
    tainted: &BTreeSet<String>,
    summaries: &BTreeMap<String, TaintSummary>,
) -> bool {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Str(_) | ExprKind::Bool(_) => false,
        ExprKind::Var(name) => tainted.contains(name),
        ExprKind::Index { base, index } => {
            expr_tainted(base, tainted, summaries) || expr_tainted(index, tainted, summaries)
        }
        ExprKind::Unary { operand, .. } => expr_tainted(operand, tainted, summaries),
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_tainted(lhs, tainted, summaries) || expr_tainted(rhs, tainted, summaries)
        }
        ExprKind::Call { callee, args } => {
            if let Some(i) = Intrinsic::from_name(callee) {
                if i.is_taint_source() {
                    return true;
                }
                if i.propagates_taint() {
                    return args.iter().any(|a| expr_tainted(a, tainted, summaries));
                }
                false
            } else if let Some(s) = summaries.get(callee) {
                s.returns_taint_always
                    || (s.returns_taint_if_param
                        && args.iter().any(|a| expr_tainted(a, tainted, summaries)))
            } else {
                // Unresolved extern: assume it launders taint away. The
                // bug-finding tools keep a separate eye on unresolved calls.
                false
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Context-driven variant — the fused engine's entry point.
//
// `analyze` rebuilds every function's CFG on every `intra` call, and phase 1
// alone calls `intra` twice per function per sweep; with the final pass the
// legacy path can easily build the same CFG five or more times. The fused
// engine passes prebuilt [`FunctionContext`]s instead and tracks tainted
// variables in dense [`BitSet`]s over each function's local symbols. The
// sweep structure, iteration order (name-sorted, in-place Gauss–Seidel
// summary updates) and transfer functions are the same, so the report is
// identical to `analyze`'s.
// ---------------------------------------------------------------------------

use crate::bitset::BitSet;
use crate::context::{FnSymbols, FunctionContext};

/// A cross-extraction memo for [`IntraResult`]s, implemented by the
/// incremental engine. `idx` indexes into the `fcxs` slice handed to
/// [`analyze_contexts_memo`]; the key is `(params_tainted, digest)` where
/// `digest` is [`summaries_digest`] over the function's callee names —
/// everything an [`intra_ctx`] call reads besides the function text. A hit
/// must return *exactly* the value a fresh `intra_ctx` call would produce
/// (the implementation rebases cached spans when the function moved), so
/// the fixpoint trajectory — and therefore the report — is bit-identical
/// with or without the memo.
pub trait IntraMemo {
    fn get(&self, idx: usize, params_tainted: bool, digest: u64) -> Option<IntraResult>;
    fn put(&self, idx: usize, params_tainted: bool, digest: u64, result: &IntraResult);
}

/// The distinct non-intrinsic callee names a function mentions, sorted —
/// the summary-map entries an intraprocedural pass can observe.
/// (Intrinsic-named callees resolve through [`Intrinsic::from_name`]
/// before the summary map is consulted, so they cannot affect the result.)
pub fn callee_dependencies(f: &Function) -> Vec<String> {
    let mut names = BTreeSet::new();
    visit::walk_exprs(&f.body, &mut |e| {
        if let ExprKind::Call { callee, .. } = &e.kind {
            if Intrinsic::from_name(callee).is_none() {
                names.insert(callee.clone());
            }
        }
    });
    names.into_iter().collect()
}

/// FNV-1a digest of the summary map restricted to `callees` (which must be
/// sorted and deduplicated): per name, its presence in the map and its
/// summary bits. Two summary maps with equal digests are indistinguishable
/// to an intraprocedural pass over a function with these callees.
pub fn summaries_digest(callees: &[String], summaries: &BTreeMap<String, TaintSummary>) -> u64 {
    // Local FNV-1a 64: this crate sits below `pipeline`, so it cannot
    // borrow `pipeline::fnv`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for name in callees {
        eat(&(name.len() as u64).to_le_bytes());
        eat(name.as_bytes());
        match summaries.get(name) {
            None => eat(&[0]),
            Some(s) => eat(&[
                1,
                s.returns_taint_always as u8,
                s.returns_taint_if_param as u8,
                s.param_reaches_sink as u8,
            ]),
        }
    }
    h
}

/// Run the analysis over prebuilt per-function contexts. `fcxs` must be in
/// `program.functions()` order (duplicate names resolve last-wins, exactly
/// like the legacy map construction).
pub fn analyze_contexts(program: &Program, fcxs: &[FunctionContext<'_>]) -> TaintReport {
    run_contexts(program, fcxs, None)
}

/// [`analyze_contexts`] with a cross-extraction memo for the
/// intraprocedural passes. The sweep structure and iteration order are
/// unchanged; only the per-call `intra_ctx` work is elided on memo hits,
/// so the report is bit-identical to the memo-free path. Callgraph-edge
/// invalidation falls out of the key: when a callee's summary changes,
/// every caller's digest changes and its memo entries stop matching.
pub fn analyze_contexts_memo(
    program: &Program,
    fcxs: &[FunctionContext<'_>],
    memo: &dyn IntraMemo,
) -> TaintReport {
    run_contexts(program, fcxs, Some(memo))
}

fn run_contexts(
    program: &Program,
    fcxs: &[FunctionContext<'_>],
    memo: Option<&dyn IntraMemo>,
) -> TaintReport {
    // Name → index into `fcxs`, last-wins on duplicates.
    let functions: BTreeMap<&str, usize> = fcxs
        .iter()
        .enumerate()
        .map(|(i, fcx)| (fcx.function.name.as_str(), i))
        .collect();
    // Callee-name lists only matter when a memo is wired in; the plain
    // path skips the collection walk entirely.
    let callees: Vec<Vec<String>> = match memo {
        Some(_) => fcxs
            .iter()
            .map(|fcx| callee_dependencies(fcx.function))
            .collect(),
        None => Vec::new(),
    };
    let intra = |idx: usize,
                 params_tainted: bool,
                 summaries: &BTreeMap<String, TaintSummary>|
     -> IntraResult {
        let Some(memo) = memo else {
            return intra_ctx(&fcxs[idx], params_tainted, summaries);
        };
        let digest = summaries_digest(&callees[idx], summaries);
        if let Some(hit) = memo.get(idx, params_tainted, digest) {
            return hit;
        }
        let result = intra_ctx(&fcxs[idx], params_tainted, summaries);
        memo.put(idx, params_tainted, digest, &result);
        result
    };

    // Phase 1: summaries to fixpoint.
    let mut summaries: BTreeMap<String, TaintSummary> = functions
        .keys()
        .map(|&n| (n.to_string(), TaintSummary::default()))
        .collect();
    loop {
        let mut changed = false;
        for (&name, &idx) in &functions {
            let clean = intra(idx, false, &summaries);
            let dirty = intra(idx, true, &summaries);
            let new = TaintSummary {
                returns_taint_always: clean.returns_taint,
                returns_taint_if_param: dirty.returns_taint,
                param_reaches_sink: dirty.hit_sink,
            };
            let entry = summaries.get_mut(name).expect("summary exists");
            if *entry != new {
                *entry = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: which functions run with tainted parameters?
    let mut tainted_entry: BTreeSet<String> = program
        .functions()
        .filter(|f| f.is_untrusted() || !f.endpoint_channels().is_empty())
        .map(|f| f.name.clone())
        .collect();
    loop {
        let mut changed = false;
        for (&name, &idx) in &functions {
            let params_tainted = tainted_entry.contains(name);
            let result = intra(idx, params_tainted, &summaries);
            for callee in result.tainted_arg_callees {
                if functions.contains_key(callee.as_str()) && tainted_entry.insert(callee) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect flows and counts.
    let mut report = TaintReport {
        tainted_entry_functions: tainted_entry.clone(),
        summaries: summaries.clone(),
        ..Default::default()
    };
    for (&name, &idx) in &functions {
        let params_tainted = tainted_entry.contains(name);
        let result = intra(idx, params_tainted, &summaries);
        for (sink, span, needed_params) in result.sink_hits {
            report.flows.push(TaintFlow {
                function: name.to_string(),
                sink,
                span,
                via_parameters: needed_params && params_tainted,
            });
        }
        visit::walk_exprs(&fcxs[idx].function.body, &mut |e| {
            if let ExprKind::Call { callee, .. } = &e.kind {
                if let Some(i) = Intrinsic::from_name(callee) {
                    if i.is_taint_source() {
                        report.source_calls += 1;
                    }
                    if i.is_dangerous_sink() {
                        report.sink_calls += 1;
                    }
                }
            }
        });
    }
    report
}

/// Forward taint fixpoint over a prebuilt function context (no CFG build,
/// no string sets).
fn intra_ctx(
    fcx: &FunctionContext<'_>,
    params_tainted: bool,
    summaries: &BTreeMap<String, TaintSummary>,
) -> IntraResult {
    let cfg = &fcx.cfg;
    let syms = &fcx.symbols;
    let universe = syms.len();
    let mut entry_set = BitSet::new(universe);
    if params_tainted {
        for &p in &fcx.param_locals {
            entry_set.insert(p as usize);
        }
    }

    let mut in_sets: Vec<BitSet> = vec![BitSet::new(universe); cfg.node_count()];
    let mut out_sets: Vec<BitSet> = vec![BitSet::new(universe); cfg.node_count()];
    in_sets[cfg.entry] = entry_set.clone();
    out_sets[cfg.entry] = entry_set;

    let mut changed = true;
    while changed {
        changed = false;
        for &id in &fcx.rpo {
            if id == cfg.entry {
                continue;
            }
            let mut inset = BitSet::new(universe);
            for &p in &cfg.nodes[id].preds {
                inset.union_with(&out_sets[p]);
            }
            let outset = transfer_sym(&cfg.nodes[id].kind, &inset, syms, summaries);
            if outset != out_sets[id] {
                out_sets[id] = outset;
                changed = true;
            }
            in_sets[id] = inset;
        }
    }

    let empty = BitSet::new(universe);
    let mut result = IntraResult {
        returns_taint: false,
        hit_sink: false,
        sink_hits: Vec::new(),
        tainted_arg_callees: Vec::new(),
    };
    for (id, node) in cfg.nodes.iter().enumerate() {
        let tainted = &in_sets[id];
        let exprs: Vec<&Expr> = match &node.kind {
            NodeKind::Stmt(stmt) => {
                if let StmtKind::Return(Some(v)) = &stmt.kind {
                    if expr_tainted_sym(v, tainted, syms, summaries) {
                        result.returns_taint = true;
                    }
                }
                visit::stmt_exprs(stmt)
            }
            NodeKind::Cond(c) => vec![c],
            _ => vec![],
        };
        for root in exprs {
            visit::walk_expr(root, &mut |e| {
                if let ExprKind::Call { callee, args } = &e.kind {
                    let any_arg_tainted = args
                        .iter()
                        .any(|a| expr_tainted_sym(a, tainted, syms, summaries));
                    if let Some(i) = Intrinsic::from_name(callee) {
                        if i.is_dangerous_sink() && any_arg_tainted {
                            result.hit_sink = true;
                            let from_source_only = args
                                .iter()
                                .any(|a| expr_tainted_sym(a, &empty, syms, summaries));
                            result.sink_hits.push((i, e.span, !from_source_only));
                        }
                    } else if any_arg_tainted {
                        result.tainted_arg_callees.push(callee.clone());
                        if summaries.get(callee).is_some_and(|s| s.param_reaches_sink) {
                            result.hit_sink = true;
                        }
                    }
                }
            });
        }
    }
    result
}

/// Transfer function over dense tainted-local sets; mirrors [`transfer`].
fn transfer_sym(
    kind: &NodeKind<'_>,
    inset: &BitSet,
    syms: &FnSymbols<'_>,
    summaries: &BTreeMap<String, TaintSummary>,
) -> BitSet {
    let mut out = inset.clone();
    if let NodeKind::Stmt(stmt) = kind {
        match &stmt.kind {
            StmtKind::Let { name, init, .. } => {
                let local = syms.local(name).expect("let interned") as usize;
                let t = init
                    .as_ref()
                    .is_some_and(|e| expr_tainted_sym(e, inset, syms, summaries));
                if t {
                    out.insert(local);
                } else {
                    out.remove(local);
                }
            }
            StmtKind::Assign { target, op, value } => {
                let rhs_tainted = expr_tainted_sym(value, inset, syms, summaries);
                match target {
                    LValue::Var(name, _) => {
                        let local = syms.local(name).expect("assign interned") as usize;
                        let keeps = op.is_some() && inset.contains(local);
                        if rhs_tainted || keeps {
                            out.insert(local);
                        } else {
                            out.remove(local);
                        }
                    }
                    LValue::Index { base, .. } => {
                        if rhs_tainted {
                            out.insert(syms.local(base).expect("base interned") as usize);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Is the value of `e` attacker-controlled? Mirrors [`expr_tainted`] over
/// dense sets.
fn expr_tainted_sym(
    e: &Expr,
    tainted: &BitSet,
    syms: &FnSymbols<'_>,
    summaries: &BTreeMap<String, TaintSummary>,
) -> bool {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Str(_) | ExprKind::Bool(_) => false,
        ExprKind::Var(name) => syms
            .local(name)
            .is_some_and(|l| tainted.contains(l as usize)),
        ExprKind::Index { base, index } => {
            expr_tainted_sym(base, tainted, syms, summaries)
                || expr_tainted_sym(index, tainted, syms, summaries)
        }
        ExprKind::Unary { operand, .. } => expr_tainted_sym(operand, tainted, syms, summaries),
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_tainted_sym(lhs, tainted, syms, summaries)
                || expr_tainted_sym(rhs, tainted, syms, summaries)
        }
        ExprKind::Call { callee, args } => {
            if let Some(i) = Intrinsic::from_name(callee) {
                if i.is_taint_source() {
                    return true;
                }
                if i.propagates_taint() {
                    return args
                        .iter()
                        .any(|a| expr_tainted_sym(a, tainted, syms, summaries));
                }
                false
            } else if let Some(s) = summaries.get(callee) {
                s.returns_taint_always
                    || (s.returns_taint_if_param
                        && args
                            .iter()
                            .any(|a| expr_tainted_sym(a, tainted, syms, summaries)))
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn report(src: &str) -> TaintReport {
        let p = parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap();
        analyze(&p)
    }

    #[test]
    fn direct_source_to_sink() {
        let r = report("fn f() { let s: str = read_input(); system(s); }");
        assert_eq!(r.flows.len(), 1);
        assert_eq!(r.flows[0].sink, Intrinsic::System);
        assert!(!r.flows[0].via_parameters);
        assert_eq!(r.source_calls, 1);
        assert_eq!(r.sink_calls, 1);
    }

    #[test]
    fn clean_data_to_sink_is_no_flow() {
        let r = report("fn f() { system(\"ls\"); }");
        assert!(r.flows.is_empty());
        assert_eq!(r.sink_calls, 1);
    }

    #[test]
    fn taint_through_assignment_chain() {
        let r = report("fn f() { let a: str = recv(0); let b: str = a; let c: str = b; exec(c); }");
        assert_eq!(r.flows.len(), 1);
    }

    #[test]
    fn overwrite_cleanses() {
        let r = report("fn f() { let a: str = recv(0); a = \"fixed\"; exec(a); }");
        assert!(r.flows.is_empty());
    }

    #[test]
    fn branch_keeps_taint_on_either_path() {
        let r = report(
            "fn f(n: int) {
                let a: str = \"safe\";
                if n > 0 { a = read_input(); }
                exec(a);
            }",
        );
        assert_eq!(r.flows.len(), 1);
    }

    #[test]
    fn endpoint_parameters_are_tainted() {
        let r = report("@endpoint(network) fn handle(req: str) { strcpy(req, req); }");
        assert_eq!(r.flows.len(), 1);
        assert!(r.flows[0].via_parameters);
        assert!(r.tainted_entry_functions.contains("handle"));
    }

    #[test]
    fn unannotated_parameters_are_clean() {
        let r = report("fn helper(s: str) { exec(s); }");
        assert!(r.flows.is_empty());
        // The summary still records the latent param→sink flow.
        assert!(r.summaries["helper"].param_reaches_sink);
    }

    #[test]
    fn taint_propagates_through_call_return() {
        let r = report(
            "fn get() -> str { return read_input(); }
             fn f() { let s: str = get(); system(s); }",
        );
        assert_eq!(r.flows.len(), 1);
        assert!(r.summaries["get"].returns_taint_always);
    }

    #[test]
    fn taint_propagates_into_callee_params() {
        let r = report(
            "@endpoint(network) fn handle(req: str) { helper(req); }
             fn helper(s: str) { exec(s); }",
        );
        assert_eq!(r.flows.len(), 1);
        assert_eq!(r.flows[0].function, "helper");
        assert!(r.tainted_entry_functions.contains("helper"));
    }

    #[test]
    fn identity_function_propagates_param_taint() {
        let r = report(
            "fn id(s: str) -> str { return s; }
             fn f() { let x: str = id(recv(0)); exec(x); }",
        );
        assert_eq!(r.flows.len(), 1);
        assert!(r.summaries["id"].returns_taint_if_param);
        assert!(!r.summaries["id"].returns_taint_always);
    }

    #[test]
    fn atoi_propagates_rand_does_not() {
        let r1 = report("fn f() { let n: int = atoi(read_input()); exec(\"x\" ); system(\"a\"); printf(\"%d\", n); }");
        assert_eq!(r1.flows.len(), 1); // printf receives tainted n
        let r2 = report("fn f() { let n: int = rand_int(9); printf(\"%d\", n); }");
        assert!(r2.flows.is_empty());
    }

    #[test]
    fn buffer_weak_update_taints_whole_buffer() {
        let r = report(
            "fn f(i: int) {
                let buf: str[16];
                buf[i] = read_input();
                buf[0] = \"x\";
                exec(buf[1]);
            }",
        );
        assert_eq!(r.flows.len(), 1);
    }

    #[test]
    fn loop_carried_taint_reaches_fixpoint() {
        let r = report(
            "fn f(n: int) {
                let acc: str = \"\";
                let i: int = 0;
                while i < n {
                    acc = strcat_helper(acc, recv(0));
                    i += 1;
                }
                system(acc);
            }
            fn strcat_helper(a: str, b: str) -> str { return b; }",
        );
        assert_eq!(r.flows.len(), 1);
    }

    #[test]
    fn recursive_function_summary_terminates() {
        let r = report(
            "fn f(n: int) -> str {
                if n == 0 { return read_input(); }
                return f(n - 1);
            }
            fn g() { exec(f(3)); }",
        );
        assert!(r.summaries["f"].returns_taint_always);
        assert_eq!(r.flows.len(), 1);
    }

    #[test]
    fn exposed_vs_internal_flows() {
        let r = report(
            "@endpoint(network) fn a(req: str) { strcpy(req, req); }
             fn b() { system(getenv(\"PATH\")); }",
        );
        assert_eq!(r.flows.len(), 2);
        assert_eq!(r.exposed_flows(), 1);
    }

    #[test]
    fn strncpy_is_not_a_sink() {
        let r = report("fn f(buf: str[8]) { strncpy(buf, read_input(), 8); }");
        assert!(r.flows.is_empty());
    }

    #[test]
    fn context_analysis_matches_legacy() {
        let sources = [
            "fn f() { let s: str = read_input(); system(s); }",
            "@endpoint(network) fn handle(req: str) { helper(req); }
             fn helper(s: str) { exec(s); }",
            "fn id(s: str) -> str { return s; }
             fn f() { let x: str = id(recv(0)); exec(x); }",
            "@endpoint(network) fn a(req: str) { strcpy(req, req); }
             fn b() { system(getenv(\"PATH\")); }",
            "fn f(n: int) -> str {
                if n == 0 { return read_input(); }
                return f(n - 1);
            }
            fn g() { exec(f(3)); }",
        ];
        for src in sources {
            let p = parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap();
            let legacy = analyze(&p);
            let cx = crate::context::AnalysisContext::build(&p);
            assert_eq!(cx.taint.flows, legacy.flows, "{src}");
            assert_eq!(
                cx.taint.tainted_entry_functions, legacy.tainted_entry_functions,
                "{src}"
            );
            assert_eq!(cx.taint.summaries, legacy.summaries, "{src}");
            assert_eq!(cx.taint.source_calls, legacy.source_calls, "{src}");
            assert_eq!(cx.taint.sink_calls, legacy.sink_calls, "{src}");
        }
    }
}
