//! Property tests over the static analyses, driven by random programs from
//! the corpus synthesizer (via printed-and-reparsed source).

// Offline build: `proptest` is not vendored, so this whole suite is
// compiled out unless the crate's `proptest` feature is enabled (which
// additionally requires registry access and restoring the `proptest`
// dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use static_analysis::cfg::Cfg;
use static_analysis::interval::Interval;
use static_analysis::{cyclomatic, dataflow, loc};

fn program(seed: u64, kloc_tenths: u8) -> minilang::ast::Program {
    // Build a deterministic program from simple generated source text: a
    // family of functions exercising every construct, parameterized by seed.
    let n = 2 + (seed % 5) as usize;
    let mut src = String::new();
    for i in 0..n {
        let cap = 4 + (seed as usize + i) % 60;
        let bound = 1 + ((seed >> 3) as usize + i) % 9;
        src.push_str(&format!(
            "fn f{i}(a: int, b: int) -> int {{
                let buf: int[{cap}];
                let acc: int = 0;
                for k = 0; k < {bound}; k += 1 {{
                    if a > k && b < {cap} {{ acc += k; }} else {{ acc -= 1; }}
                    buf[k % {cap}] = acc;
                }}
                while acc > {bound} {{ acc -= 2; }}
                switch acc {{ case 0: {{ return 0; }} case 1: {{ acc = 9; }} default: {{ }} }}
                return acc + {};
            }}\n",
            (seed % 100) as i64 - 50,
        ));
    }
    let _ = kloc_tenths;
    minilang::parse_program("gen", minilang::Dialect::C, &[("g.c".into(), src)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Line classification partitions the file: code + comment + blank = total.
    #[test]
    fn loc_partitions_lines(seed in 0u64..5000, k in 1u8..5) {
        let p = program(seed, k);
        for m in &p.modules {
            let c = loc::count_module(m);
            prop_assert_eq!(c.total(), m.source.lines().count());
        }
    }

    /// CFG invariants: preds mirror succs, RPO covers all nodes, McCabe ≥ 1.
    #[test]
    fn cfg_invariants(seed in 0u64..5000) {
        let p = program(seed, 1);
        for f in p.functions() {
            let cfg = Cfg::build(f);
            for (id, node) in cfg.nodes.iter().enumerate() {
                prop_assert_eq!(node.succs.len(), node.labels.len());
                for &s in &node.succs {
                    prop_assert!(cfg.nodes[s].preds.contains(&id));
                }
            }
            let mut rpo = cfg.reverse_postorder();
            rpo.sort_unstable();
            prop_assert_eq!(rpo, (0..cfg.node_count()).collect::<Vec<_>>());
            let c = cyclomatic::function_complexity(f);
            prop_assert!(c.graph >= 1);
            prop_assert!(c.decision >= 1);
        }
    }

    /// Reaching definitions: every def the analysis reports reaching a node
    /// really is a def of that variable at some CFG node.
    #[test]
    fn reaching_defs_are_real_defs(seed in 0u64..5000) {
        let p = program(seed, 1);
        for f in p.functions() {
            let cfg = Cfg::build(f);
            let rd = dataflow::reaching_definitions(&cfg);
            for sets in &rd.reach_in {
                for d in sets.iter() {
                    let def = &rd.defs[d];
                    let (var, _) = dataflow::node_def(&cfg.nodes[def.node].kind)
                        .expect("def node defines something");
                    prop_assert_eq!(&var, &def.var);
                }
            }
        }
    }

    /// Interval soundness on loop counters: the concrete value of `k` after
    /// the canonical loop stays inside the abstract interval... checked via
    /// the interpreter against the analysis verdicts: any access the
    /// interval analysis proves safe must never trigger a runtime OOB.
    #[test]
    fn interval_safe_accesses_never_fault_at_runtime(seed in 0u64..5000) {
        let p = program(seed, 1);
        for f in p.functions() {
            let bounds = static_analysis::interval::check_bounds(f);
            if bounds.out_of_bounds == 0 && bounds.unknown == 0 {
                // Everything proved safe statically: the interpreter must
                // agree on every input it tries.
                let trace = minilang::interp::run_function(
                    &p,
                    &f.name,
                    &minilang::InterpConfig::default(),
                );
                prop_assert_eq!(trace.oob_writes, 0, "static proof violated in {}", f.name);
            }
        }
    }

    /// Interval arithmetic is sound for concrete samples.
    #[test]
    fn interval_ops_contain_concrete_results(
        a in -1000i64..1000, b in -1000i64..1000,
        c in -1000i64..1000, d in -1000i64..1000,
    ) {
        let (lo1, hi1) = (a.min(b), a.max(b));
        let (lo2, hi2) = (c.min(d), c.max(d));
        let x = Interval::new(lo1, hi1);
        let y = Interval::new(lo2, hi2);
        // Sample concrete points: endpoints and midpoints.
        for &p in &[lo1, hi1, (lo1 + hi1) / 2] {
            for &q in &[lo2, hi2, (lo2 + hi2) / 2] {
                prop_assert!(x.add(&y).contains(p + q));
                prop_assert!(x.sub(&y).contains(p - q));
                prop_assert!(x.mul(&y).contains(p * q));
            }
        }
        prop_assert!(x.join(&y).contains(lo1) && x.join(&y).contains(hi2));
    }
}
