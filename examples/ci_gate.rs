//! CI risk gate — the §5.3 workflow: *"the classifier can give the
//! developer an evaluation of, say, whether a code change has raised or
//! lowered the risk than the previous version of the code."*
//!
//! Simulates three commits to a service and prints the gate verdict for
//! each, as a continuous-integration step would.
//!
//! Run with:
//! ```text
//! cargo run --example ci_gate
//! ```

use clairvoyant::compare::RiskChange;
use clairvoyant::prelude::*;

const V1: &str = r#"
@endpoint(network)
fn handle(req: str) {
    let buf: str[64];
    strcpy(buf, req);
    log_msg(buf);
}
"#;

/// Commit 2: harden the copy (should LOWER risk).
const V2: &str = r#"
@endpoint(network)
fn handle(req: str) {
    if strlen(req) > 63 { return; }
    let buf: str[64];
    strncpy(buf, req, 63);
    log_msg(buf);
}
"#;

/// Commit 3: add a remote admin feature with a command injection
/// (should RAISE risk).
const V3: &str = r#"
@endpoint(network)
fn handle(req: str) {
    if strlen(req) > 63 { return; }
    let buf: str[64];
    strncpy(buf, req, 63);
    log_msg(buf);
}

@endpoint(network) @priv(root)
fn admin_exec(cmd: str) {
    system(cmd);
}
"#;

fn main() {
    println!("training the metric once (cached across CI runs in practice)…");
    let mut config = CorpusConfig::small(20, 23);
    config.language_mix = [15, 2, 1, 2];
    let corpus = Corpus::generate(&config);
    let model = Trainer::new().train(&corpus);

    let versions = [
        ("v1 → v2 (hardening)", V1, V2),
        ("v2 → v3 (admin feature)", V2, V3),
    ];
    let mut failures = 0;
    for (label, before_src, after_src) in versions {
        let before = parse_program(
            "service",
            Dialect::C,
            &[("src/main.c".to_string(), before_src.to_string())],
        )
        .expect("parses");
        let after = parse_program(
            "service",
            Dialect::C,
            &[("src/main.c".to_string(), after_src.to_string())],
        )
        .expect("parses");
        let delta = version_delta(&model, &before, &after);
        println!("\n== {label} ==");
        println!("{delta}");
        if delta.verdict == RiskChange::Raised {
            println!("CI gate: FAIL — change raises predicted security risk");
            for hint in &delta.after.hints {
                println!("  fix hint: {}", hint.advice);
            }
            failures += 1;
        } else {
            println!("CI gate: PASS");
        }
    }
    std::process::exit(if failures > 0 { 1 } else { 0 });
}
