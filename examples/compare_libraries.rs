//! Library selection — the paper's §1 motivating scenario:
//! *"in selecting between two library implementations for use in a web
//! service, our proposed metric would identify which is less likely to
//! have vulnerabilities."*
//!
//! Two HTTP-parsing libraries with identical functionality but different
//! engineering discipline are evaluated side by side.
//!
//! Run with:
//! ```text
//! cargo run --example compare_libraries
//! ```

use clairvoyant::prelude::*;

/// Fast but careless: unbounded copies, tainted format strings, no input
/// validation.
const LIB_TURBO: &str = r#"
@endpoint(network)
fn parse_request(raw: str) -> int {
    let header: str[128];
    strcpy(header, raw);
    let n: int = atoi(raw);
    let body: str[256];
    body[n] = raw;
    return n;
}

fn log_request(raw: str) {
    printf(raw);
}

fn spawn_helper(cmd: str) {
    system(cmd);
}
"#;

/// Careful: validation first, bounded copies, literal formats.
const LIB_STEADY: &str = r#"
@endpoint(network)
fn parse_request(raw: str) -> int {
    if strlen(raw) > 120 { return -1; }
    let header: str[128];
    strncpy(header, raw, 120);
    let n: int = atoi(raw);
    if n < 0 || n > 255 { return -1; }
    let body: str[256];
    body[n] = raw;
    return n;
}

// Request text is data, never a format string.
fn log_request(raw: str) {
    printf("request received");
    log_msg(raw);
}
"#;

fn main() {
    println!("training the metric…");
    let mut config = CorpusConfig::small(20, 11);
    config.language_mix = [15, 2, 1, 2];
    let corpus = Corpus::generate(&config);
    let model = Trainer::new().train(&corpus);

    let turbo = parse_program(
        "libturbo",
        Dialect::C,
        &[("src/parse.c".to_string(), LIB_TURBO.to_string())],
    )
    .expect("libturbo parses");
    let steady = parse_program(
        "libsteady",
        Dialect::C,
        &[("src/parse.c".to_string(), LIB_STEADY.to_string())],
    )
    .expect("libsteady parses");

    let comparison = compare_programs(&model, &turbo, &steady);
    println!("\n{comparison}\n");
    println!("--- full report for each candidate ---");
    println!("{}", comparison.a);
    println!("{}", comparison.b);
}
