//! Pipeline engine acceptance demo: parallel speedup, warm-cache hit
//! rate, and fault isolation over a 24-application corpus.
//!
//! ```text
//! cargo run --release --example pipeline_demo
//! ```
//!
//! Prints the three acceptance numbers:
//!
//! 1. 4-worker extraction vs sequential (the ≥2× target needs ≥4 real
//!    cores — the demo reports the machine's core count alongside);
//! 2. warm-cache re-run hit rate (target ≥90%);
//! 3. an injected panicking collector degrading one program while the
//!    other 23 extract normally.

use clairvoyant::extract::{corpus_jobs, extract_corpus};
use clairvoyant::prelude::*;
use minilang::ast::Program;
use pipeline::{Extractor, Pipeline, PipelineError};
use static_analysis::FeatureVector;
use std::time::Instant;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== pipeline engine demo ({cores} core(s) available) ==\n");

    let mut config = CorpusConfig::small(24, 20177);
    config.max_kloc = 2.0;
    let corpus = Corpus::generate(&config);
    println!("corpus: {} applications\n", corpus.apps.len());

    // 1. Sequential vs 4 workers (cache off: raw extraction).
    let start = Instant::now();
    let seq = extract_corpus(
        &corpus,
        PipelineConfig::default().jobs(1).cache(CacheMode::Off),
    );
    let seq_time = start.elapsed();
    let start = Instant::now();
    let par = extract_corpus(
        &corpus,
        PipelineConfig::default().jobs(4).cache(CacheMode::Off),
    );
    let par_time = start.elapsed();
    assert_eq!(
        seq.features, par.features,
        "parallel must be byte-identical"
    );
    let speedup = seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9);
    println!("1. parallel speedup (byte-identical outputs)");
    println!(
        "   sequential: {:>7.2?}  ({:.1} programs/sec)",
        seq_time,
        seq.report.throughput()
    );
    println!(
        "   4 workers:  {:>7.2?}  ({:.1} programs/sec)",
        par_time,
        par.report.throughput()
    );
    println!(
        "   speedup: {speedup:.2}x {}",
        if cores >= 4 {
            if speedup >= 2.0 {
                "— meets the ≥2x target"
            } else {
                "— BELOW the ≥2x target"
            }
        } else {
            "(≥2x target needs ≥4 cores; this machine cannot show it)"
        }
    );
    println!("   BENCH_PIPELINE {}\n", par.report.to_json());

    // 2. Warm cache: same sources, new run — everything is a hit.
    let mut engine = Pipeline::new(Testbed::new());
    let apps: Vec<&corpus::GeneratedApp> = corpus.apps.iter().collect();
    clairvoyant::extract::extract_apps_with(&mut engine, apps.iter().copied());
    let start = Instant::now();
    let warm = clairvoyant::extract::extract_apps_with(&mut engine, apps.iter().copied());
    let warm_time = start.elapsed();
    println!("2. warm-cache re-run");
    println!(
        "   {}/{} hits ({:.0}%) in {warm_time:.2?} — {}",
        warm.report.cache_hits,
        warm.report.programs,
        warm.report.hit_rate() * 100.0,
        if warm.report.hit_rate() >= 0.9 {
            "meets the ≥90% target"
        } else {
            "BELOW the ≥90% target"
        }
    );
    println!("   BENCH_PIPELINE {}\n", warm.report.to_json());

    // 3. Fault isolation: one collector panics; the batch survives.
    let victim = corpus.apps[3].spec.name.clone();
    struct Sabotaged(Testbed, String);
    impl Extractor for Sabotaged {
        fn extract(&self, program: &Program) -> FeatureVector {
            if program.name == self.1 {
                panic!("injected collector failure");
            }
            self.0.extract(program)
        }
        fn schema_version(&self) -> u64 {
            Extractor::schema_version(&self.0)
        }
        fn degraded(&self) -> FeatureVector {
            self.0.degraded()
        }
    }
    let mut engine = Pipeline::with_config(
        Sabotaged(Testbed::new(), victim.clone()),
        PipelineConfig::default().jobs(4).cache(CacheMode::Off),
    );
    // The injected panic is expected; keep its backtrace out of the demo
    // output (the engine still records it in the report).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let batch = engine.run(&corpus_jobs(&apps));
    std::panic::set_hook(default_hook);
    let degraded: Vec<&str> = batch
        .outputs
        .iter()
        .filter(|o| o.error.is_some())
        .map(|o| o.name.as_str())
        .collect();
    println!("3. fault isolation (collector panics on `{victim}`)");
    println!(
        "   batch completed: {}/{} programs, {} degraded: {degraded:?}",
        batch.outputs.len(),
        corpus.apps.len(),
        degraded.len()
    );
    for (name, error) in &batch.report.errors {
        let kind = match error {
            PipelineError::Panicked(_) => "panic",
            PipelineError::BudgetExceeded { .. } => "budget",
        };
        println!("   recorded error on `{name}`: {kind} — {error}");
    }
    assert_eq!(
        degraded,
        vec![victim.as_str()],
        "exactly the sabotaged program degrades"
    );
    println!("\nall three acceptance checks ran to completion");
}
