//! Quickstart: train the Clairvoyant model on a synthetic CVE corpus and
//! evaluate a small web-service handler.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use clairvoyant::prelude::*;
use clairvoyant::report::security_report_json;

fn main() {
    // 1. Build the training corpus: the offline stand-in for "open-source
    //    applications with ≥5-year histories in the CVE database" (§5.1).
    println!("generating training corpus…");
    let mut config = CorpusConfig::small(20, 7);
    config.language_mix = [15, 2, 1, 2];
    let corpus = Corpus::generate(&config);
    println!(
        "  {} applications, {} CVE records",
        corpus.apps.len(),
        corpus.db.len()
    );

    // 2. Train the unified prediction model with cross-validation (Fig. 4).
    println!("training…");
    let trainer = Trainer::new();
    let (model, training_report) = trainer.train_with_report(&corpus);
    println!("{training_report}");

    // 3. Evaluate a new program the model has never seen.
    let source = r#"
        // A small request handler with a classic mistake.
        @endpoint(network)
        fn handle_request(req: str) {
            let buf: str[64];
            strcpy(buf, req);
            printf("handled request");
        }

        fn health_check() -> int {
            return 1;
        }
    "#;
    let program = parse_program(
        "my-web-service",
        Dialect::C,
        &[("src/handler.c".to_string(), source.to_string())],
    )
    .expect("example program parses");

    let report = model.evaluate(&program);
    println!("{report}");
    println!("JSON: {}", security_report_json(&report));
}
