//! Reproduce Figure 1: the survey of evaluation methods in systems
//! proceedings (lines of code vs CVE counts vs formal verification).
//!
//! Run with:
//! ```text
//! cargo run --example survey
//! ```

use clairvoyant::survey::Figure1;

fn main() {
    let figure = Figure1::produce(2017);
    println!("{figure}");
    println!();
    println!(
        "the de-facto security metric in systems research is counting lines of code: \
         {}x more papers than formal verification",
        figure.result.total_loc() / figure.result.total_verified().max(1)
    );
}
