//! Whole-system evaluation — the paper's §5.3 future-work question:
//! *"can we use the same approach of evaluating application programs to
//! evaluate whole systems? We expect that total system security is
//! dependent upon the weakest link…"*
//!
//! Models a three-component deployment (network front-end, internal worker,
//! root-privileged config agent) and shows how containment boundaries (the
//! "VM or Docker image" of §5.3) change the system-level verdict.
//!
//! Run with:
//! ```text
//! cargo run --example whole_system
//! ```

use clairvoyant::prelude::*;
use clairvoyant::system::{evaluate_system, Component, Containment, Exposure, SystemSpec};

const FRONTEND: &str = r#"
@endpoint(network)
fn handle(req: str) {
    let buf: str[32];
    strcpy(buf, req);
    dispatch(buf);
}
fn dispatch(cmd: str) { system(cmd); }
"#;

const WORKER: &str = r#"
fn transform(n: int) -> int {
    if n < 0 || n > 65536 { return 0; }
    return n * 3 + 1;
}
"#;

const AGENT: &str = r#"
@endpoint(local) @priv(root)
fn apply_config(cfg: str) {
    write_file("/etc/stack.conf", cfg);
    exec(cfg);
}
"#;

fn component(name: &str, src: &str, exposure: Exposure, containment: Containment) -> Component {
    Component {
        name: name.to_string(),
        program: parse_program(name, Dialect::C, &[("m.c".to_string(), src.to_string())])
            .expect("component parses"),
        exposure,
        containment,
    }
}

fn main() {
    println!("training the per-application metric…");
    let mut config = CorpusConfig::small(20, 1999);
    config.language_mix = [15, 2, 1, 2];
    let corpus = Corpus::generate(&config);
    let model = Trainer::new().train(&corpus);

    for (label, containment) in [
        ("flat deployment (no containment)", Containment::None),
        ("config agent inside a VM", Containment::Vm),
    ] {
        let system = SystemSpec {
            name: format!("web-stack / {label}"),
            components: vec![
                component(
                    "frontend",
                    FRONTEND,
                    Exposure::NetworkFacing,
                    Containment::None,
                ),
                component("worker", WORKER, Exposure::Internal, Containment::None),
                component("config-agent", AGENT, Exposure::Infrastructure, containment),
            ],
        };
        let report = evaluate_system(&model, &system);
        println!("\n== {label} ==");
        println!("{report}");
    }
}
