#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally.
#
#   scripts/check.sh            # build + test + formatting
#
# The workspace builds hermetically (no registry access needed): `rand`
# is an in-tree shim crate and the proptest suites are behind the
# off-by-default `proptest` feature.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "all checks passed"
