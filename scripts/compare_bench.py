#!/usr/bin/env python3
"""Compare a freshly measured bench JSON line against a committed snapshot.

Usage: compare_bench.py SNAPSHOT.json CURRENT.json FIELD [TOLERANCE]

Fails (exit 1) if CURRENT[FIELD] < SNAPSHOT[FIELD] * (1 - TOLERANCE),
i.e. the measured value regressed more than TOLERANCE (default 0.10)
below the committed snapshot. Both files hold a single JSON object as
emitted by the bench harnesses (`BENCH_* {...}` lines with the prefix
stripped); CI applies it to the BENCH_KERNEL and BENCH_INCR `speedup`
fields. Stdlib only — CI runners need nothing installed.
"""

import json
import sys


def main(argv):
    if len(argv) < 4 or len(argv) > 5:
        sys.exit(f"usage: {argv[0]} SNAPSHOT.json CURRENT.json FIELD [TOLERANCE]")
    snapshot_path, current_path, field = argv[1:4]
    tolerance = float(argv[4]) if len(argv) == 5 else 0.10

    with open(snapshot_path) as f:
        snapshot = json.load(f)
    with open(current_path) as f:
        current = json.load(f)

    try:
        want = float(snapshot[field])
        got = float(current[field])
    except KeyError as missing:
        sys.exit(f"field {missing} absent from bench JSON")

    floor = want * (1.0 - tolerance)
    verdict = "ok" if got >= floor else "REGRESSION"
    print(
        f"{field}: snapshot {want:.3f}, measured {got:.3f}, "
        f"floor {floor:.3f} ({tolerance:.0%} tolerance) -> {verdict}"
    )
    if got < floor:
        sys.exit(1)


if __name__ == "__main__":
    main(sys.argv)
