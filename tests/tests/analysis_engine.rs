//! Equivalence property for the single-pass analysis engine: over a spread
//! of randomly synthesized programs — every dialect, every domain, varied
//! seeds and CWE seeding — the fused `AnalysisContext` extraction must be
//! bit-identical to the pre-fusion legacy path, and identical again when
//! per-function context construction fans out over worker threads.

use clairvoyant::testbed::Testbed;
use corpus::{AppSpec, Domain};
use cvedb::Cwe;
use minilang::Dialect;

fn spec(i: u64, dialect: Dialect, domain: Domain) -> AppSpec {
    AppSpec {
        name: format!("prop-app-{i}"),
        dialect,
        domain,
        // Small programs keep ~50 cases tractable in debug builds; the
        // synthesizer still emits branches, loops, buffers and endpoints
        // at this size.
        target_kloc: 0.25 + (i % 5) as f64 * 0.1,
        maturity: (i % 7) as f64 / 6.0,
        review: (i % 3) as f64 / 2.0,
        expertise: (i % 4) as f64 / 3.0,
        first_release_year: 1998 + (i % 20) as i32,
        seed: 0x5eed_0000 + i * 7919,
    }
}

fn cwe_seeds(i: u64) -> Vec<(Cwe, bool)> {
    match i % 4 {
        0 => vec![],
        1 => vec![(Cwe::StackBufferOverflow, true)],
        2 => vec![(Cwe::FormatString, false), (Cwe::PathTraversal, true)],
        _ => vec![
            (Cwe::CommandInjection, true),
            (Cwe::HardcodedCredentials, false),
        ],
    }
}

#[test]
fn fused_engine_is_bit_identical_to_legacy_across_dialects_and_workers() {
    let dialects = [Dialect::C, Dialect::Cpp, Dialect::Python, Dialect::Java];
    let domains = [
        Domain::Server,
        Domain::Library,
        Domain::CliTool,
        Domain::Desktop,
    ];
    let sequential = Testbed::new();
    let parallel = Testbed::new().with_fn_jobs(4);

    let mut checked = 0u64;
    for i in 0..48u64 {
        let dialect = dialects[(i % 4) as usize];
        let domain = domains[((i / 4) % 4) as usize];
        let app = corpus::synth::synthesize(&spec(i, dialect, domain), &cwe_seeds(i));

        let fused = sequential.extract(&app.program);
        let legacy = sequential.extract_legacy(&app.program);
        assert_eq!(
            fused.iter().collect::<Vec<_>>(),
            legacy.iter().collect::<Vec<_>>(),
            "fused vector diverged from legacy on {dialect:?}/{domain:?} seed {i}"
        );

        let fanned = parallel.extract(&app.program);
        assert_eq!(
            fused, fanned,
            "4-worker context construction diverged on {dialect:?}/{domain:?} seed {i}"
        );
        checked += 1;
    }
    assert_eq!(checked, 48);
}
