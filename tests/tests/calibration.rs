//! Corpus-calibration integration: the statistical regime of Figures 2/3
//! must emerge from generated corpora, not just be asserted in unit tests.

use clairvoyant::studies::run_study;
use corpus::{Corpus, CorpusConfig};
use std::sync::OnceLock;

/// A corpus wide enough in size range for the regression to be meaningful.
fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let config = CorpusConfig {
            language_mix: [30, 5, 2, 3],
            short_history_apps: 2,
            min_kloc: 0.25,
            max_kloc: 8.0,
            seed: 4242,
            target_loc_r2: 0.2466,
        };
        Corpus::generate(&config)
    })
}

#[test]
fn loc_regression_is_in_the_papers_band() {
    let study = run_study(corpus());
    let r = &study.regression_loc;
    assert!(
        (0.2..=0.6).contains(&r.slope),
        "slope {:.3} outside the paper band (0.39)",
        r.slope
    );
    assert!(
        (0.05..=0.55).contains(&r.r_squared),
        "R² {:.3} should be weak-but-nonzero (paper: 0.2466)",
        r.r_squared
    );
}

#[test]
fn cyclomatic_regression_is_also_weak() {
    let study = run_study(corpus());
    // Figure 3's message: complexity is no better than LoC — both weak.
    assert!(study.regression_cc.r_squared < 0.6);
    assert!(study.regression_cc.slope > 0.0);
}

#[test]
fn java_apps_report_fewer_vulnerabilities() {
    let study = run_study(corpus());
    let java = study.mean_vulns_for(minilang::Dialect::Java);
    let c = study.mean_vulns_for(minilang::Dialect::C);
    if let (Some(java), Some(c)) = (java, c) {
        assert!(
            java < c,
            "paper: Java projects have lower counts; got java {java:.1} vs C {c:.1}"
        );
    }
}

#[test]
fn corpus_scale_card_matches_config() {
    let corpus = corpus();
    let study = run_study(corpus);
    // 40 long-history apps configured; nearly all must survive selection.
    assert!(
        study.points.len() >= 37,
        "only {} selected",
        study.points.len()
    );
    let sum: usize = study.language_counts.iter().sum();
    assert_eq!(sum, study.points.len());
    // C dominates, as in the paper's 126/164.
    assert!(study.language_counts[0] > study.points.len() / 2);
}

#[test]
fn total_vulnerabilities_have_paper_like_magnitude_per_app() {
    let study = run_study(corpus());
    let per_app = study.total_vulnerabilities as f64 / study.points.len() as f64;
    // Paper: 5975/164 ≈ 36 per app; compressed sizes put ours lower but
    // the same order of magnitude.
    assert!(
        (3.0..=60.0).contains(&per_app),
        "per-app mean {per_app:.1} out of band"
    );
}
