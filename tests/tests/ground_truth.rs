//! Ground-truth consistency: the analyses must actually *see* the seeded
//! vulnerabilities — the framework's signal is measured, not assumed.

use corpus::{Corpus, CorpusConfig};
use cvedb::Cwe;
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut config = CorpusConfig::small(16, 5551212);
        config.max_kloc = 2.0;
        Corpus::generate(&config)
    })
}

#[test]
fn every_seed_has_a_cve_record_with_matching_cwe() {
    let corpus = corpus();
    for app in &corpus.apps {
        let records = corpus.db.records_for(&app.spec.name);
        assert_eq!(records.len(), app.seeded.len());
        let mut seed_cwes: Vec<Cwe> = app.seeded.iter().map(|s| s.cwe).collect();
        let mut record_cwes: Vec<Cwe> = records.iter().map(|r| r.cwe).collect();
        seed_cwes.sort();
        record_cwes.sort();
        assert_eq!(seed_cwes, record_cwes);
    }
}

#[test]
fn bufcheck_detects_most_seeded_stack_overflows() {
    let corpus = corpus();
    let (mut seeded, mut detected) = (0, 0);
    for app in &corpus.apps {
        let has_seed = app.seeded.iter().any(|s| s.cwe == Cwe::StackBufferOverflow);
        if !has_seed {
            continue;
        }
        seeded += 1;
        let report = bugfind::MetaTool::new().run(&app.program);
        if report.count_cwe(121) > 0 {
            detected += 1;
        }
    }
    assert!(seeded > 0, "corpus seeded no CWE-121 at all");
    let rate = detected as f64 / seeded as f64;
    assert!(
        rate >= 0.9,
        "bufcheck caught only {detected}/{seeded} seeded apps"
    );
}

#[test]
fn taint_flows_track_exposed_injection_seeds() {
    let corpus = corpus();
    for app in &corpus.apps {
        let exposed_injections = app
            .seeded
            .iter()
            .filter(|s| {
                s.exposed
                    && matches!(
                        s.cwe,
                        Cwe::CommandInjection | Cwe::SqlInjection | Cwe::FormatString
                    )
            })
            .count();
        if exposed_injections == 0 {
            continue;
        }
        let taint = static_analysis::taint::analyze(&app.program);
        assert!(
            !taint.flows.is_empty(),
            "{} has {exposed_injections} exposed injection seeds but no taint flow",
            app.spec.name
        );
    }
}

#[test]
fn exposed_seeds_make_cvss_network_vectors() {
    let corpus = corpus();
    for app in &corpus.apps {
        let records = corpus.db.records_for(&app.spec.name);
        for (seed, record) in app.seeded.iter().zip(&records) {
            // Records are publication-ordered, seeds insertion-ordered, so
            // match by CWE multiset membership instead of position.
            let _ = record;
            let matching: Vec<_> = records.iter().filter(|r| r.cwe == seed.cwe).collect();
            assert!(!matching.is_empty());
            if seed.exposed {
                assert!(
                    matching.iter().any(|r| r.is_network_attackable()),
                    "exposed {} in {} has no AV:N record",
                    seed.cwe,
                    app.spec.name
                );
            }
        }
    }
}

#[test]
fn memory_cwes_only_in_unsafe_languages() {
    let corpus = corpus();
    for record in corpus.db.records() {
        if record.cwe.requires_memory_unsafety() {
            let app = corpus
                .apps
                .iter()
                .find(|a| a.spec.name == record.app)
                .expect("record's app exists");
            assert!(
                app.spec.dialect.is_memory_unsafe(),
                "{} reported for {} ({})",
                record.cwe,
                record.app,
                app.spec.dialect
            );
        }
    }
}

#[test]
fn vulnerable_files_are_bigger_on_average() {
    // The hot-file clustering that powers EXP-SHIN.
    let corpus = corpus();
    let rows = clairvoyant::files::file_dataset(corpus);
    let mean = |vulnerable: bool| -> f64 {
        let sel: Vec<&clairvoyant::files::FileRow> =
            rows.iter().filter(|r| r.vulnerable == vulnerable).collect();
        sel.iter().map(|r| r.features[0]).sum::<f64>() / sel.len().max(1) as f64
    };
    assert!(
        mean(true) > mean(false),
        "vulnerable files should be larger: {} vs {}",
        mean(true),
        mean(false)
    );
}
