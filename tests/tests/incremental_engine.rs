//! Property suite for the incremental extraction engine: under seeded
//! random single-function edits — body mutation, function insertion and
//! deletion, renames that rewrite call sites, and taint-relevant sink
//! swaps that change interprocedural summaries — a persistent
//! [`IncrementalTestbed`] must stay bitwise identical to a from-scratch
//! [`Testbed`] extraction, at 1 and at 4 context workers.

use clairvoyant::{IncrementalTestbed, Testbed};
use minilang::{parse_program, Dialect};

/// Deterministic xorshift-multiply generator (no rand dependency creep:
/// the sequence is pinned so a failure reproduces from the seed alone).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One generated function. `id` is stable across edits (names derive from
/// it), `body_seed` picks the constants and the taint statement, and
/// `calls` holds callee ids so renames and deletions can rewrite call
/// sites consistently.
#[derive(Clone)]
struct FnDef {
    id: u64,
    rename_gen: u64,
    body_seed: u64,
    calls: Vec<u64>,
}

impl FnDef {
    fn name(&self) -> String {
        if self.rename_gen == 0 {
            format!("fn_{}", self.id)
        } else {
            format!("fn_{}_v{}", self.id, self.rename_gen)
        }
    }

    fn render(&self, names: &dyn Fn(u64) -> Option<String>) -> String {
        let k1 = self.body_seed % 7 + 1;
        let k2 = self.body_seed % 23;
        let k3 = self.body_seed % 11 + 2;
        let mut body = String::new();
        if self.id.is_multiple_of(3) {
            body.push_str("@endpoint(network)\n");
        }
        body.push_str(&format!(
            "fn {}(s: str, n: int) -> int {{\n    let acc: int = n * {k1} + {k2};\n",
            self.name()
        ));
        match self.body_seed % 4 {
            0 => {}
            1 => body.push_str("    exec(s);\n"),
            2 => body.push_str("    log_msg(s);\n"),
            _ => body.push_str("    let d: str = read_input();\n    exec(d);\n"),
        }
        for (j, callee) in self.calls.iter().enumerate() {
            // A deleted callee leaves a dangling call — both extraction
            // paths see the same unresolved name, so equality still holds.
            if let Some(name) = names(*callee) {
                body.push_str(&format!("    let r{j}: int = {name}(s, acc + {j});\n"));
            }
        }
        body.push_str(&format!(
            "    if acc > {k3} {{ return acc; }}\n    return n;\n}}\n"
        ));
        body
    }
}

struct Project {
    dialect: Dialect,
    next_id: u64,
    fns: Vec<FnDef>,
}

impl Project {
    fn generate(rng: &mut Lcg, dialect: Dialect, n: u64) -> Project {
        let mut fns = Vec::new();
        for id in 0..n {
            let n_calls = rng.below(3).min(id);
            let calls = (0..n_calls).map(|_| rng.below(id.max(1))).collect();
            fns.push(FnDef {
                id,
                rename_gen: 0,
                body_seed: rng.next(),
                calls,
            });
        }
        Project {
            dialect,
            next_id: n,
            fns,
        }
    }

    fn source(&self) -> String {
        let lookup = |id: u64| self.fns.iter().find(|f| f.id == id).map(|f| f.name());
        self.fns
            .iter()
            .map(|f| f.render(&lookup))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn parse(&self) -> minilang::Program {
        let ext = match self.dialect {
            Dialect::Python => "m.py",
            Dialect::Java => "m.java",
            Dialect::Cpp => "m.cc",
            Dialect::C => "m.c",
        };
        parse_program(
            "prop-app",
            self.dialect,
            &[(ext.to_string(), self.source())],
        )
        .unwrap_or_else(|e| panic!("generated source failed to parse: {e}\n{}", self.source()))
    }

    /// Apply one random edit; returns a label for failure messages.
    fn edit(&mut self, rng: &mut Lcg) -> &'static str {
        let pick = rng.below(self.fns.len() as u64) as usize;
        match rng.below(5) {
            // Mutate a body: new constants, possibly a new taint statement.
            0 => {
                self.fns[pick].body_seed = rng.next();
                "body-mutate"
            }
            // Swap the function's sink between exec and log_msg — flips
            // its taint summary while callers' text stays identical, the
            // cross-function case the summary digest must catch.
            1 => {
                let seed = self.fns[pick].body_seed;
                self.fns[pick].body_seed = match seed % 4 {
                    1 => seed + 1, // exec -> log_msg
                    2 => seed - 1, // log_msg -> exec
                    _ => (seed & !3) | 1,
                };
                "sink-swap"
            }
            // Rename, rewriting every call site via the id indirection.
            2 => {
                self.fns[pick].rename_gen += 1;
                "rename"
            }
            // Insert a function that calls one existing peer, and wire one
            // random existing function to call it.
            3 => {
                let id = self.next_id;
                self.next_id += 1;
                let callee = self.fns[rng.below(self.fns.len() as u64) as usize].id;
                self.fns.push(FnDef {
                    id,
                    rename_gen: 0,
                    body_seed: rng.next(),
                    calls: vec![callee],
                });
                self.fns[pick].calls.push(id);
                "insert"
            }
            // Delete a function and scrub it from every call list.
            _ => {
                if self.fns.len() <= 2 {
                    self.fns[pick].body_seed = rng.next();
                    return "body-mutate";
                }
                let id = self.fns.remove(pick).id;
                for f in &mut self.fns {
                    f.calls.retain(|c| *c != id);
                }
                "delete"
            }
        }
    }
}

#[test]
fn random_single_function_edits_stay_bitwise_identical_to_scratch() {
    let dialects = [Dialect::C, Dialect::Cpp, Dialect::Python, Dialect::Java];
    let scratch = Testbed::new();
    let mut edits_checked = 0u64;

    for (d, dialect) in dialects.into_iter().enumerate() {
        let mut rng = Lcg(dialect_seed(d as u64));
        let mut project = Project::generate(&mut rng, dialect, 10);
        let mut seq = IncrementalTestbed::new();
        let mut par = IncrementalTestbed::new().with_fn_jobs(4);

        // Cold round: everything misses, output already exact.
        let p = project.parse();
        let want = scratch.extract(&p);
        assert_eq!(seq.extract(&p), want, "{dialect:?} cold sequential");
        assert_eq!(par.extract(&p), want, "{dialect:?} cold parallel");

        for round in 0..12 {
            let label = project.edit(&mut rng);
            let p = project.parse();
            let want = scratch.extract(&p);

            let (got, report) = seq.extract_stats(&p);
            assert_eq!(
                got, want,
                "{dialect:?} round {round} ({label}): sequential incremental diverged"
            );
            assert_eq!(
                report.functions,
                p.function_count(),
                "{dialect:?} round {round}: probe count"
            );
            assert_eq!(report.hits + report.misses, report.functions as u64);
            assert_eq!(report.misses, report.rebuilt, "every miss is rebuilt");
            // A single-function edit must not rebuild the world. Body and
            // sink edits touch exactly one function; an insert also
            // rewrites the one caller wired to it; renames and deletes
            // additionally invalidate each call site's text.
            match label {
                "body-mutate" | "sink-swap" => assert_eq!(
                    report.rebuilt, 1,
                    "{dialect:?} round {round} ({label}) rebuilt more than the edit"
                ),
                "insert" => assert_eq!(
                    report.rebuilt, 2,
                    "{dialect:?} round {round}: insert rebuilds new fn + caller"
                ),
                _ => assert!(
                    report.rebuilt < report.functions as u64,
                    "{dialect:?} round {round} ({label}): wholesale rebuild"
                ),
            }

            let got_par = par.extract(&p);
            assert_eq!(
                got_par, want,
                "{dialect:?} round {round} ({label}): 4-worker incremental diverged"
            );
            edits_checked += 1;
        }
    }
    assert_eq!(edits_checked, 48);
}

/// Seed helper kept out-of-line so each dialect's stream is decorrelated.
fn dialect_seed(d: u64) -> u64 {
    0x1c0f_fee0_0000_0001_u64.wrapping_mul(d * 2 + 3)
}

#[test]
fn pure_body_edit_rebuilds_exactly_one_function() {
    let mut rng = Lcg(42);
    let mut project = Project::generate(&mut rng, Dialect::C, 12);
    let mut engine = IncrementalTestbed::new();
    engine.extract(&project.parse());

    // Force a pure-body mutation: +4 keeps the taint statement (seed % 4)
    // but shifts every rendered constant.
    project.fns[5].body_seed = project.fns[5].body_seed.wrapping_add(4);
    let p = project.parse();
    let (got, report) = engine.extract_stats(&p);
    assert_eq!(report.rebuilt, 1, "only the mutated body re-analyzes");
    assert_eq!(got, Testbed::new().extract(&p));
}
