//! Cross-crate checks for the batched inference engine: for every
//! learner and across dialect-skewed corpora, compile → serialize →
//! deserialize → `evaluate_batch` must reproduce the boxed per-row
//! reference path bit-for-bit at any worker count, on disk as well as in
//! memory, and system evaluation must not depend on workers either.

use clairvoyant::prelude::*;
use clairvoyant::system::{evaluate_system_jobs, Containment, Exposure};
use clairvoyant::SecurityReport;
use clairvoyant::{Component, SystemSpec};
use static_analysis::FeatureVector;

fn extract_apps(corpus: &Corpus) -> Vec<(String, FeatureVector)> {
    let testbed = Testbed::new();
    corpus
        .apps
        .iter()
        .map(|app| (app.spec.name.clone(), testbed.extract(&app.program)))
        .collect()
}

/// Every float compared through its bit pattern: the batched engine
/// promises exact reproduction, not tolerance-level agreement.
fn assert_reports_identical(a: &SecurityReport, b: &SecurityReport, context: &str) {
    assert_eq!(a.app, b.app, "{context}: app");
    assert_eq!(
        a.predicted_vulnerabilities.to_bits(),
        b.predicted_vulnerabilities.to_bits(),
        "{context}: predicted count for {}",
        a.app
    );
    assert_eq!(
        a.high_severity_risk.map(f64::to_bits),
        b.high_severity_risk.map(f64::to_bits),
        "{context}: high-severity risk for {}",
        a.app
    );
    assert_eq!(
        a.network_risk.map(f64::to_bits),
        b.network_risk.map(f64::to_bits),
        "{context}: network risk for {}",
        a.app
    );
    assert_eq!(a.hypotheses.len(), b.hypotheses.len(), "{context}");
    for ((h1, p1), (h2, p2)) in a.hypotheses.iter().zip(&b.hypotheses) {
        assert_eq!(h1, h2, "{context}: battery order for {}", a.app);
        assert_eq!(p1.to_bits(), p2.to_bits(), "{context}: {h1} for {}", a.app);
    }
    assert_eq!(
        a.severity_counts.len(),
        b.severity_counts.len(),
        "{context}"
    );
    for ((s1, n1), (s2, n2)) in a.severity_counts.iter().zip(&b.severity_counts) {
        assert_eq!(s1, s2, "{context}: band order for {}", a.app);
        assert_eq!(
            n1.to_bits(),
            n2.to_bits(),
            "{context}: {s1:?} for {}",
            a.app
        );
    }
    assert_eq!(
        a.structural_risk.to_bits(),
        b.structural_risk.to_bits(),
        "{context}: structural risk for {}",
        a.app
    );
    assert_eq!(a.attributions.len(), b.attributions.len(), "{context}");
    for (x, y) in a.attributions.iter().zip(&b.attributions) {
        assert_eq!(x.feature, y.feature, "{context}: attribution for {}", a.app);
        assert_eq!(x.value.to_bits(), y.value.to_bits(), "{context}");
        assert_eq!(x.weight.to_bits(), y.weight.to_bits(), "{context}");
        assert_eq!(
            x.contribution.to_bits(),
            y.contribution.to_bits(),
            "{context}"
        );
    }
    assert_eq!(
        a.hints.len(),
        b.hints.len(),
        "{context}: hints for {}",
        a.app
    );
    for (x, y) in a.hints.iter().zip(&b.hints) {
        assert_eq!(x.advice, y.advice, "{context}");
        assert_eq!(x.because, y.because, "{context}");
    }
    assert_eq!(
        a.risk_score().to_bits(),
        b.risk_score().to_bits(),
        "{context}: risk score for {}",
        a.app
    );
}

/// Boxed per-row reference reports for a corpus.
fn boxed_reports(model: &TrainedModel, apps: &[(String, FeatureVector)]) -> Vec<SecurityReport> {
    apps.iter()
        .map(|(name, fv)| model.evaluate_features(name.clone(), fv))
        .collect()
}

/// The full journey — compile, serialize, deserialize, batch-score at 1
/// and 4 workers — compared against the boxed reference path.
fn assert_roundtrip_matches_boxed(
    model: &TrainedModel,
    apps: &[(String, FeatureVector)],
    context: &str,
) {
    let reference = boxed_reports(model, apps);
    let bytes = model.compile().to_bytes();
    let decoded = CompiledModel::from_bytes(&bytes).expect("roundtrip decodes");
    for jobs in [1, 4] {
        let batched = decoded.evaluate_batch(apps, jobs);
        assert_eq!(batched.len(), reference.len(), "{context}");
        for (a, b) in reference.iter().zip(&batched) {
            assert_reports_identical(a, b, &format!("{context}, {jobs} worker(s)"));
        }
    }
}

#[test]
fn every_learner_roundtrips_bit_identically() {
    let train_corpus = Corpus::generate(&CorpusConfig::small(16, 20177));
    let score_corpus = Corpus::generate(&CorpusConfig::small(12, 99));
    let apps = extract_apps(&score_corpus);
    for learner in Learner::ALL {
        let model = Trainer::with_config(TrainerConfig {
            learner,
            ..Default::default()
        })
        .train(&train_corpus);
        assert_roundtrip_matches_boxed(&model, &apps, &format!("learner {learner}"));
    }
}

#[test]
fn dialect_skewed_corpora_score_identically() {
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&Corpus::generate(&CorpusConfig::small(16, 20177)));
    // One corpus per dominant dialect: C, Python, Java, C++.
    for (i, language_mix) in [[9, 1, 1, 1], [1, 9, 1, 1], [1, 1, 9, 1], [1, 1, 1, 9]]
        .into_iter()
        .enumerate()
    {
        let mut config = CorpusConfig::small(12, 7 + i as u64);
        config.language_mix = language_mix;
        let apps = extract_apps(&Corpus::generate(&config));
        assert_roundtrip_matches_boxed(&model, &apps, &format!("dialect mix {language_mix:?}"));
    }
}

#[test]
fn saved_model_scores_identically_after_reload() {
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&Corpus::generate(&CorpusConfig::small(16, 20177)));
    let apps = extract_apps(&Corpus::generate(&CorpusConfig::small(10, 41)));
    let reference = boxed_reports(&model, &apps);

    let path = std::env::temp_dir().join(format!("clairvoyant-model-{}.clvy", std::process::id()));
    model.compile().save(&path).expect("model saves");
    let loaded = CompiledModel::load(&path).expect("model loads");
    let _ = std::fs::remove_file(&path);

    let batched = loaded.evaluate_batch(&apps, 2);
    assert_eq!(batched.len(), reference.len());
    for (a, b) in reference.iter().zip(&batched) {
        assert_reports_identical(a, b, "reloaded from disk");
    }
}

/// The explanation engine's core invariant, end to end: for every
/// learner (each on a differently dialect-skewed corpus), every model in
/// the compiled battery decomposes every row into `baseline + Σ
/// contributions == score` **bitwise**, the attribution predictions are
/// bitwise equal to the scoring engine's, the batched path matches the
/// scalar per-row reference, and none of it depends on the worker count.
#[test]
fn attribution_folds_exactly_for_every_learner() {
    let train_corpus = Corpus::generate(&CorpusConfig::small(16, 20177));
    let mixes = [[9, 1, 1, 1], [1, 9, 1, 1], [1, 1, 9, 1], [1, 1, 1, 9]];
    for (i, learner) in Learner::ALL.into_iter().enumerate() {
        let model = Trainer::with_config(TrainerConfig {
            learner,
            ..Default::default()
        })
        .train(&train_corpus);
        let compiled = model.compile();
        let mut config = CorpusConfig::small(8, 100 + i as u64);
        config.language_mix = mixes[i % mixes.len()];
        let apps = extract_apps(&Corpus::generate(&config));
        let context = format!("learner {learner}, mix {:?}", config.language_mix);

        let scored = compiled.evaluate_batch(&apps, 1);
        let one = compiled.explain_batch(&apps, 1);
        let four = compiled.explain_batch(&apps, 4);
        assert_eq!(one.len(), apps.len(), "{context}");

        for (((e1, e4), report), (name, fv)) in one.iter().zip(&four).zip(&scored).zip(&apps) {
            // The report assembled from attributions equals the scoring
            // engine's report bitwise.
            assert_reports_identical(report, &e1.report, &context);

            // Worker count changes nothing, and the batched kernels match
            // the scalar per-row attribution walk bit-for-bit.
            let scalar = compiled.explain_features(name.clone(), fv);
            for ((m1, m4), ms) in e1.models.iter().zip(&e4.models).zip(&scalar.models) {
                assert_eq!(m1.target, m4.target, "{context}");
                assert_eq!(m1.target, ms.target, "{context}");
                for other in [m4, ms] {
                    assert_eq!(
                        m1.baseline.to_bits(),
                        other.baseline.to_bits(),
                        "{context}: {} baseline for {name}",
                        m1.target
                    );
                    assert_eq!(
                        m1.score.to_bits(),
                        other.score.to_bits(),
                        "{context}: {} score for {name}",
                        m1.target
                    );
                    assert_eq!(
                        m1.prediction.to_bits(),
                        other.prediction.to_bits(),
                        "{context}: {} prediction for {name}",
                        m1.target
                    );
                    assert_eq!(m1.contributions.len(), other.contributions.len());
                    for (c1, c2) in m1.contributions.iter().zip(&other.contributions) {
                        assert_eq!(
                            c1.to_bits(),
                            c2.to_bits(),
                            "{context}: {} contribution for {name}",
                            m1.target
                        );
                    }
                }

                // The tentpole invariant: baseline + Σ contributions
                // reproduces the decomposed score exactly.
                let mut folded = m1.baseline;
                for c in &m1.contributions {
                    folded += *c;
                }
                assert_eq!(
                    folded.to_bits(),
                    m1.score.to_bits(),
                    "{context}: {} does not fold for {name}",
                    m1.target
                );
            }
        }
    }
}

#[test]
fn system_reports_do_not_depend_on_worker_count() {
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&Corpus::generate(&CorpusConfig::small(16, 20177)));
    let corpus = Corpus::generate(&CorpusConfig::small(3, 5));
    let exposures = [
        Exposure::NetworkFacing,
        Exposure::Internal,
        Exposure::Infrastructure,
    ];
    let system = SystemSpec {
        name: "stack".into(),
        components: corpus
            .apps
            .iter()
            .zip(exposures)
            .map(|(app, exposure)| Component {
                name: app.spec.name.clone(),
                program: app.program.clone(),
                exposure,
                containment: Containment::Container,
            })
            .collect(),
    };
    let one = evaluate_system_jobs(&model, &system, 1);
    let four = evaluate_system_jobs(&model, &system, 4);
    assert_eq!(one.score.to_bits(), four.score.to_bits());
    assert_eq!(one.weakest, four.weakest);
    assert_eq!(one.escalation_chain, four.escalation_chain);
    assert_eq!(one.components.len(), four.components.len());
    for (a, b) in one.components.iter().zip(&four.components) {
        assert_eq!(a.weighted_risk.to_bits(), b.weighted_risk.to_bits());
        assert_eq!(a.privileged, b.privileged);
        assert_reports_identical(&a.report, &b.report, "system component");
    }
}
