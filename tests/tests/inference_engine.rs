//! Cross-crate checks for the batched inference engine: for every
//! learner and across dialect-skewed corpora, compile → serialize →
//! deserialize → `evaluate_batch` must reproduce the boxed per-row
//! reference path bit-for-bit at any worker count, on disk as well as in
//! memory, and system evaluation must not depend on workers either.

use clairvoyant::prelude::*;
use clairvoyant::system::{evaluate_system_jobs, Containment, Exposure};
use clairvoyant::SecurityReport;
use clairvoyant::{Component, SystemSpec};
use static_analysis::FeatureVector;

fn extract_apps(corpus: &Corpus) -> Vec<(String, FeatureVector)> {
    let testbed = Testbed::new();
    corpus
        .apps
        .iter()
        .map(|app| (app.spec.name.clone(), testbed.extract(&app.program)))
        .collect()
}

/// Every float compared through its bit pattern: the batched engine
/// promises exact reproduction, not tolerance-level agreement.
fn assert_reports_identical(a: &SecurityReport, b: &SecurityReport, context: &str) {
    assert_eq!(a.app, b.app, "{context}: app");
    assert_eq!(
        a.predicted_vulnerabilities.to_bits(),
        b.predicted_vulnerabilities.to_bits(),
        "{context}: predicted count for {}",
        a.app
    );
    assert_eq!(
        a.high_severity_risk.map(f64::to_bits),
        b.high_severity_risk.map(f64::to_bits),
        "{context}: high-severity risk for {}",
        a.app
    );
    assert_eq!(
        a.network_risk.map(f64::to_bits),
        b.network_risk.map(f64::to_bits),
        "{context}: network risk for {}",
        a.app
    );
    assert_eq!(a.hypotheses.len(), b.hypotheses.len(), "{context}");
    for ((h1, p1), (h2, p2)) in a.hypotheses.iter().zip(&b.hypotheses) {
        assert_eq!(h1, h2, "{context}: battery order for {}", a.app);
        assert_eq!(p1.to_bits(), p2.to_bits(), "{context}: {h1} for {}", a.app);
    }
    assert_eq!(
        a.severity_counts.len(),
        b.severity_counts.len(),
        "{context}"
    );
    for ((s1, n1), (s2, n2)) in a.severity_counts.iter().zip(&b.severity_counts) {
        assert_eq!(s1, s2, "{context}: band order for {}", a.app);
        assert_eq!(
            n1.to_bits(),
            n2.to_bits(),
            "{context}: {s1:?} for {}",
            a.app
        );
    }
    assert_eq!(
        a.structural_risk.to_bits(),
        b.structural_risk.to_bits(),
        "{context}: structural risk for {}",
        a.app
    );
    assert_eq!(a.attributions.len(), b.attributions.len(), "{context}");
    for (x, y) in a.attributions.iter().zip(&b.attributions) {
        assert_eq!(x.feature, y.feature, "{context}: attribution for {}", a.app);
        assert_eq!(x.value.to_bits(), y.value.to_bits(), "{context}");
        assert_eq!(x.weight.to_bits(), y.weight.to_bits(), "{context}");
        assert_eq!(
            x.contribution.to_bits(),
            y.contribution.to_bits(),
            "{context}"
        );
    }
    assert_eq!(
        a.hints.len(),
        b.hints.len(),
        "{context}: hints for {}",
        a.app
    );
    for (x, y) in a.hints.iter().zip(&b.hints) {
        assert_eq!(x.advice, y.advice, "{context}");
        assert_eq!(x.because, y.because, "{context}");
    }
    assert_eq!(
        a.risk_score().to_bits(),
        b.risk_score().to_bits(),
        "{context}: risk score for {}",
        a.app
    );
}

/// Boxed per-row reference reports for a corpus.
fn boxed_reports(model: &TrainedModel, apps: &[(String, FeatureVector)]) -> Vec<SecurityReport> {
    apps.iter()
        .map(|(name, fv)| model.evaluate_features(name.clone(), fv))
        .collect()
}

/// The full journey — compile, serialize, deserialize, batch-score at 1
/// and 4 workers — compared against the boxed reference path.
fn assert_roundtrip_matches_boxed(
    model: &TrainedModel,
    apps: &[(String, FeatureVector)],
    context: &str,
) {
    let reference = boxed_reports(model, apps);
    let bytes = model.compile().to_bytes();
    let decoded = CompiledModel::from_bytes(&bytes).expect("roundtrip decodes");
    for jobs in [1, 4] {
        let batched = decoded.evaluate_batch(apps, jobs);
        assert_eq!(batched.len(), reference.len(), "{context}");
        for (a, b) in reference.iter().zip(&batched) {
            assert_reports_identical(a, b, &format!("{context}, {jobs} worker(s)"));
        }
    }
}

#[test]
fn every_learner_roundtrips_bit_identically() {
    let train_corpus = Corpus::generate(&CorpusConfig::small(16, 20177));
    let score_corpus = Corpus::generate(&CorpusConfig::small(12, 99));
    let apps = extract_apps(&score_corpus);
    for learner in Learner::ALL {
        let model = Trainer::with_config(TrainerConfig {
            learner,
            ..Default::default()
        })
        .train(&train_corpus);
        assert_roundtrip_matches_boxed(&model, &apps, &format!("learner {learner}"));
    }
}

#[test]
fn dialect_skewed_corpora_score_identically() {
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&Corpus::generate(&CorpusConfig::small(16, 20177)));
    // One corpus per dominant dialect: C, Python, Java, C++.
    for (i, language_mix) in [[9, 1, 1, 1], [1, 9, 1, 1], [1, 1, 9, 1], [1, 1, 1, 9]]
        .into_iter()
        .enumerate()
    {
        let mut config = CorpusConfig::small(12, 7 + i as u64);
        config.language_mix = language_mix;
        let apps = extract_apps(&Corpus::generate(&config));
        assert_roundtrip_matches_boxed(&model, &apps, &format!("dialect mix {language_mix:?}"));
    }
}

#[test]
fn saved_model_scores_identically_after_reload() {
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&Corpus::generate(&CorpusConfig::small(16, 20177)));
    let apps = extract_apps(&Corpus::generate(&CorpusConfig::small(10, 41)));
    let reference = boxed_reports(&model, &apps);

    let path = std::env::temp_dir().join(format!("clairvoyant-model-{}.clvy", std::process::id()));
    model.compile().save(&path).expect("model saves");
    let loaded = CompiledModel::load(&path).expect("model loads");
    let _ = std::fs::remove_file(&path);

    let batched = loaded.evaluate_batch(&apps, 2);
    assert_eq!(batched.len(), reference.len());
    for (a, b) in reference.iter().zip(&batched) {
        assert_reports_identical(a, b, "reloaded from disk");
    }
}

/// The explanation engine's core invariant, end to end: for every
/// learner (each on a differently dialect-skewed corpus), every model in
/// the compiled battery decomposes every row into `baseline + Σ
/// contributions == score` **bitwise**, the attribution predictions are
/// bitwise equal to the scoring engine's, the batched path matches the
/// scalar per-row reference, and none of it depends on the worker count.
#[test]
fn attribution_folds_exactly_for_every_learner() {
    let train_corpus = Corpus::generate(&CorpusConfig::small(16, 20177));
    let mixes = [[9, 1, 1, 1], [1, 9, 1, 1], [1, 1, 9, 1], [1, 1, 1, 9]];
    for (i, learner) in Learner::ALL.into_iter().enumerate() {
        let model = Trainer::with_config(TrainerConfig {
            learner,
            ..Default::default()
        })
        .train(&train_corpus);
        let compiled = model.compile();
        let mut config = CorpusConfig::small(8, 100 + i as u64);
        config.language_mix = mixes[i % mixes.len()];
        let apps = extract_apps(&Corpus::generate(&config));
        let context = format!("learner {learner}, mix {:?}", config.language_mix);

        let scored = compiled.evaluate_batch(&apps, 1);
        let one = compiled.explain_batch(&apps, 1);
        let four = compiled.explain_batch(&apps, 4);
        assert_eq!(one.len(), apps.len(), "{context}");

        for (((e1, e4), report), (name, fv)) in one.iter().zip(&four).zip(&scored).zip(&apps) {
            // The report assembled from attributions equals the scoring
            // engine's report bitwise.
            assert_reports_identical(report, &e1.report, &context);

            // Worker count changes nothing, and the batched kernels match
            // the scalar per-row attribution walk bit-for-bit.
            let scalar = compiled.explain_features(name.clone(), fv);
            for ((m1, m4), ms) in e1.models.iter().zip(&e4.models).zip(&scalar.models) {
                assert_eq!(m1.target, m4.target, "{context}");
                assert_eq!(m1.target, ms.target, "{context}");
                for other in [m4, ms] {
                    assert_eq!(
                        m1.baseline.to_bits(),
                        other.baseline.to_bits(),
                        "{context}: {} baseline for {name}",
                        m1.target
                    );
                    assert_eq!(
                        m1.score.to_bits(),
                        other.score.to_bits(),
                        "{context}: {} score for {name}",
                        m1.target
                    );
                    assert_eq!(
                        m1.prediction.to_bits(),
                        other.prediction.to_bits(),
                        "{context}: {} prediction for {name}",
                        m1.target
                    );
                    assert_eq!(m1.contributions.len(), other.contributions.len());
                    for (c1, c2) in m1.contributions.iter().zip(&other.contributions) {
                        assert_eq!(
                            c1.to_bits(),
                            c2.to_bits(),
                            "{context}: {} contribution for {name}",
                            m1.target
                        );
                    }
                }

                // The tentpole invariant: baseline + Σ contributions
                // reproduces the decomposed score exactly.
                let mut folded = m1.baseline;
                for c in &m1.contributions {
                    folded += *c;
                }
                assert_eq!(
                    folded.to_bits(),
                    m1.score.to_bits(),
                    "{context}: {} does not fold for {name}",
                    m1.target
                );
            }
        }
    }
}

/// Differential fuzzing of the compiled kernels (`secml::kernel`)
/// against the interpreter, over seeded random *wire* forests — tables
/// that arrive through the `CLVY` decode path rather than training, so
/// they reach shapes training never emits: depth past the unroll limit,
/// NaN split thresholds and NaN leaf values, single-leaf trees, empty
/// forests, duplicate and signed-zero cuts. Scores and attributions
/// must be bit-identical for every forest, at batch sizes straddling
/// the kernel's mask/ladder engine boundary.
mod kernel_fuzz {
    use secml::bytes::{ByteReader, ByteWriter};
    use secml::{ColMatrix, CompiledClassifier};

    const LEAF: u32 = u32::MAX;
    const FEATS: usize = 6;
    /// Batch sizes straddling the mask-walk threshold (32) and the
    /// 64-row block width, plus the single-row serve shape.
    const SIZES: [usize; 6] = [1, 31, 32, 64, 65, 117];

    /// splitmix64: tiny, seeded, good enough to shake out edge cases
    /// reproducibly.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A split threshold: mostly ordinary finite values, salted with
        /// the exact-compare hazards — NaN (always-false splits), signed
        /// zeros, duplicated round values, extremes.
        fn threshold(&mut self) -> f64 {
            match self.below(12) {
                0 => f64::NAN,
                1 => 0.0,
                2 => -0.0,
                3 => 1.0, // deliberately duplicated across nodes
                4 => -1e300,
                5 => 1e300,
                _ => self.unit() * 8.0 - 4.0,
            }
        }

        /// A row value: the same hazards the thresholds carry, plus
        /// infinities and exact threshold hits.
        fn cell(&mut self) -> f64 {
            match self.below(14) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                5 => 1.0,
                _ => self.unit() * 8.0 - 4.0,
            }
        }
    }

    /// A random forest in wire-table form (preorder, leaves
    /// self-looping — the invariants `FlatTree::validate` demands).
    #[derive(Default)]
    struct WireForest {
        roots: Vec<u32>,
        feature: Vec<u32>,
        threshold: Vec<f64>,
        left: Vec<u32>,
        right: Vec<u32>,
    }

    impl WireForest {
        fn push_leaf(&mut self, value: f64) -> u32 {
            let i = self.feature.len() as u32;
            self.feature.push(LEAF);
            self.threshold.push(value);
            self.left.push(i);
            self.right.push(i);
            i
        }

        /// Preorder-generate a subtree: split probability decays with
        /// depth, but a `spine` budget forces a left chain first so some
        /// trees exceed the kernel's unroll depth (8) and exercise the
        /// quantized lockstep path.
        fn gen(&mut self, rng: &mut Rng, depth: u32, spine: u32) -> u32 {
            let split = spine > 0 || (depth < 11 && rng.below(100) < 72);
            if !split {
                // Leaf values include NaN: both engines must fold the
                // same bits through identical per-row sums.
                let value = if rng.below(24) == 0 {
                    f64::NAN
                } else {
                    rng.unit() * 2.0 - 1.0
                };
                return self.push_leaf(value);
            }
            let i = self.feature.len() as u32;
            self.feature.push(rng.below(FEATS as u64) as u32);
            self.threshold.push(rng.threshold());
            self.left.push(0);
            self.right.push(0);
            let l = self.gen(rng, depth + 1, spine.saturating_sub(1));
            let r = self.gen(rng, depth + 1, 0);
            self.left[i as usize] = l;
            self.right[i as usize] = r;
            i
        }

        /// Serialize as a `CompiledClassifier::Forest` and decode back
        /// through the production wire path (which validates the table).
        fn decode(&self) -> CompiledClassifier {
            let mut w = ByteWriter::new();
            w.put_u8(0); // CompiledClassifier::Forest tag
            w.put_u32s(&self.roots);
            w.put_u32s(&self.feature);
            w.put_f64s(&self.threshold);
            w.put_u32s(&self.left);
            w.put_u32s(&self.right);
            w.put_f64(self.roots.len().max(1) as f64);
            w.put_f64(0.5);
            let bytes = w.into_bytes();
            CompiledClassifier::decode(&mut ByteReader::new(&bytes)).expect("fuzzed table decodes")
        }
    }

    /// One seeded random forest. Shape 0 is the empty forest (no roots,
    /// one orphan node to satisfy validation); shape 1 a single leaf;
    /// shape 2 a deep left spine; the rest mixed random trees.
    fn gen_forest(seed: u64) -> WireForest {
        let mut rng = Rng(seed.wrapping_mul(2) | 1);
        let mut wf = WireForest::default();
        match seed % 8 {
            0 => {
                wf.push_leaf(7.0);
            }
            1 => {
                let root = wf.push_leaf(0.25);
                wf.roots.push(root);
            }
            2 => {
                let root = wf.gen(&mut rng, 0, 10 + (seed % 4) as u32);
                wf.roots.push(root);
            }
            _ => {
                for _ in 0..1 + rng.below(6) {
                    let spine = if rng.below(3) == 0 { 9 } else { 0 };
                    let root = wf.gen(&mut rng, 0, spine);
                    wf.roots.push(root);
                }
            }
        }
        wf
    }

    fn matrix(rng: &mut Rng, rows: usize) -> ColMatrix {
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..FEATS).map(|_| rng.cell()).collect())
            .collect();
        ColMatrix::from_rows(&data)
    }

    fn assert_engines_agree(interp: &CompiledClassifier, kernel: &CompiledClassifier, seed: u64) {
        let mut rng = Rng(seed ^ 0xD6E8_FEB8_6659_FD93);
        for rows in SIZES {
            let x = matrix(&mut rng, rows);
            let context = format!("seed {seed}, {rows} rows");
            let a = interp.predict_batch(&x);
            let b = kernel.predict_batch(&x);
            assert_eq!(a.len(), b.len(), "{context}");
            for (i, (p, q)) in a.iter().zip(&b).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "{context}: score row {i}");
            }
            let aa = interp.attribute_batch(&x);
            let ab = kernel.attribute_batch(&x);
            for (i, (ra, rb)) in aa.iter().zip(&ab).enumerate() {
                assert_eq!(
                    ra.baseline.to_bits(),
                    rb.baseline.to_bits(),
                    "{context}: baseline row {i}"
                );
                assert_eq!(
                    ra.score.to_bits(),
                    rb.score.to_bits(),
                    "{context}: score row {i}"
                );
                assert_eq!(
                    ra.prediction.to_bits(),
                    rb.prediction.to_bits(),
                    "{context}: prediction row {i}"
                );
                assert_eq!(ra.contributions.len(), rb.contributions.len(), "{context}");
                for (j, (ca, cb)) in ra.contributions.iter().zip(&rb.contributions).enumerate() {
                    assert_eq!(
                        ca.to_bits(),
                        cb.to_bits(),
                        "{context}: contribution {j} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn fuzzed_wire_forests_score_and_attribute_bit_identically() {
        for seed in 0..48u64 {
            let interp = gen_forest(seed).decode();
            let kernel = interp.clone();
            // Degenerate tables may refuse to compile (that is the
            // exactness fallback working); they still must score
            // identically through the interpreter they keep.
            kernel.optimize();
            assert_engines_agree(&interp, &kernel, seed);
        }
    }

    #[test]
    fn fuzzed_linked_batteries_stay_bit_identical() {
        // Groups of fuzzed forests linked to one shared quantization
        // (the battery path `CompiledModel::optimize` takes): the
        // merged-table remap must preserve bit-identity for every
        // member, including the degenerate shapes.
        for group in 0..6u64 {
            let seeds: Vec<u64> = (0..5).map(|k| group * 5 + k).collect();
            let interps: Vec<CompiledClassifier> =
                seeds.iter().map(|&s| gen_forest(s).decode()).collect();
            let kernels: Vec<CompiledClassifier> = interps.to_vec();
            for kernel in &kernels {
                kernel.optimize();
            }
            secml::link_battery(kernels.iter(), []);
            for ((interp, kernel), &seed) in interps.iter().zip(&kernels).zip(&seeds) {
                assert_engines_agree(interp, kernel, seed);
            }
        }
    }
}

/// Serve's wire responses come from hot-reload-compiled kernels
/// (`ModelState` runs `optimize()` before the state is published); they
/// must be bitwise the JSON the *un-optimized* interpreter produces
/// offline — the end-to-end closure of the kernel equality gate.
#[test]
fn served_scores_are_bit_identical_to_the_unoptimized_interpreter() {
    use clairvoyant::report::{security_report_value, Json};
    use serve::client::{is_ok, Client};
    use serve::server::{ModelState, ServeConfig};

    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&Corpus::generate(&CorpusConfig::small(14, 20177)));
    let apps = extract_apps(&Corpus::generate(&CorpusConfig::small(8, 53)));

    // Offline reference: a freshly compiled battery that never runs the
    // codegen stage, so it scores through the PR 4 interpreter.
    let interp = model.compile();
    let expected: Vec<String> = interp
        .evaluate_batch(&apps, 1)
        .iter()
        .map(|r| security_report_value(r).to_string())
        .collect();

    // Served path: a second compilation of the same battery, with the
    // optimized kernels compiled up front as the reload path does.
    let handle = serve::start(
        ServeConfig {
            batch_max: 3,
            jobs: 2,
            ..ServeConfig::default()
        },
        ModelState::from_model(model.compile()),
    )
    .expect("daemon starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("set timeout");
    for ((name, fv), want) in apps.iter().zip(&expected) {
        let response = client.score_features(name, fv).expect("score");
        assert!(is_ok(&response), "score failed: {response}");
        let Json::Object(obj) = &response else {
            panic!("score response is not an object: {response}");
        };
        let report = obj.get("report").expect("response has report").to_string();
        assert_eq!(&report, want, "served report diverged for {name}");
    }
    handle.shutdown();
}

#[test]
fn system_reports_do_not_depend_on_worker_count() {
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&Corpus::generate(&CorpusConfig::small(16, 20177)));
    let corpus = Corpus::generate(&CorpusConfig::small(3, 5));
    let exposures = [
        Exposure::NetworkFacing,
        Exposure::Internal,
        Exposure::Infrastructure,
    ];
    let system = SystemSpec {
        name: "stack".into(),
        components: corpus
            .apps
            .iter()
            .zip(exposures)
            .map(|(app, exposure)| Component {
                name: app.spec.name.clone(),
                program: app.program.clone(),
                exposure,
                containment: Containment::Container,
            })
            .collect(),
    };
    let one = evaluate_system_jobs(&model, &system, 1);
    let four = evaluate_system_jobs(&model, &system, 4);
    assert_eq!(one.score.to_bits(), four.score.to_bits());
    assert_eq!(one.weakest, four.weakest);
    assert_eq!(one.escalation_chain, four.escalation_chain);
    assert_eq!(one.components.len(), four.components.len());
    for (a, b) in one.components.iter().zip(&four.components) {
        assert_eq!(a.weighted_risk.to_bits(), b.weighted_risk.to_bits());
        assert_eq!(a.privileged, b.privileged);
        assert_reports_identical(&a.report, &b.report, "system component");
    }
}
