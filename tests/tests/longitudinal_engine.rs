//! Black-box tests for the PR 10 longitudinal scale-out layer.
//!
//! Three pillars, each exercised end to end rather than per crate:
//!
//! - **Soak**: a 3-epoch [`replay`] drives a LIVE scoring daemon — the
//!   deploy hook hot-reloads each epoch's `CLVY` while concurrent
//!   clients score through pipelined connections the whole time. Zero
//!   requests may drop or error across both swaps, every response must
//!   pair a fingerprint with exactly that model's bit-exact offline
//!   report (never a torn hybrid), and once the final swap lands a
//!   fresh request must match offline scoring under the refreshed file.
//! - **Out-of-core property sweep**: seeded random matrices — NaN
//!   cells, constant columns, single-row, zero-column shapes — pushed
//!   through the spill-to-disk builder and re-opened from disk must
//!   reproduce the in-RAM twin bit-for-bit: cell values, per-column
//!   sort permutations, `subset` derivations, and trained-forest
//!   outputs at 1 and 4 workers.
//! - **Stream determinism**: the longitudinal stream is a pure
//!   function of `(seed, tenant knobs, epoch)` — identical across
//!   stream instances, consumption orders, and chunk sizes — and the
//!   classic `Corpus::generate` stays bitwise equal to draining the
//!   streaming generator in arbitrary chunks.

use clairvoyant::longitudinal::{replay, LongitudinalConfig};
use clairvoyant::prelude::*;
use clairvoyant::report::{security_report_value, Json};
use corpus::{Corpus, LongitudinalStream, StreamConfig};
use rand::rngs::StdRng;
use rand::{derive_seed, Rng, SeedableRng};
use secml::forest::{ForestConfig, RandomForest};
use secml::{Classifier, ColMatrix, ColMatrixBuilder};
use serve::client::{is_ok, Client};
use serve::server::{ModelState, ServeConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clairvoyant-longit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The probe programs the soak clients score over and over. Distinct
/// shapes so distinct reports tell models apart.
const PROBES: [(&str, &str); 3] = [
    (
        "probe-net",
        "@endpoint(network)\nfn handle(req: str, n: int) -> int {\n    let buf: str[24];\n    let i: int = 0;\n    while i < n {\n        if i > 2 { n = n - 1; }\n        i = i + 1;\n    }\n    strcpy(buf, req);\n    return n;\n}\n",
    ),
    (
        "probe-cli",
        "fn main(arg: str) -> int {\n    let total: int = 0;\n    let i: int = 0;\n    while i < 9 {\n        if i > 4 { total = total + i; }\n        i = i + 1;\n    }\n    log_msg(arg);\n    return total;\n}\n",
    ),
    (
        "probe-exec",
        "fn run(cmd: str, depth: int) -> int {\n    let scratch: str[48];\n    if depth > 1 { exec(cmd); }\n    sprintf(scratch, cmd);\n    return depth + 2;\n}\n",
    ),
];

/// Offline reference for a probe under one epoch's persisted model:
/// same parse, same extraction, same compiled engine the daemon runs.
fn offline_reports(model_path: &std::path::Path) -> BTreeMap<String, String> {
    let compiled = CompiledModel::load(model_path).expect("load epoch model");
    PROBES
        .iter()
        .map(|(name, source)| {
            let program = parse_program(
                name,
                Dialect::C,
                &[(format!("{name}.src"), source.to_string())],
            )
            .expect("probe parses");
            let fv = Testbed::new().extract(&program);
            let reports = compiled.evaluate_batch(&[(name.to_string(), fv)], 1);
            (
                name.to_string(),
                security_report_value(&reports[0]).to_string(),
            )
        })
        .collect()
}

/// Pull `(model_fingerprint, report_json)` out of a score response.
fn score_parts(response: &Json) -> (String, String) {
    let Json::Object(obj) = response else {
        panic!("score response is not an object: {response}");
    };
    let Some(Json::String(fp)) = obj.get("model") else {
        panic!("score response has no model fingerprint: {response}");
    };
    let report = obj.get("report").expect("score response has a report");
    (fp.clone(), report.to_string())
}

/// The tentpole soak: replay three epochs, hot-redeploying each epoch's
/// model into a live daemon under sustained pipelined scoring load.
#[test]
fn soak_replay_redeploys_without_dropping_or_tearing() {
    let work = scratch("soak");
    let config = LongitudinalConfig {
        stream: StreamConfig {
            apps: 24,
            ..StreamConfig::default()
        },
        epochs: 3,
        trainer: TrainerConfig {
            top_k_features: Some(14),
            ..Default::default()
        },
        work_dir: work.clone(),
        out_of_core: true,
        ..Default::default()
    };

    // Epoch 0 trains before any daemon exists; its deploy boots the
    // fleet-of-one. Later epochs hot-reload the running daemon while
    // the scorer threads below are still to come — the swaps under load
    // happen in the second half of this test, driven by the recorded
    // paths. First, collect the three persisted models.
    let mut model_paths: Vec<PathBuf> = Vec::new();
    let report = replay(&config, |_, path| {
        model_paths.push(path.to_path_buf());
        Ok(())
    })
    .expect("replay");
    assert_eq!(model_paths.len(), 3, "one deploy per epoch");
    let fingerprints: Vec<String> = report
        .epochs
        .iter()
        .map(|e| e.fingerprint.clone())
        .collect();

    // The daemon must agree with the driver about each file's identity.
    for (path, fingerprint) in model_paths.iter().zip(&fingerprints) {
        let state = ModelState::load(path).expect("epoch model loads");
        assert_eq!(
            &state.fingerprint_hex(),
            fingerprint,
            "driver fingerprint diverges from the serve loader"
        );
    }

    // Offline ground truth per epoch model, keyed by fingerprint.
    let expected: BTreeMap<String, BTreeMap<String, String>> = model_paths
        .iter()
        .zip(&fingerprints)
        .map(|(path, fp)| (fp.clone(), offline_reports(path)))
        .collect();

    let handle = serve::start(
        ServeConfig {
            jobs: 1,
            ..ServeConfig::default()
        },
        ModelState::load(&model_paths[0]).expect("boot model"),
    )
    .expect("daemon starts");
    let addr = handle.addr();

    const SCORERS: usize = 3;
    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    let requests: Vec<Json> = PROBES
        .iter()
        .map(|(name, source)| {
            Json::object(vec![
                ("op", Json::String("score".into())),
                ("name", Json::String((*name).into())),
                ("source", Json::String((*source).into())),
                ("dialect", Json::String("c".into())),
            ])
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..SCORERS {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("scorer connects");
                client
                    .set_timeout(Some(Duration::from_secs(30)))
                    .expect("set timeout");
                while !stop.load(Ordering::Relaxed) {
                    // All probe requests go on the wire before the first
                    // response is read — the pipelined path a swap must
                    // never tear or drop.
                    let responses = client.pipeline(&requests).expect("pipeline survives swap");
                    assert_eq!(responses.len(), requests.len(), "response dropped");
                    for ((name, _), response) in PROBES.iter().zip(&responses) {
                        assert!(is_ok(response), "request errored mid-swap: {response}");
                        let (fp, report) = score_parts(response);
                        let model = expected.get(&fp).unwrap_or_else(|| {
                            panic!("fingerprint {fp} matches no deployed epoch")
                        });
                        // Bit-identical to offline scoring under the
                        // model the response claims — never a hybrid of
                        // pre- and post-swap state.
                        assert_eq!(
                            &report, &model[*name],
                            "torn response for {name} under {fp}"
                        );
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The redeploy loop: both swaps land while the scorers hammer.
        let mut admin = Client::connect(addr).expect("admin connects");
        for path in &model_paths[1..] {
            std::thread::sleep(Duration::from_millis(40));
            let response = admin
                .reload(Some(&path.to_string_lossy()))
                .expect("reload round-trip");
            assert!(is_ok(&response), "reload refused: {response}");
        }
        std::thread::sleep(Duration::from_millis(40));
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        answered.load(Ordering::Relaxed) > 0,
        "soak produced no scored responses"
    );

    // Post-swap: the daemon now speaks exclusively for the refreshed
    // model, bit-identical to loading that CLVY offline.
    let final_fp = fingerprints.last().expect("three epochs");
    let mut client = Client::connect(addr).expect("post-swap connect");
    for (name, source) in PROBES {
        let response = client.score_source(name, source, "c").expect("score");
        assert!(is_ok(&response), "post-swap score failed: {response}");
        let (fp, report) = score_parts(&response);
        assert_eq!(&fp, final_fp, "stale model still serving after final swap");
        assert_eq!(&report, &expected[final_fp][name]);
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&work);
}

/// Column styles the matrix property sweep draws from — the edge shapes
/// the spill format must preserve bit-for-bit.
fn random_matrix(rng: &mut StdRng, n_rows: usize, n_cols: usize) -> Vec<Vec<f64>> {
    let styles: Vec<u8> = (0..n_cols).map(|_| rng.gen_range(0..4u8)).collect();
    let constants: Vec<f64> = (0..n_cols).map(|_| rng.gen_range(-5.0..5.0)).collect();
    (0..n_rows)
        .map(|_| {
            (0..n_cols)
                .map(|j| match styles[j] {
                    0 => constants[j],
                    1 if rng.gen_bool(0.3) => f64::NAN,
                    1 => rng.gen_range(-100.0..100.0),
                    2 => {
                        let tiny = rng.gen_range(-1.0..1.0);
                        tiny * 1e-300
                    }
                    _ => rng.gen_range(-1e9..1e9),
                })
                .collect()
        })
        .collect()
}

fn assert_bit_identical(ram: &ColMatrix, other: &ColMatrix, what: &str) {
    assert_eq!(ram.n_rows(), other.n_rows(), "{what}: row count");
    assert_eq!(ram.n_cols(), other.n_cols(), "{what}: column count");
    for j in 0..ram.n_cols() {
        assert_eq!(ram.sorted(j), other.sorted(j), "{what}: sort perm col {j}");
        for i in 0..ram.n_rows() {
            assert_eq!(
                ram.value(i, j).to_bits(),
                other.value(i, j).to_bits(),
                "{what}: cell ({i},{j})"
            );
        }
    }
}

/// Property sweep: for seeded random shapes, the spilled matrix and its
/// re-opened-from-disk twin reproduce the in-RAM matrix exactly —
/// values, permutations, subsets, and downstream forest training.
#[test]
fn out_of_core_matrices_match_ram_under_random_shapes() {
    let base = scratch("prop");
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(0x0005_9110_c04e, case));
        // Pin in the edge shapes; sample the rest.
        let (n_rows, n_cols) = match case % 6 {
            0 => (1, rng.gen_range(1..6)),  // single row
            1 => (rng.gen_range(2..32), 0), // no columns
            _ => (rng.gen_range(2..32), rng.gen_range(1..7)),
        };
        let rows = random_matrix(&mut rng, n_rows, n_cols);
        let ram = ColMatrix::from_rows(&rows);

        let dir = base.join(format!("case-{case}"));
        let mut builder = ColMatrixBuilder::new(n_cols)
            .chunk_rows(rng.gen_range(1..8))
            .spill(&dir)
            .expect("arm spill");
        for row in &rows {
            builder.push_row(row).expect("push row");
        }
        let spilled = builder.finish().expect("finish spill");
        let reloaded = ColMatrix::open_spilled(&dir).expect("reopen from disk");
        assert_bit_identical(&ram, &spilled, &format!("case {case} spilled"));
        assert_bit_identical(&ram, &reloaded, &format!("case {case} reloaded"));

        // Subset derivations (with repeats) stay bit-identical.
        let indices: Vec<usize> = (0..n_rows.max(1))
            .map(|_| rng.gen_range(0..n_rows))
            .collect();
        assert_bit_identical(
            &ram.subset(&indices),
            &spilled.subset(&indices),
            &format!("case {case} subset"),
        );

        // Forests trained on the spilled matrix are byte-for-byte the
        // in-RAM forests, independent of worker count.
        if n_cols > 0 && n_rows >= 4 {
            let labels: Vec<usize> = (0..n_rows).map(|i| (i + case as usize) % 2).collect();
            for jobs in [1usize, 4] {
                let config = ForestConfig {
                    n_trees: 8,
                    jobs,
                    seed: 0xf0_5e_ed,
                    ..Default::default()
                };
                let mut from_ram = RandomForest::with_config(config);
                from_ram.fit_matrix(&ram, &labels);
                let mut from_spill = RandomForest::with_config(config);
                from_spill.fit_matrix(&spilled, &labels);
                for row in &rows {
                    assert_eq!(
                        from_ram.predict_proba(row).to_bits(),
                        from_spill.predict_proba(row).to_bits(),
                        "case {case}: forest diverged at {jobs} worker(s)"
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Render everything observable about one materialized epoch app.
fn epoch_app_key(ea: &corpus::EpochApp) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{}",
        ea.app.spec, ea.app.files, ea.records, ea.changed, ea.last_changed
    )
}

/// Epoch N is a pure function of (seed, tenant knobs, N): independent
/// stream instances and arbitrary consumption orders agree byte for
/// byte, chunk size included.
#[test]
fn longitudinal_stream_is_pure_under_order_and_chunking() {
    let config = StreamConfig {
        apps: 40,
        ..StreamConfig::default()
    };
    let forward = LongitudinalStream::new(config.clone());
    let scattered = LongitudinalStream::new(config.clone());

    for epoch in [0usize, 2] {
        let in_order: Vec<String> = forward.epoch(epoch).map(|ea| epoch_app_key(&ea)).collect();
        // Consume the same epoch from a fresh stream in a scrambled
        // order (and re-query one index twice): every draw must be
        // position-pure, not cursor-dependent.
        let mut scrambled: Vec<(usize, String)> = (0..config.apps)
            .map(|i| (i * 23 + 7) % config.apps)
            .map(|i| (i, epoch_app_key(&scattered.epoch_app(i, epoch))))
            .collect();
        scrambled.sort();
        scrambled.dedup();
        assert_eq!(
            scrambled.len(),
            config.apps,
            "index walk must cover all apps"
        );
        for (i, key) in scrambled {
            assert_eq!(
                key, in_order[i],
                "epoch {epoch} app {i} depends on consumption order"
            );
        }
        // Re-query is idempotent.
        let again = epoch_app_key(&scattered.epoch_app(11, epoch));
        assert_eq!(again, in_order[11], "repeat query diverged");
    }
}

/// The classic generator equals its own streaming form drained in any
/// chunk size — `Corpus::generate` is now a thin wrapper over it.
#[test]
fn corpus_generate_matches_chunked_stream_drain() {
    let mut config = CorpusConfig::small(18, 20179);
    config.language_mix = [12, 2, 2, 2];
    let eager = Corpus::generate(&config);

    for chunk in [1usize, 5, 18] {
        let mut stream = Corpus::stream(&config);
        let mut apps = Vec::new();
        loop {
            let batch: Vec<_> = stream.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            apps.extend(batch);
        }
        assert_eq!(apps.len(), eager.apps.len(), "chunk {chunk}: app count");
        for (a, b) in eager.apps.iter().zip(&apps) {
            assert_eq!(
                format!("{:?}|{:?}", a.spec, a.files),
                format!("{:?}|{:?}", b.spec, b.files),
                "chunk {chunk}: app diverged"
            );
        }
        let db = stream.into_db();
        assert_eq!(
            format!("{:?}", eager.db.records()),
            format!("{:?}", db.records()),
            "chunk {chunk}: CVE database diverged"
        );
    }
}
