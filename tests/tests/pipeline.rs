//! End-to-end integration: corpus → testbed → training → metric, across
//! every crate in the workspace.

use clairvoyant::prelude::*;
use clairvoyant::testbed::Testbed;
use corpus::{Corpus, CorpusConfig};
use cvedb::SelectionCriteria;
use std::sync::OnceLock;

fn shared() -> &'static (Corpus, TrainedModel) {
    static SHARED: OnceLock<(Corpus, TrainedModel)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mut config = CorpusConfig::small(20, 90210);
        config.language_mix = [14, 2, 2, 2];
        config.max_kloc = 2.5;
        let corpus = Corpus::generate(&config);
        let model = Trainer::new().train(&corpus);
        (corpus, model)
    })
}

use clairvoyant::train::TrainedModel;

#[test]
fn full_pipeline_produces_reports_for_every_app() {
    let (corpus, model) = shared();
    for app in corpus.apps.iter().take(5) {
        let report = model.evaluate(&app.program);
        assert!(report.predicted_vulnerabilities.is_finite());
        assert!((0.0..=100.0).contains(&report.risk_score()));
        assert!(!report.attributions.is_empty());
    }
}

#[test]
fn predictions_track_ground_truth_ordering() {
    // Spearman-lite: predicted counts of selected apps should correlate
    // positively with the actual CVE counts.
    let (corpus, model) = shared();
    let histories = corpus.db.select(&SelectionCriteria::default());
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for h in &histories {
        let app = corpus.apps.iter().find(|a| a.spec.name == h.app).unwrap();
        let report = model.evaluate(&app.program);
        pairs.push((report.predicted_vulnerabilities, h.total as f64));
    }
    let xs: Vec<f64> = pairs.iter().map(|p| p.0.ln_1p()).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1.ln_1p()).collect();
    let r = secml::linreg::simple_regression(&xs, &ys).r;
    assert!(r > 0.5, "prediction/truth correlation too weak: {r:.3}");
}

#[test]
fn corpus_generation_is_deterministic_end_to_end() {
    let config = CorpusConfig::small(6, 1234);
    let a = Corpus::generate(&config);
    let b = Corpus::generate(&config);
    assert_eq!(a.db.len(), b.db.len());
    for (x, y) in a.apps.iter().zip(&b.apps) {
        assert_eq!(x.files, y.files);
    }
    // And the extracted features agree exactly.
    let t = Testbed::new();
    let fa = t.extract(&a.apps[0].program);
    let fb = t.extract(&b.apps[0].program);
    assert_eq!(fa, fb);
}

#[test]
fn testbed_features_cover_every_family_on_corpus_apps() {
    let (corpus, _) = shared();
    let t = Testbed::new();
    let fv = t.extract(&corpus.apps[0].program);
    for prefix in [
        "loc.",
        "cyclomatic.",
        "halstead.",
        "counts.",
        "callgraph.",
        "dataflow.",
        "taint.",
        "bounds.",
        "paths.",
        "smells.",
        "lang.",
        "bugfind.",
        "rasq.",
        "attackgraph.",
    ] {
        assert!(!fv.with_prefix(prefix).is_empty(), "missing {prefix}");
    }
}

#[test]
fn selection_excludes_short_history_apps() {
    let (corpus, _) = shared();
    let selected = corpus.db.select(&SelectionCriteria::default());
    assert!(selected.iter().all(|h| !h.app.starts_with("young-")));
    assert!(selected.iter().all(|h| h.span_years() >= 5.0));
    assert!(selected.len() >= 18);
}

#[test]
fn comparison_and_gate_work_on_corpus_apps() {
    let (corpus, model) = shared();
    let a = &corpus.apps[0].program;
    let b = &corpus.apps[1].program;
    let cmp = clairvoyant::compare_programs(model, a, b);
    assert!(cmp.preferred() == cmp.a.app || cmp.preferred() == cmp.b.app);
    let delta = clairvoyant::version_delta(model, a, a);
    assert_eq!(delta.score_delta, 0.0);
}
