//! End-to-end tests for the pipeline engine (parallel, incremental,
//! fault-isolated corpus extraction) against the acceptance criteria:
//! parallel extraction is byte-identical to sequential, the disk cache
//! invalidates exactly the edited program, a warm cache serves ≥90% of a
//! re-run, and one panicking collector degrades one program without
//! killing the batch.

use clairvoyant::extract::{corpus_jobs, extract_corpus};
use clairvoyant::testbed::Testbed;
use corpus::{Corpus, CorpusConfig};
use minilang::ast::Program;
use pipeline::{CacheMode, Extractor, JobSpec, Pipeline, PipelineConfig, PipelineError};
use static_analysis::FeatureVector;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut config = CorpusConfig::small(24, 20177);
        config.max_kloc = 1.5;
        Corpus::generate(&config)
    })
}

/// A unique scratch directory per test invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "clairvoyant-pipeline-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn parallel_extraction_is_byte_identical_to_sequential() {
    let corpus = corpus();
    let sequential = extract_corpus(
        corpus,
        PipelineConfig::default().jobs(1).cache(CacheMode::Off),
    );
    let parallel = extract_corpus(
        corpus,
        PipelineConfig::default().jobs(4).cache(CacheMode::Off),
    );
    assert_eq!(sequential.features, parallel.features);
    assert!(parallel.report.errors.is_empty());

    // And both agree exactly with the direct, single-threaded testbed.
    let testbed = Testbed::new();
    for (app, (name, fv)) in corpus.apps.iter().zip(&parallel.features) {
        assert_eq!(&app.spec.name, name, "output order must match input order");
        assert_eq!(&testbed.extract(&app.program), fv);
    }
}

#[test]
fn warm_cache_serves_at_least_90_percent() {
    let dir = scratch_dir("warm");
    let config = PipelineConfig::default().cache(CacheMode::Disk(dir.clone()));
    let cold = extract_corpus(corpus(), config.clone());
    assert_eq!(cold.report.cache_hits, 0);

    // A fresh engine, same disk store: everything is served from cache.
    let warm = extract_corpus(corpus(), config);
    let n = corpus().apps.len();
    assert!(
        warm.report.hit_rate() >= 0.9,
        "warm hit rate {:.2} below 0.9 ({} of {n})",
        warm.report.hit_rate(),
        warm.report.cache_hits
    );
    assert_eq!(
        warm.report.cache_hits, n,
        "unchanged corpus should hit on every program"
    );
    assert_eq!(cold.features, warm.features);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editing_one_source_invalidates_exactly_that_program() {
    let corpus = corpus();
    let dir = scratch_dir("edit");
    let config = PipelineConfig::default().cache(CacheMode::Disk(dir.clone()));
    extract_corpus(corpus, config.clone());

    // Edit one application's first source file and re-parse it.
    let victim = &corpus.apps[7];
    let mut edited_files = victim.files.clone();
    edited_files[0]
        .1
        .push_str("\nfn pipeline_test_touch() { }\n");
    let edited_program =
        minilang::parse_program(&victim.spec.name, victim.program.dialect, &edited_files)
            .expect("edited source still parses");

    let mut engine = Pipeline::with_config(Testbed::new(), config);
    let mut jobs: Vec<JobSpec> = corpus_jobs(&corpus.apps.iter().collect::<Vec<_>>());
    jobs[7] = JobSpec::new(&edited_program, &edited_files);
    let batch = engine.run(&jobs);

    let n = corpus.apps.len();
    assert_eq!(
        batch.report.cache_misses, 1,
        "only the edited program re-extracts"
    );
    assert_eq!(batch.report.cache_hits, n - 1);
    assert!(batch.outputs[7].features.get("loc.total").is_some());
    assert_eq!(
        batch.outputs[7].features,
        Testbed::new().extract(&edited_program),
        "the edited program's vector reflects the new sources"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A testbed whose collector panics on one named program.
struct Sabotaged {
    inner: Testbed,
    victim: &'static str,
}

impl Extractor for Sabotaged {
    fn extract(&self, program: &Program) -> FeatureVector {
        if program.name == self.victim {
            panic!("injected collector failure");
        }
        self.inner.extract(program)
    }

    fn schema_version(&self) -> u64 {
        self.inner.schema_version()
    }

    fn degraded(&self) -> FeatureVector {
        self.inner.degraded()
    }
}

#[test]
fn panicking_collector_degrades_one_program_not_the_batch() {
    let corpus = corpus();
    let victim = corpus.apps[3].spec.name.clone();
    let sabotaged = Sabotaged {
        inner: Testbed::new(),
        victim: Box::leak(victim.clone().into_boxed_str()),
    };
    let mut engine = Pipeline::with_config(
        sabotaged,
        PipelineConfig::default().jobs(4).cache(CacheMode::Off),
    );
    let jobs = corpus_jobs(&corpus.apps.iter().collect::<Vec<_>>());
    let batch = engine.run(&jobs);

    // The batch completed with every program present, in order.
    assert_eq!(batch.outputs.len(), corpus.apps.len());
    for (app, out) in corpus.apps.iter().zip(&batch.outputs) {
        assert_eq!(app.spec.name, out.name);
    }

    // Exactly the sabotaged program failed, with a recorded error and the
    // schema-stable degraded vector.
    assert_eq!(batch.report.errors.len(), 1);
    let (failed, error) = &batch.report.errors[0];
    assert_eq!(failed, &victim);
    assert!(matches!(error, PipelineError::Panicked(msg) if msg.contains("injected")));
    let degraded = &batch.outputs[3];
    assert!(degraded.error.is_some());
    assert!(degraded.features.iter().all(|(_, v)| v == 0.0));
    assert_eq!(
        degraded.features.names(),
        batch.outputs[0].features.names(),
        "degraded vector keeps the schema"
    );

    // Everyone else extracted normally.
    let testbed = Testbed::new();
    for (i, (app, out)) in corpus.apps.iter().zip(&batch.outputs).enumerate() {
        if i != 3 {
            assert!(out.error.is_none());
            assert_eq!(testbed.extract(&app.program), out.features);
        }
    }
}
