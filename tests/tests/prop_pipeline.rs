//! Property-based integration tests: arbitrary corpus configurations must
//! always yield parseable programs, valid CVSS vectors, and analyzable
//! feature vectors.

// Offline build: `proptest` is not vendored, so this whole suite is
// compiled out unless the crate's `proptest` feature is enabled (which
// additionally requires registry access and restoring the `proptest`
// dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

use corpus::{Corpus, CorpusConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_small_corpus_is_well_formed(
        n in 3usize..7,
        seed in 0u64..10_000,
        max_kloc in 0.4f64..1.6,
    ) {
        let mut config = CorpusConfig::small(n, seed);
        config.max_kloc = max_kloc;
        let corpus = Corpus::generate(&config);

        prop_assert!(corpus.db.len() >= 2 * config.n_apps());
        for app in &corpus.apps {
            // Programs parsed from the emitted files (synthesize would have
            // panicked otherwise) — re-check top-level shape.
            prop_assert!(app.program.function_count() > 0);
            prop_assert_eq!(app.program.modules.len(), app.files.len());
            // Every CVE record round-trips a valid CVSS vector.
            for record in corpus.db.records_for(&app.spec.name) {
                if let Some(v3) = &record.cvss3 {
                    let text = v3.vector();
                    let reparsed: cvss::Cvss3 = text.parse().unwrap();
                    prop_assert_eq!(reparsed.base_score(), v3.base_score());
                }
                prop_assert!(record.score() >= 0.0 && record.score() <= 10.0);
            }
        }
    }

    #[test]
    fn feature_extraction_is_total_over_corpus_programs(
        seed in 0u64..10_000,
    ) {
        let config = CorpusConfig::small(3, seed);
        let corpus = Corpus::generate(&config);
        let testbed = clairvoyant::Testbed::new();
        for app in corpus.apps.iter().take(2) {
            let fv = testbed.extract(&app.program);
            prop_assert!(fv.len() >= 70);
            for (name, value) in fv.iter() {
                prop_assert!(value.is_finite(), "{} is not finite", name);
            }
        }
    }
}
