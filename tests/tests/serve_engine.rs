//! Black-box tests for the scoring daemon (`crates/serve`).
//!
//! Every test boots a real daemon on an ephemeral port and drives it
//! over TCP — no test reaches into server internals. The pillars:
//!
//! - **Bit-identity**: a served `score` response carries exactly the
//!   JSON the offline engine produces for the same model and features
//!   (`security_report_value` over `evaluate_batch` output), at any
//!   client concurrency and for any request interleaving.
//! - **Robustness**: seeded protocol garbage (truncated frames, huge
//!   length prefixes, invalid UTF-8, mid-request disconnects) gets
//!   typed errors or a dropped connection — the accept loop never
//!   wedges and the next well-formed client is served normally.
//! - **Hot reload**: hammering `score` while `reload` swaps between two
//!   models yields responses that are each internally consistent with
//!   exactly one of the two model fingerprints.
//! - **Backpressure and drain**: over the admission cap clients get a
//!   typed `busy` error; shutdown answers everything already admitted.
//! - **Pipelining**: many requests written back-to-back on one
//!   connection come back bit-identical and in request order, through
//!   dribbled frames, slow readers, and mid-pipeline disconnects; idle
//!   connections cost the reactor zero wakeups.

use clairvoyant::prelude::*;
use clairvoyant::report::{comparison_value, explanation_value, security_report_value, Json};
use serve::client::{error_type, is_ok, Client};
use serve::protocol::{read_frame, write_frame};
use serve::server::{ModelState, ServeConfig};
use static_analysis::FeatureVector;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// Everything the tests share: two distinct trained models persisted as
/// CLVY files, their fingerprints, and a small extracted app set.
/// Training dominates this suite's runtime, so it happens once.
struct Fixture {
    path_a: PathBuf,
    path_b: PathBuf,
    fp_a: String,
    fp_b: String,
    apps: Vec<(String, FeatureVector)>,
    /// App name → offline report JSON under model A / model B.
    expected_a: BTreeMap<String, String>,
    expected_b: BTreeMap<String, String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = CorpusConfig::small(16, 20177);
        config.language_mix = [12, 2, 1, 1];
        config.max_kloc = 2.0;
        let corpus = Corpus::generate(&config);
        let trainer = Trainer::with_config(TrainerConfig {
            top_k_features: Some(14),
            ..Default::default()
        });
        let model_a = trainer.train(&corpus).compile();
        // Model B: same corpus, different feature budget — close enough
        // to be swappable, different enough to fingerprint apart.
        let model_b = Trainer::with_config(TrainerConfig {
            top_k_features: Some(10),
            ..Default::default()
        })
        .train(&corpus)
        .compile();

        let dir = std::env::temp_dir();
        let path_a = dir.join(format!("clairvoyant-serve-a-{}.clvy", std::process::id()));
        let path_b = dir.join(format!("clairvoyant-serve-b-{}.clvy", std::process::id()));
        model_a.save(&path_a).expect("save model A");
        model_b.save(&path_b).expect("save model B");
        let fp_a = ModelState::load(&path_a).expect("load A").fingerprint_hex();
        let fp_b = ModelState::load(&path_b).expect("load B").fingerprint_hex();
        assert_ne!(fp_a, fp_b, "fixture models must be distinguishable");

        let testbed = Testbed::new();
        let apps: Vec<(String, FeatureVector)> = corpus
            .apps
            .iter()
            .take(10)
            .map(|app| (app.spec.name.clone(), testbed.extract(&app.program)))
            .collect();

        let expected = |model: &CompiledModel| -> BTreeMap<String, String> {
            model
                .evaluate_batch(&apps, 1)
                .iter()
                .map(|r| (r.app.clone(), security_report_value(r).to_string()))
                .collect()
        };
        // Expectations come from re-loading the files the daemon serves,
        // so the comparison covers the persisted form end to end.
        let expected_a = expected(&CompiledModel::load(&path_a).expect("reload A"));
        let expected_b = expected(&CompiledModel::load(&path_b).expect("reload B"));

        Fixture {
            path_a,
            path_b,
            fp_a,
            fp_b,
            apps,
            expected_a,
            expected_b,
        }
    })
}

fn start_server(config: ServeConfig) -> serve::ServerHandle {
    let model = ModelState::load(&fixture().path_a).expect("load model A");
    serve::start(config, model).expect("daemon starts")
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    client
}

/// Pull `(model_fingerprint, report_json)` out of a score response.
fn score_parts(response: &Json) -> (String, String) {
    assert!(is_ok(response), "score failed: {response}");
    let Json::Object(obj) = response else {
        panic!("score response is not an object: {response}");
    };
    let Some(Json::String(fp)) = obj.get("model") else {
        panic!("score response has no model fingerprint: {response}");
    };
    let report = obj.get("report").expect("score response has a report");
    (fp.clone(), report.to_string())
}

#[test]
fn concurrent_scores_are_bit_identical_to_offline_batch() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 4, // small batches force cross-client coalescing
        jobs: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    const CLIENTS: usize = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = connect(addr);
                // Each client walks the app set from a different offset,
                // so batches mix apps in client-dependent orders.
                for i in 0..fx.apps.len() {
                    let (name, fv) = &fx.apps[(i + c) % fx.apps.len()];
                    let response = client.score_features(name, fv).expect("score");
                    let (fp, report) = score_parts(&response);
                    assert_eq!(fp, fx.fp_a, "unexpected model fingerprint");
                    assert_eq!(
                        &report, &fx.expected_a[name],
                        "served report for {name} diverged from offline evaluate_batch"
                    );
                }
            });
        }
    });

    // The daemon's own accounting saw every request and actually
    // coalesced some of them into multi-app batches.
    let mut client = connect(addr);
    let stats = client.stats().expect("stats");
    let text = stats.to_string();
    assert!(is_ok(&stats), "stats failed: {stats}");
    let total = (CLIENTS * fx.apps.len()) as f64;
    let scored = stat_field(&stats, "scored_apps");
    assert!(
        scored >= total,
        "stats lost requests: scored {scored} < sent {total} in {text}"
    );
    assert!(
        stat_field(&stats, "batches") <= scored,
        "batch count cannot exceed scored apps: {text}"
    );
    handle.shutdown();
}

/// Dig `stats.<key>` out of a stats response.
fn stat_field(response: &Json, key: &str) -> f64 {
    let Json::Object(obj) = response else {
        panic!("stats response is not an object");
    };
    let Some(Json::Object(stats)) = obj.get("stats") else {
        panic!("stats response has no stats body");
    };
    match stats.get(key) {
        Some(Json::Number(n)) => *n,
        other => panic!("stats.{key} missing or non-numeric: {other:?}"),
    }
}

#[test]
fn source_submissions_match_offline_extraction() {
    let fx = fixture();
    let handle = start_server(ServeConfig::default());
    let mut client = connect(handle.addr());

    let source = "fn handle(n: int) -> int {
        let total: int = 0;
        let i: int = 0;
        while i < n {
            if i > 3 { total = total + i; }
            i = i + 1;
        }
        return total;
    }";
    let response = client
        .score_source("inline-app", source, "c")
        .expect("score");
    let (fp, report) = score_parts(&response);
    assert_eq!(fp, fx.fp_a);

    // Offline reference: same parse, same extraction, same model.
    let program = minilang::parse_program(
        "inline-app",
        Dialect::C,
        &[("inline-app.src".to_string(), source.to_string())],
    )
    .expect("source parses");
    let fv = Testbed::new().extract(&program);
    let offline = CompiledModel::load(&fx.path_a)
        .expect("load")
        .evaluate_batch(&[("inline-app".to_string(), fv)], 1);
    assert_eq!(report, security_report_value(&offline[0]).to_string());

    // Unparsable source is a typed bad_request, not a dropped daemon.
    let response = client
        .score_source("broken", "fn { not minilang", "c")
        .expect("round-trip survives");
    assert_eq!(error_type(&response), Some("bad_request"));
    handle.shutdown();
}

/// Pull the named field of an ok response as serialized JSON.
fn response_part(response: &Json, key: &str) -> String {
    assert!(is_ok(response), "request failed: {response}");
    let Json::Object(obj) = response else {
        panic!("response is not an object: {response}");
    };
    obj.get(key)
        .unwrap_or_else(|| panic!("response has no `{key}`: {response}"))
        .to_string()
}

#[test]
fn explain_and_compare_wire_responses_match_offline() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 4,
        jobs: 2,
        ..ServeConfig::default()
    });
    let mut client = connect(handle.addr());
    let model = CompiledModel::load(&fx.path_a).expect("load model A");

    // Feature-vector explain: the wire body must equal the offline
    // scalar reference exactly (no hotspots — there is no program).
    let (name, fv) = &fx.apps[0];
    let response = client.explain_features(name, fv).expect("explain");
    assert_eq!(
        response_part(&response, "model"),
        format!("\"{}\"", fx.fp_a)
    );
    let offline = explanation_value(&model.explain_features(name.clone(), fv)).to_string();
    assert_eq!(
        response_part(&response, "explanation"),
        offline,
        "served explanation diverged from offline explain_features"
    );

    // Source explain: same parse, same extraction, same hotspot ranking
    // as the offline `explain_program` path.
    let risky = "@endpoint(network)
        fn handle(req: str, n: int) {
            let buf: str[8];
            strcpy(buf, req);
            buf[n] = req;
            system(req);
        }";
    let safer = "@endpoint(network)
        fn handle(req: str, n: int) {
            if n < 0 || n > 7 { return; }
            let buf: str[8];
            strncpy(buf, req, 7);
            log_msg(\"handled\");
        }";
    let response = client
        .explain_source("inline-app", risky, "c", 3)
        .expect("explain source");
    let program = minilang::parse_program(
        "inline-app",
        Dialect::C,
        &[("inline-app.src".to_string(), risky.to_string())],
    )
    .expect("source parses");
    let offline = explanation_value(&model.explain_program(&program, 3, 1)).to_string();
    let wire = response_part(&response, "explanation");
    assert_eq!(wire, offline, "served source explanation diverged");
    assert!(
        wire.contains("\"function\":\"handle\""),
        "source explain must surface hotspots: {wire}"
    );

    // Compare: the wire comparison equals the offline compiled route.
    let response = client
        .compare_sources(("libfast", risky), ("libsafe", safer), "c")
        .expect("compare");
    let pa = minilang::parse_program(
        "libfast",
        Dialect::C,
        &[("libfast.src".to_string(), risky.to_string())],
    )
    .unwrap();
    let pb = minilang::parse_program(
        "libsafe",
        Dialect::C,
        &[("libsafe.src".to_string(), safer.to_string())],
    )
    .unwrap();
    let offline = comparison_value(&compare_programs_compiled(&model, &pa, &pb, 1)).to_string();
    assert_eq!(
        response_part(&response, "comparison"),
        offline,
        "served comparison diverged from offline compare_programs_compiled"
    );

    // The stats endpoint accounts for both new ops.
    let stats = client.stats().expect("stats");
    let text = stats.to_string();
    assert!(
        text.contains("\"explain\":{") && text.contains("\"compare\":{"),
        "stats must carry explain/compare endpoint counters: {text}"
    );
    handle.shutdown();
}

#[test]
fn mixed_workload_batches_stay_bit_identical() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 3, // force score/explain/compare rows into shared batches
        jobs: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let model = CompiledModel::load(&fx.path_a).expect("load model A");

    // Offline references, computed once.
    let expected_explanations: BTreeMap<String, String> = fx
        .apps
        .iter()
        .map(|(name, fv)| {
            let e = model.explain_features(name.clone(), fv);
            (name.clone(), explanation_value(&e).to_string())
        })
        .collect();
    let expected_compare = {
        let ea = model.explain_features(fx.apps[0].0.clone(), &fx.apps[0].1);
        let eb = model.explain_features(fx.apps[1].0.clone(), &fx.apps[1].1);
        comparison_value(&clairvoyant::Comparison::from_explanations(&ea, &eb)).to_string()
    };

    std::thread::scope(|scope| {
        // Scoring clients…
        for c in 0..2 {
            scope.spawn(move || {
                let mut client = connect(addr);
                for i in 0..fx.apps.len() {
                    let (name, fv) = &fx.apps[(i + c) % fx.apps.len()];
                    let response = client.score_features(name, fv).expect("score");
                    let (_, report) = score_parts(&response);
                    assert_eq!(&report, &fx.expected_a[name]);
                }
            });
        }
        // …explain clients…
        let expected = &expected_explanations;
        for c in 0..2 {
            scope.spawn(move || {
                let mut client = connect(addr);
                for i in 0..fx.apps.len() {
                    let (name, fv) = &fx.apps[(i + c + 1) % fx.apps.len()];
                    let response = client.explain_features(name, fv).expect("explain");
                    assert_eq!(
                        response_part(&response, "explanation"),
                        expected[name],
                        "mixed-batch explanation diverged for {name}"
                    );
                }
            });
        }
        // …and a compare client all interleave into the same batches.
        let expected = &expected_compare;
        scope.spawn(move || {
            let mut client = connect(addr);
            for _ in 0..6 {
                let response = client
                    .compare_features(
                        (&fx.apps[0].0, &fx.apps[0].1),
                        (&fx.apps[1].0, &fx.apps[1].1),
                    )
                    .expect("compare");
                assert_eq!(
                    &response_part(&response, "comparison"),
                    expected,
                    "mixed-batch comparison diverged"
                );
            }
        });
    });
    handle.shutdown();
}

#[test]
fn overloaded_explain_returns_typed_busy() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        max_inflight: 1,
        batch_max: 1,
        debug_batch_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let (name, fv) = &fx.apps[0];

    // Fill the single admission slot without waiting for the response…
    let request = Json::object(vec![
        ("op", Json::String("explain".into())),
        ("name", Json::String(name.clone())),
        (
            "features",
            Json::Object(
                fv.iter()
                    .map(|(k, v)| (k.to_string(), Json::Number(v)))
                    .collect(),
            ),
        ),
    ])
    .to_string();
    let mut held = TcpStream::connect(addr).expect("connect");
    held.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_frame(&mut held, request.as_bytes()).expect("send");
    std::thread::sleep(Duration::from_millis(100));

    // …so the next explain (and compare) bounce with `busy`, the error
    // `query explain` turns into exit code 3.
    let mut client = connect(addr);
    let response = client.explain_features(name, fv).expect("round-trip");
    assert_eq!(error_type(&response), Some("busy"), "got {response}");
    let response = client
        .compare_features((name, fv), (name, fv))
        .expect("round-trip");
    assert_eq!(error_type(&response), Some("busy"), "got {response}");

    // The admitted explain still completes.
    let payload = read_frame(&mut held, &mut || true).expect("held response");
    let response = serve::json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(is_ok(&response), "held explain failed: {response}");
    handle.shutdown();
}

#[test]
fn overload_returns_typed_busy_and_recovers() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        max_inflight: 2,
        batch_max: 1,
        // Hold each admitted request in the backend long enough to
        // observe the cap deterministically.
        debug_batch_delay: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let (name, fv) = &fx.apps[0];
    let request = Json::object(vec![
        ("op", Json::String("score".into())),
        ("name", Json::String(name.clone())),
        (
            "features",
            Json::Object(
                fv.iter()
                    .map(|(k, v)| (k.to_string(), Json::Number(v)))
                    .collect(),
            ),
        ),
    ])
    .to_string();

    // Two raw connections fill the admission window without waiting for
    // their responses…
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        write_frame(&mut stream, request.as_bytes()).expect("send");
        held.push(stream);
        std::thread::sleep(Duration::from_millis(100));
    }

    // …so the third client must bounce with a typed `busy` error.
    let mut client = connect(addr);
    let response = client.score_features(name, fv).expect("round-trip");
    assert_eq!(
        error_type(&response),
        Some("busy"),
        "over the cap the daemon must refuse, got {response}"
    );

    // The held requests were admitted, so they still complete — and
    // once they drain, the same client is served normally.
    for mut stream in held {
        let payload = read_frame(&mut stream, &mut || true).expect("held response");
        let response = serve::json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
        let (fp, report) = score_parts(&response);
        assert_eq!(fp, fx.fp_a);
        assert_eq!(&report, &fx.expected_a[name]);
    }
    let response = client.score_features(name, fv).expect("retry");
    let (_, report) = score_parts(&response);
    assert_eq!(&report, &fx.expected_a[name]);
    handle.shutdown();
}

#[test]
fn protocol_garbage_never_wedges_the_accept_loop() {
    let fx = fixture();
    let handle = start_server(ServeConfig::default());
    let addr = handle.addr();

    // Seeded splitmix64: the byte soup is reproducible.
    let mut state = 0x5EED_5EED_5EED_5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    for round in 0..60 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let case = next() % 8;
        let expect_reply = match case {
            // Unframed random bytes, then disconnect.
            0 => {
                let junk: Vec<u8> = (0..(next() % 64)).map(|_| (next() & 0xFF) as u8).collect();
                use std::io::Write as _;
                let _ = stream.write_all(&junk);
                false
            }
            // Oversized length prefix.
            1 => {
                use std::io::Write as _;
                let len =
                    (serve::protocol::MAX_FRAME as u32).saturating_add(1 + (next() as u32 % 1000));
                let _ = stream.write_all(&len.to_le_bytes());
                let _ = stream.write_all(b"xx");
                false
            }
            // Truncated frame: header promises more than is sent.
            2 => {
                use std::io::Write as _;
                let _ = stream.write_all(&100u32.to_le_bytes());
                let _ = stream.write_all(b"only a few bytes");
                false
            }
            // Mid-header disconnect.
            3 => {
                use std::io::Write as _;
                let _ = stream.write_all(&[7u8, 0]);
                false
            }
            // Framed invalid UTF-8.
            4 => {
                write_frame(&mut stream, &[0xFF, 0xFE, 0x80, 0x81]).unwrap();
                true
            }
            // Framed UTF-8 that is not JSON.
            5 => {
                write_frame(&mut stream, b"score please!").unwrap();
                true
            }
            // Framed JSON with an unknown or missing op.
            6 => {
                write_frame(&mut stream, b"{\"op\":\"frobnicate\"}").unwrap();
                true
            }
            // Empty frame.
            _ => {
                write_frame(&mut stream, b"").unwrap();
                true
            }
        };
        if expect_reply {
            // In-sync payload problems must produce a typed error on a
            // still-open connection.
            let payload = read_frame(&mut stream, &mut || true)
                .unwrap_or_else(|e| panic!("round {round} case {case}: no reply: {e:?}"));
            let response =
                serve::json::parse(std::str::from_utf8(&payload).expect("UTF-8 response"))
                    .expect("JSON response");
            assert_eq!(
                error_type(&response),
                Some("bad_request"),
                "round {round} case {case}: {response}"
            );
        }
        drop(stream);

        // The daemon must still serve a well-formed client immediately.
        if round % 10 == 9 {
            let mut client = connect(addr);
            assert!(is_ok(&client.health().expect("health after garbage")));
        }
    }

    // Full scoring still works after the bombardment.
    let mut client = connect(addr);
    let (name, fv) = &fx.apps[1];
    let response = client.score_features(name, fv).expect("score");
    let (_, report) = score_parts(&response);
    assert_eq!(&report, &fx.expected_a[name]);
    handle.shutdown();
}

#[test]
fn hot_reload_race_keeps_every_response_consistent() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 3,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    const SCORERS: usize = 4;
    const REQUESTS: usize = 25;
    std::thread::scope(|scope| {
        for c in 0..SCORERS {
            scope.spawn(move || {
                let mut client = connect(addr);
                for i in 0..REQUESTS {
                    let (name, fv) = &fx.apps[(i + c) % fx.apps.len()];
                    let response = client.score_features(name, fv).expect("score");
                    let (fp, report) = score_parts(&response);
                    // The one consistency a hot swap must preserve: the
                    // response pairs a fingerprint with the report that
                    // model produces — never a hybrid.
                    let expected = if fp == fx.fp_a {
                        &fx.expected_a[name]
                    } else if fp == fx.fp_b {
                        &fx.expected_b[name]
                    } else {
                        panic!("fingerprint {fp} is neither fixture model");
                    };
                    assert_eq!(
                        &report, expected,
                        "report/fingerprint mismatch for {name} under {fp}"
                    );
                }
            });
        }
        scope.spawn(move || {
            let mut client = connect(addr);
            for i in 0..10 {
                let path = if i % 2 == 0 { &fx.path_b } else { &fx.path_a };
                let response = client.reload(Some(path.to_str().unwrap())).expect("reload");
                assert!(is_ok(&response), "reload failed: {response}");
                std::thread::sleep(Duration::from_millis(15));
            }
        });
    });

    // A reload pointed at garbage keeps the old model serving.
    let bogus = std::env::temp_dir().join(format!(
        "clairvoyant-serve-bogus-{}.clvy",
        std::process::id()
    ));
    std::fs::write(&bogus, b"not a model").unwrap();
    let mut client = connect(addr);
    let response = client
        .reload(Some(bogus.to_str().unwrap()))
        .expect("reload");
    assert_eq!(error_type(&response), Some("bad_request"));
    let (name, fv) = &fx.apps[0];
    let response = client.score_features(name, fv).expect("score");
    let (fp, _) = score_parts(&response);
    assert!(fp == fx.fp_a || fp == fx.fp_b);
    handle.shutdown();
}

#[test]
fn response_timeout_poisons_the_client_connection() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 1,
        // Hold the response long past the client's timeout.
        debug_batch_delay: Duration::from_millis(600),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_millis(100)))
        .expect("set timeout");
    let (name, fv) = &fx.apps[0];
    let err = client.score_features(name, fv).expect_err("must time out");
    assert!(err.contains("timed out"), "wrong timeout error: {err}");

    // The late response is still in flight on this connection; a second
    // roundtrip would read it as its own answer, so the client must
    // refuse reuse instead of silently desyncing.
    let err = client
        .score_features(name, fv)
        .expect_err("poisoned client must refuse reuse");
    assert!(err.contains("poisoned"), "wrong poisoned error: {err}");

    // A fresh connection is unaffected.
    let mut fresh = connect(handle.addr());
    let response = fresh.score_features(name, fv).expect("score");
    let (_, report) = score_parts(&response);
    assert_eq!(&report, &fx.expected_a[name]);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_requests() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 1,
        debug_batch_delay: Duration::from_millis(250),
        // Generous poll tick: the post-shutdown probe below must reach
        // its handler before the handler notices the flag and exits.
        poll_tick: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let (name, fv) = &fx.apps[2];
    let request = Json::object(vec![
        ("op", Json::String("score".into())),
        ("name", Json::String(name.clone())),
        (
            "features",
            Json::Object(
                fv.iter()
                    .map(|(k, v)| (k.to_string(), Json::Number(v)))
                    .collect(),
            ),
        ),
    ])
    .to_string();

    // Admit three slow requests, then ask the daemon to shut down while
    // they are still in flight.
    let mut held = Vec::new();
    for _ in 0..3 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        write_frame(&mut stream, request.as_bytes()).expect("send");
        held.push(stream);
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut admin = connect(addr);
    let response = admin.shutdown().expect("shutdown round-trip");
    assert!(is_ok(&response), "shutdown refused: {response}");

    // New work is refused while draining…
    let refused = admin.score_features(name, fv).expect("drain refusal");
    assert_eq!(error_type(&refused), Some("shutting_down"));

    // …but everything admitted before the shutdown still completes,
    // bit-identical as ever.
    for mut stream in held {
        let payload = read_frame(&mut stream, &mut || true).expect("drained response");
        let response = serve::json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
        let (fp, report) = score_parts(&response);
        assert_eq!(fp, fx.fp_a);
        assert_eq!(&report, &fx.expected_a[name]);
    }

    // The handle observes the wire-triggered shutdown and joins; the
    // port stops accepting.
    handle.wait();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after drain"
    );
}

/// Build a raw `score` request payload for one fixture app.
fn score_request(name: &str, fv: &FeatureVector) -> Json {
    Json::object(vec![
        ("op", Json::String("score".into())),
        ("name", Json::String(name.to_string())),
        (
            "features",
            Json::Object(
                fv.iter()
                    .map(|(k, v)| (k.to_string(), Json::Number(v)))
                    .collect(),
            ),
        ),
    ])
}

#[test]
fn pipelined_requests_return_ordered_bit_identical_responses() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 4, // pipelined frames must coalesce across batches
        jobs: 2,
        ..ServeConfig::default()
    });
    let mut client = connect(handle.addr());

    // 30 scores in a shuffled order, with a health probe wedged into the
    // middle: every response must land at its request's index.
    let mut requests = Vec::new();
    let mut names: Vec<Option<String>> = Vec::new();
    for round in 0..3 {
        for i in 0..fx.apps.len() {
            let (name, fv) = &fx.apps[(i * 3 + round) % fx.apps.len()];
            requests.push(score_request(name, fv));
            names.push(Some(name.clone()));
            if round == 1 && i == 4 {
                requests.push(Json::object(vec![("op", Json::String("health".into()))]));
                names.push(None);
            }
        }
    }
    let responses = client.pipeline(&requests).expect("pipeline");
    assert_eq!(responses.len(), requests.len());
    for (i, response) in responses.iter().enumerate() {
        match &names[i] {
            Some(name) => {
                let (fp, report) = score_parts(response);
                assert_eq!(fp, fx.fp_a);
                assert_eq!(
                    &report, &fx.expected_a[name],
                    "pipelined response {i} (app {name}) is out of order or diverged"
                );
            }
            None => {
                assert!(is_ok(response), "health in mid-pipeline failed: {response}");
                assert!(
                    response.to_string().contains("\"op\":\"health\""),
                    "response {i} should be the health probe: {response}"
                );
            }
        }
    }
    handle.shutdown();
}

#[test]
fn dribbled_frames_and_slow_readers_keep_responses_ordered() {
    use std::io::{Read as _, Write as _};
    let fx = fixture();
    let handle = start_server(ServeConfig::default());

    // Three requests written one byte at a time: the server sees every
    // possible partial-frame boundary and must reassemble incrementally.
    let order = [2usize, 0, 7];
    let mut wire = Vec::new();
    for &i in &order {
        let (name, fv) = &fx.apps[i];
        let payload = score_request(name, fv).to_string();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(payload.as_bytes());
    }
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    for chunk in wire.chunks(7) {
        stream.write_all(chunk).expect("dribble");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Read the responses as a slow consumer: tiny chunks with pauses, so
    // the server's write side has to cope with a lagging peer.
    let mut received = Vec::new();
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let mut chunk = [0u8; 64];
    while frames.len() < order.len() {
        let n = stream.read(&mut chunk).expect("slow read");
        assert!(n > 0, "server closed before all responses arrived");
        received.extend_from_slice(&chunk[..n]);
        std::thread::sleep(Duration::from_millis(1));
        // Peel complete frames off the front.
        while received.len() >= 4 {
            let len = u32::from_le_bytes(received[..4].try_into().unwrap()) as usize;
            if received.len() < 4 + len {
                break;
            }
            frames.push(received[4..4 + len].to_vec());
            received.drain(..4 + len);
        }
    }
    for (&i, frame) in order.iter().zip(&frames) {
        let response = serve::json::parse(std::str::from_utf8(frame).unwrap()).unwrap();
        let (fp, report) = score_parts(&response);
        let name = &fx.apps[i].0;
        assert_eq!(fp, fx.fp_a);
        assert_eq!(
            &report, &fx.expected_a[name],
            "slow-reader response for {name} is out of order or diverged"
        );
    }
    handle.shutdown();
}

#[test]
fn mid_pipeline_disconnect_releases_slots_and_serves_on() {
    let fx = fixture();
    let handle = start_server(ServeConfig {
        batch_max: 1,
        // Slow enough that the disconnect happens while work is in
        // flight, so the completions come back to a dead connection.
        debug_batch_delay: Duration::from_millis(150),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Pipeline four scores, give the daemon time to admit them, then
    // vanish without reading a single response.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for i in 0..4 {
            let (name, fv) = &fx.apps[i];
            write_frame(&mut stream, score_request(name, fv).to_string().as_bytes()).expect("send");
        }
        std::thread::sleep(Duration::from_millis(100));
    } // dropped here, mid-pipeline

    // The daemon keeps serving immediately…
    let mut client = connect(addr);
    for (name, fv) in &fx.apps {
        let response = client.score_features(name, fv).expect("score");
        let (fp, report) = score_parts(&response);
        assert_eq!(fp, fx.fp_a);
        assert_eq!(&report, &fx.expected_a[name]);
    }

    // …and once the orphaned batches finish, their admission slots are
    // released (the responses were dropped, not leaked onto anyone).
    std::thread::sleep(Duration::from_millis(800));
    let stats = client.stats().expect("stats");
    assert_eq!(
        stat_field(&stats, "inflight"),
        0.0,
        "disconnected pipeline leaked admission slots: {stats}"
    );
    handle.shutdown();
}

#[test]
fn backpressure_tiers_emit_typed_busy_and_recover() {
    let fx = fixture();
    let (name, fv) = &fx.apps[0];

    // Tier 2: the global in-flight cap refuses with typed `busy`, in
    // request order, and the connection recovers once work drains.
    let handle = start_server(ServeConfig {
        max_inflight: 2,
        batch_max: 1,
        debug_batch_delay: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let mut client = connect(handle.addr());
    let requests: Vec<Json> = (0..6).map(|_| score_request(name, fv)).collect();
    let responses = client.pipeline(&requests).expect("pipeline");
    for (i, response) in responses.iter().enumerate() {
        if i < 2 {
            let (_, report) = score_parts(response);
            assert_eq!(&report, &fx.expected_a[name], "admitted response {i}");
        } else {
            assert_eq!(
                error_type(response),
                Some("busy"),
                "response {i} over the cap must be busy: {response}"
            );
        }
    }
    let response = client.score_features(name, fv).expect("after drain");
    let (_, report) = score_parts(&response);
    assert_eq!(&report, &fx.expected_a[name], "no recovery after busy");
    let stats = client.stats().expect("stats");
    assert!(
        stat_field(&stats, "rejected_busy") >= 4.0,
        "busy refusals must be counted: {stats}"
    );
    handle.shutdown();

    // Tier 1: the per-connection pipeline cap pauses reading instead of
    // refusing — every request over the cap still completes, in order,
    // with no busy in sight.
    let handle = start_server(ServeConfig {
        max_pipeline: 2,
        batch_max: 1,
        debug_batch_delay: Duration::from_millis(30),
        ..ServeConfig::default()
    });
    let mut client = connect(handle.addr());
    let requests: Vec<Json> = (0..8)
        .map(|i| {
            let (name, fv) = &fx.apps[i % fx.apps.len()];
            score_request(name, fv)
        })
        .collect();
    let responses = client.pipeline(&requests).expect("pipeline");
    for (i, response) in responses.iter().enumerate() {
        let (_, report) = score_parts(response);
        let name = &fx.apps[i % fx.apps.len()].0;
        assert_eq!(
            &report, &fx.expected_a[name],
            "paused-pipeline response {i} diverged or arrived out of order"
        );
    }
    handle.shutdown();
}

#[test]
fn idle_connections_cost_zero_reactor_wakeups() {
    let fx = fixture();
    let handle = start_server(ServeConfig::default());
    let addr = handle.addr();

    // Eight established connections, each proven live, then left idle.
    let mut idle = Vec::new();
    for _ in 0..8 {
        let mut client = connect(addr);
        assert!(is_ok(&client.health().expect("health")));
        idle.push(client);
    }

    let mut observer = connect(addr);
    let before = stat_field(&observer.stats().expect("stats"), "reactor_wakeups");
    std::thread::sleep(Duration::from_millis(1200));
    let after = stat_field(&observer.stats().expect("stats"), "reactor_wakeups");

    // The old thread-per-connection design woke every connection each
    // poll tick: 8 conns × 50ms ticks ≈ 160+ wakeups over 1.2s. The
    // reactor parks idle connections indefinitely — the only wakeups
    // allowed here are the observer's own stats round-trip.
    let delta = after - before;
    assert!(
        delta <= 8.0,
        "idle connections must not wake the reactor: {delta} wakeups in 1.2s idle"
    );

    // The idle connections are still perfectly serviceable.
    for client in idle.iter_mut() {
        let (name, fv) = &fx.apps[0];
        let response = client.score_features(name, fv).expect("score after idle");
        let (_, report) = score_parts(&response);
        assert_eq!(&report, &fx.expected_a[name]);
    }
    handle.shutdown();
}

#[test]
fn repeat_source_scores_ride_the_warm_function_cache() {
    let handle = start_server(ServeConfig::default());
    let mut client = connect(handle.addr());

    let source = "fn helper(s: str) { exec(s); }
fn entry(s: str, n: int) -> int {
    helper(s);
    if n > 2 { return n; }
    return 0;
}";
    // Cold: both functions fingerprint-miss and run their fixpoints.
    let first = client.score_source("warm-app", source, "c").expect("score");
    assert!(is_ok(&first));
    let stats = client.stats().expect("stats");
    assert_eq!(stat_field(&stats, "incr_hits"), 0.0);
    assert_eq!(stat_field(&stats, "incr_misses"), 2.0);
    assert_eq!(stat_field(&stats, "incr_rebuilt_fns"), 2.0);

    // Warm: the connection is pinned to its shard, whose engine now holds
    // both entries — every function hits, nothing is rebuilt, and the
    // response is bit-identical to the cold one.
    let second = client.score_source("warm-app", source, "c").expect("score");
    assert_eq!(first.to_string(), second.to_string());
    let stats = client.stats().expect("stats");
    assert_eq!(stat_field(&stats, "incr_hits"), 2.0);
    assert_eq!(
        stat_field(&stats, "incr_rebuilt_fns"),
        2.0,
        "no new fixpoints"
    );

    // Edit one function: exactly one entry is invalidated and rebuilt.
    let edited = source.replace("n > 2", "n > 3");
    let response = client
        .score_source("warm-app", &edited, "c")
        .expect("score");
    assert!(is_ok(&response));
    let stats = client.stats().expect("stats");
    assert_eq!(stat_field(&stats, "incr_hits"), 3.0, "helper stays cached");
    assert_eq!(
        stat_field(&stats, "incr_rebuilt_fns"),
        3.0,
        "only `entry` re-ran"
    );
    handle.shutdown();
}
