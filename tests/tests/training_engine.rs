//! Cross-crate checks for the fast training engine: the incremental
//! split sweep must agree with a naive oracle, and parallel training must
//! be byte-identical to sequential training at every layer (forest,
//! cross-validation, full trainer).

use clairvoyant::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secml::dataset::ColMatrix;
use secml::forest::{ForestConfig, RandomForest};
use secml::tree::{best_split_entropy, best_split_variance};
use secml::Classifier;

/// Naive O(n²-per-feature) split search: for every feature, try every
/// midpoint threshold by re-partitioning and recomputing impurities from
/// scratch — the algorithm the incremental sweep replaced.
fn naive_best_split(
    x: &[Vec<f64>],
    y: &[f64],
    entropy_mode: bool,
    pool: &[usize],
) -> Option<(usize, f64, f64)> {
    let n = x.len() as f64;
    let impurity = |ys: &[f64]| -> f64 {
        if ys.is_empty() {
            return 0.0;
        }
        let m = ys.len() as f64;
        if entropy_mode {
            let ones = ys.iter().sum::<f64>();
            let mut h = 0.0;
            for p in [ones / m, 1.0 - ones / m] {
                if p > 0.0 {
                    h -= p * p.log2();
                }
            }
            h
        } else {
            let mean = ys.iter().sum::<f64>() / m;
            ys.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m
        }
    };
    let parent = impurity(y);
    let mut best: Option<(usize, f64, f64)> = None;
    for &feature in pool {
        let mut vals: Vec<f64> = x.iter().map(|r| r[feature]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let left: Vec<f64> = x
                .iter()
                .zip(y)
                .filter(|(r, _)| r[feature] <= threshold)
                .map(|(_, &v)| v)
                .collect();
            let right: Vec<f64> = x
                .iter()
                .zip(y)
                .filter(|(r, _)| r[feature] > threshold)
                .map(|(_, &v)| v)
                .collect();
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let weighted = (left.len() as f64 / n) * impurity(&left)
                + (right.len() as f64 / n) * impurity(&right);
            let gain = parent - weighted;
            if best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                best = Some((feature, threshold, gain));
            }
        }
    }
    best
}

fn random_dataset(seed: u64, rows: usize, cols: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..cols)
                // Coarse grid values force plenty of ties, the hard case
                // for threshold enumeration.
                .map(|_| (rng.gen_range(0..12) as f64) / 3.0)
                .collect()
        })
        .collect();
    let y: Vec<usize> = x
        .iter()
        .map(|r| (r[0] + r[1 % cols] > 3.5) as usize)
        .collect();
    (x, y)
}

#[test]
fn incremental_sweep_matches_naive_oracle_entropy() {
    for seed in 0..25u64 {
        let rows = 5 + (seed as usize * 7) % 40;
        let cols = 1 + (seed as usize) % 5;
        let (x, y) = random_dataset(seed, rows, cols);
        let pool: Vec<usize> = (0..cols).collect();
        let m = ColMatrix::from_rows(&x);
        let fast = best_split_entropy(&m, &y, &pool);
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        let naive = naive_best_split(&x, &yf, true, &pool);
        match (fast, naive) {
            (None, None) => {}
            (Some((ff, ft, fg)), Some((nf, nt, ng))) => {
                assert_eq!(ff, nf, "seed {seed}: feature mismatch");
                assert!((ft - nt).abs() < 1e-12, "seed {seed}: {ft} vs {nt}");
                assert!((fg - ng).abs() < 1e-9, "seed {seed}: gain {fg} vs {ng}");
            }
            other => panic!("seed {seed}: {other:?}"),
        }
    }
}

#[test]
fn incremental_sweep_matches_naive_oracle_variance() {
    for seed in 100..120u64 {
        let rows = 6 + (seed as usize * 5) % 30;
        let cols = 1 + (seed as usize) % 4;
        let (x, labels) = random_dataset(seed, rows, cols);
        // Continuous-ish targets from the same generator.
        let y: Vec<f64> = x
            .iter()
            .zip(&labels)
            .map(|(r, &l)| r.iter().sum::<f64>() + l as f64 * 3.0)
            .collect();
        let pool: Vec<usize> = (0..cols).collect();
        let m = ColMatrix::from_rows(&x);
        let fast = best_split_variance(&m, &y, &pool);
        let naive = naive_best_split(&x, &y, false, &pool);
        match (fast, naive) {
            (None, None) => {}
            (Some((ff, ft, fg)), Some((nf, nt, ng))) => {
                assert_eq!(ff, nf, "seed {seed}: feature mismatch");
                assert!((ft - nt).abs() < 1e-12, "seed {seed}: {ft} vs {nt}");
                assert!((fg - ng).abs() < 1e-9, "seed {seed}: gain {fg} vs {ng}");
            }
            other => panic!("seed {seed}: {other:?}"),
        }
    }
}

#[test]
fn forest_is_bit_identical_across_worker_counts() {
    let (x, y) = random_dataset(7, 60, 4);
    let probe: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 5.0; 4]).collect();
    let fit = |jobs: usize| {
        let mut f = RandomForest::with_config(ForestConfig {
            n_trees: 12,
            jobs,
            ..Default::default()
        });
        f.fit(&x, &y);
        probe
            .iter()
            .map(|r| f.predict_proba(r).to_bits())
            .collect::<Vec<u64>>()
    };
    let sequential = fit(1);
    assert_eq!(sequential, fit(2));
    assert_eq!(sequential, fit(4));
}

#[test]
fn trainer_output_is_bit_identical_across_worker_counts() {
    let corpus = Corpus::generate(&CorpusConfig::small(12, 99));
    let probe = Testbed::new().extract(&corpus.apps[0].program);

    let outputs: Vec<(String, Vec<u64>)> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let trainer = Trainer::with_config(TrainerConfig {
                learner: Learner::RandomForest,
                train_jobs: jobs,
                ..Default::default()
            });
            let (model, report) = trainer.train_with_report(&corpus);
            let row = model.prepare_row(&probe);
            let mut bits: Vec<u64> = model
                .all_hypotheses(&row)
                .iter()
                .map(|(_, p)| p.to_bits())
                .collect();
            bits.push(model.predicted_count(&row).to_bits());
            bits.extend(model.risk_weights.iter().map(|w| w.to_bits()));
            bits.push(report.count_cv.r_squared.to_bits());
            for h in &report.hypothesis_reports {
                if let Some(r) = &h.report {
                    bits.push(r.auc.to_bits());
                    bits.push(r.accuracy.to_bits());
                }
            }
            // Drop the extraction line: programs/sec is wall-clock, the
            // one legitimately run-dependent number in the report.
            let text: String = report
                .to_string()
                .lines()
                .filter(|l| !l.starts_with("extraction:"))
                .collect::<Vec<_>>()
                .join("\n");
            (text, bits)
        })
        .collect();

    assert_eq!(
        outputs[0].1, outputs[1].1,
        "train_jobs=1 and train_jobs=4 diverged"
    );
    assert_eq!(outputs[0].0, outputs[1].0, "reports diverged");
}
